//! Property-based tests (proptest) over randomly generated TRC* queries
//! and databases: the workspace's core invariants.

use proptest::prelude::*;
use rd_core::{Catalog, DbGenerator, TableSchema};
use rd_trc::random::{GenConfig, QueryGenerator};

fn catalog() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("R", ["A", "B"]),
        TableSchema::new("S", ["B"]),
        TableSchema::new("T", ["A"]),
    ])
    .unwrap()
}

fn random_query(seed: u64) -> rd_trc::TrcQuery {
    QueryGenerator::new(catalog(), GenConfig::default(), seed).next_query()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Generated queries are valid TRC*.
    #[test]
    fn generated_queries_are_valid(seed in 0u64..20_000) {
        let q = random_query(seed);
        prop_assert!(q.check(&catalog()).is_ok());
        prop_assert!(rd_trc::check::is_nondisjunctive(&q));
    }

    /// Canonicalization is idempotent and preserves signature + semantics.
    #[test]
    fn canonicalization_invariants(seed in 0u64..20_000) {
        let q = random_query(seed);
        let c = rd_trc::canonicalize(&q);
        prop_assert_eq!(rd_trc::canonicalize(&c), c.clone());
        prop_assert_eq!(c.signature(), q.signature());
        let mut gen = DbGenerator::with_int_domain(catalog(), 3, 3, seed);
        for _ in 0..5 {
            let db = gen.next_db();
            let a = rd_trc::eval_query(&q, &db).unwrap();
            let b = rd_trc::eval_query(&c, &db).unwrap();
            prop_assert_eq!(a.tuples(), b.tuples());
        }
    }

    /// The TRC printer round-trips through the parser.
    #[test]
    fn printer_parser_roundtrip(seed in 0u64..20_000) {
        let q = random_query(seed);
        let text = rd_trc::to_ascii(&q);
        let back = rd_trc::parser::parse_query_unchecked(&text).unwrap();
        prop_assert_eq!(back, q);
    }

    /// Theorem 8: TRC* -> diagram -> TRC* preserves validity, signature,
    /// and semantics.
    #[test]
    fn diagram_roundtrip(seed in 0u64..20_000) {
        let q = random_query(seed);
        let d = rd_diagram::from_trc(&q, &catalog()).unwrap();
        d.validate().unwrap();
        prop_assert_eq!(d.signature(), q.signature());
        let back = rd_diagram::to_trc(&d, &catalog()).unwrap();
        let mut gen = DbGenerator::with_int_domain(catalog(), 3, 3, seed ^ 0xD1A);
        for _ in 0..4 {
            let db = gen.next_db();
            let a = rd_trc::eval_query(&q, &db).unwrap();
            let b = rd_trc::eval_query(&back.branches[0], &db).unwrap();
            prop_assert_eq!(a.tuples(), b.tuples());
        }
    }

    /// Theorem 6 part 5: TRC* -> SQL* -> TRC* preserves signature and
    /// semantics.
    #[test]
    fn sql_roundtrip(seed in 0u64..20_000) {
        let q = random_query(seed);
        let sql = rd_sql::trc_to_sql(&q).unwrap();
        let u = rd_sql::ast::SqlUnion::single(sql);
        prop_assert_eq!(u.signature(), q.signature());
        let back = rd_sql::sql_to_trc(&u, &catalog()).unwrap();
        let mut gen = DbGenerator::with_int_domain(catalog(), 3, 3, seed ^ 0x501);
        for _ in 0..4 {
            let db = gen.next_db();
            let a = rd_trc::eval_query(&q, &db).unwrap();
            let b = rd_trc::eval_query(&back.branches[0], &db).unwrap();
            prop_assert_eq!(a.tuples(), b.tuples());
        }
    }

    /// Dissociation invariants (Def. 10): length-preserving, schema-
    /// preserving, fresh names.
    #[test]
    fn dissociation_invariants(seed in 0u64..20_000) {
        let q = random_query(seed);
        let d = rd_pattern::dissociate::dissociate(
            &rd_pattern::AnyQuery::Trc(q.clone()),
            &catalog(),
            "p",
        )
        .unwrap();
        prop_assert_eq!(d.mapping.len(), q.signature().len());
        let fresh: std::collections::BTreeSet<&String> =
            d.mapping.iter().map(|(_, f)| f).collect();
        prop_assert_eq!(fresh.len(), d.mapping.len());
        let base = catalog();
        for (orig, f) in &d.mapping {
            prop_assert_eq!(
                d.catalog.require(f).unwrap().attrs(),
                base.require(orig).unwrap().attrs()
            );
        }
        // A query is always pattern-isomorphic to itself.
        let v = rd_pattern::pattern_isomorphic(
            &rd_pattern::AnyQuery::Trc(q.clone()),
            &rd_pattern::AnyQuery::Trc(q),
            &catalog(),
            &rd_pattern::EquivOptions { random_rounds: 20, ..Default::default() },
        );
        prop_assert!(v.is_isomorphic());
    }

    /// RA evaluation respects schema inference: evaluating any generated
    /// query's RA translation yields tuples of the inferred arity.
    #[test]
    fn ra_translation_schema_consistency(seed in 0u64..20_000) {
        let q = random_query(seed);
        let p = rd_translate::trc_to_datalog(&q, &catalog()).unwrap();
        let e = rd_translate::datalog_to_ra(&p, &catalog()).unwrap();
        let schema = e.schema(&catalog()).unwrap();
        let mut gen = DbGenerator::with_int_domain(catalog(), 3, 3, seed ^ 0xA11);
        let db = gen.next_db();
        let out = rd_ra::eval(&e, &db).unwrap();
        prop_assert_eq!(out.attrs.len(), schema.len());
        for t in &out.tuples {
            prop_assert_eq!(t.arity(), schema.len());
        }
    }
}
