//! Property-based tests for the interned-value representation: random
//! databases (with string *and* integer values) and random queries must
//! evaluate identically through the interned path and through a
//! string-resolved reference database ([`Database::uninterned`]), and the
//! four languages must still agree with each other post-refactor.

use proptest::prelude::*;
use rd_core::exec::{execute_with, ExecOptions};
use rd_core::{Catalog, Database, DbGenerator, Relation, TableSchema, Tuple, Value};
use rd_trc::random::{GenConfig, QueryGenerator};

fn catalog() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("R", ["A", "B"]),
        TableSchema::new("S", ["B"]),
        TableSchema::new("T", ["A"]),
    ])
    .unwrap()
}

fn random_query(seed: u64) -> rd_trc::TrcQuery {
    QueryGenerator::new(catalog(), GenConfig::default(), seed).next_query()
}

/// A mixed int/string domain: string values exercise interning (equality
/// on symbol ids) and the resolved lexicographic order comparisons.
fn mixed_domain() -> Vec<Value> {
    vec![
        Value::int(0),
        Value::int(1),
        Value::int(2),
        Value::str("apple"),
        Value::str("red"),
        Value::str("zebra"),
    ]
}

/// The string-resolved reference copy of `db`: same content, interning
/// disabled, every stored value a raw `Int`/`Str`.
fn uninterned_copy(db: &Database) -> Database {
    let mut raw = Database::uninterned();
    for rel in db.iter() {
        raw.add_relation(rel.resolved());
    }
    raw
}

/// A wider mixed domain for the at-scale runs: enough distinct values
/// that generated relations actually reach hundreds of distinct rows
/// (set semantics collapses duplicates on the 6-value domain above).
fn wide_domain() -> Vec<Value> {
    let mut d: Vec<Value> = (0..48).map(Value::int).collect();
    d.extend((0..16).map(|i| Value::str(format!("w{i:02}"))));
    d
}

/// Lowers the same TRC* query into all four languages against `db`.
fn four_plans(q: &rd_trc::TrcQuery, cat: &Catalog, db: &Database) -> [rd_core::exec::Plan; 4] {
    let p = rd_translate::trc_to_datalog(q, cat).unwrap();
    let e = rd_translate::datalog_to_ra(&p, cat).unwrap();
    let sql = rd_sql::ast::SqlUnion::single(rd_sql::trc_to_sql(q).unwrap());
    let trc_u = rd_trc::TrcUnion::new(vec![q.clone()]).unwrap();
    [
        rd_trc::lower_union(&trc_u, db).unwrap(),
        rd_core::exec::Plan::Program(rd_datalog::lower_program(&p, db).unwrap()),
        rd_ra::lower(&e, db).unwrap(),
        rd_sql::lower_sql(&sql, db).unwrap(),
    ]
}

/// Runs `plan` batched and scalar over `db`, and batched over the
/// string-resolved reference, asserting all three agree.
fn assert_batched_scalar_reference_agree(
    plan: &rd_core::exec::Plan,
    reference_plan: &rd_core::exec::Plan,
    db: &Database,
    raw: &Database,
    label: &str,
) {
    let fast = execute_with(plan, db, ExecOptions { batch: true }).unwrap();
    let slow = execute_with(plan, db, ExecOptions { batch: false }).unwrap();
    assert_eq!(fast.tuples(), slow.tuples(), "{label}: batched vs scalar");
    let reference = execute_with(reference_plan, raw, ExecOptions { batch: true }).unwrap();
    assert_eq!(
        db.resolve_relation(&fast).tuples(),
        raw.resolve_relation(&reference).tuples(),
        "{label}: interned vs uninterned"
    );
}

/// Relation sizes straddling the batch chunk size
/// ([`rd_core::exec::CHUNK_ROWS`] = 1024): the last chunk of a scan is
/// short (1023), exactly full (1024), or forces one extra chunk (1025).
/// Results must be identical between the batched and scalar executors,
/// in every language, interned or not.
#[test]
fn chunk_boundary_sizes_agree_across_languages() {
    assert_eq!(
        rd_core::exec::CHUNK_ROWS,
        1024,
        "test sizes track the chunk size"
    );
    let cat = catalog();
    let q = rd_trc::parse_query(
        "{ q(A) | exists r in R [ q.A = r.A and \
           (exists s in S [ s.B = r.B ]) and not (exists t in T [ t.A = r.A ]) ] }",
        &cat,
    )
    .unwrap();
    for n in [1023usize, 1024, 1025] {
        let mut db = Database::new();
        let mut r = Relation::empty(TableSchema::new("R", ["A", "B"]));
        for i in 0..n {
            // (A, B) pairs are distinct by construction (i = 41*(i/41) +
            // i%41), so the relation holds exactly `n` rows.
            let a = if i % 7 == 0 {
                Value::str(format!("a{}", i % 41))
            } else {
                Value::int((i % 41) as i64)
            };
            r.insert(Tuple(vec![a, Value::int((i / 41) as i64)]))
                .unwrap();
        }
        assert_eq!(r.len(), n, "row count must land exactly on the boundary");
        db.add_relation(r);
        let mut s = Relation::empty(TableSchema::new("S", ["B"]));
        for j in 0..26 {
            s.insert(Tuple(vec![Value::int(j)])).unwrap();
        }
        db.add_relation(s);
        let mut t = Relation::empty(TableSchema::new("T", ["A"]));
        for k in 0..12 {
            t.insert(Tuple(vec![Value::int(k)])).unwrap();
        }
        for k in [0usize, 7, 14, 21, 28, 35] {
            t.insert(Tuple(vec![Value::str(format!("a{k}"))])).unwrap();
        }
        db.add_relation(t);

        let raw = uninterned_copy(&db);
        let plans = four_plans(&q, &cat, &db);
        let reference_plans = four_plans(&q, &cat, &raw);
        for (lang, (plan, reference)) in plans.iter().zip(&reference_plans).enumerate() {
            assert_batched_scalar_reference_agree(
                plan,
                reference,
                &db,
                &raw,
                &format!("n={n} lang={lang}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Interned evaluation agrees with the string-resolved reference
    /// path on random databases and random TRC* queries.
    #[test]
    fn interned_matches_string_reference(seed in 0u64..20_000) {
        let q = random_query(seed);
        let mut gen = DbGenerator::new(catalog(), mixed_domain(), 4, seed ^ 0x1237);
        for _ in 0..3 {
            let db = gen.next_db();
            let raw = uninterned_copy(&db);
            prop_assert_eq!(&db, &raw, "copies must hold the same content");
            prop_assert_eq!(db.fingerprint(), raw.fingerprint());
            let interned = rd_trc::eval_query(&q, &db).unwrap();
            let reference = rd_trc::eval_query(&q, &raw).unwrap();
            // Compare in the resolved edge representation (the reference
            // result already is; resolve_relation is the identity there).
            prop_assert_eq!(
                db.resolve_relation(&interned).tuples(),
                raw.resolve_relation(&reference).tuples()
            );
        }
    }

    /// All four languages agree on interned databases: TRC (source),
    /// Datalog and RA (Theorem 6 translations), and SQL (evaluated via
    /// its own front-end path).
    #[test]
    fn four_languages_agree_post_refactor(seed in 0u64..20_000) {
        let q = random_query(seed);
        let cat = catalog();
        let p = rd_translate::trc_to_datalog(&q, &cat).unwrap();
        let e = rd_translate::datalog_to_ra(&p, &cat).unwrap();
        let sql = rd_sql::ast::SqlUnion::single(rd_sql::trc_to_sql(&q).unwrap());
        let mut gen = DbGenerator::new(cat, mixed_domain(), 4, seed ^ 0x51AB);
        for _ in 0..2 {
            let db = gen.next_db();
            let trc_out = rd_trc::eval_query(&q, &db).unwrap();
            let dl_out = rd_datalog::eval_program(&p, &db).unwrap();
            prop_assert_eq!(trc_out.tuples(), dl_out.tuples(), "trc vs datalog");
            let ra_out = rd_ra::eval(&e, &db).unwrap();
            prop_assert_eq!(&trc_out.tuples().iter().cloned().collect::<Vec<_>>(),
                            &ra_out.tuples.iter().cloned().collect::<Vec<_>>(),
                            "trc vs ra");
            let sql_out = rd_sql::translate::eval_sql(&sql, &db).unwrap();
            prop_assert_eq!(trc_out.tuples(), sql_out.tuples(), "trc vs sql");
        }
    }

    /// The unified executor agrees with the `Database::uninterned()`
    /// reference path across *all four languages*: random TRC* queries
    /// are carried into Datalog*, RA*, and SQL* (Theorem 6), each is
    /// lowered onto the shared plan IR and executed over the interned
    /// database and the string-resolved copy, and every pair of results
    /// must match in the resolved edge representation. This pins the
    /// one-executor refactor to the per-language semantics.
    #[test]
    fn unified_executor_matches_uninterned_reference_all_languages(seed in 0u64..20_000) {
        let q = random_query(seed);
        let cat = catalog();
        let p = rd_translate::trc_to_datalog(&q, &cat).unwrap();
        let e = rd_translate::datalog_to_ra(&p, &cat).unwrap();
        let sql = rd_sql::ast::SqlUnion::single(rd_sql::trc_to_sql(&q).unwrap());
        let trc_u = rd_trc::TrcUnion::new(vec![q.clone()]).unwrap();
        let mut gen = DbGenerator::new(cat, mixed_domain(), 4, seed ^ 0x9E3A);
        for _ in 0..2 {
            let db = gen.next_db();
            let raw = uninterned_copy(&db);
            // Lower once per database (plans bake in interned ids and
            // size-driven scan orders) and run the shared executor.
            let pairs: [(rd_core::exec::Plan, rd_core::exec::Plan); 4] = [
                (rd_trc::lower_union(&trc_u, &db).unwrap(),
                 rd_trc::lower_union(&trc_u, &raw).unwrap()),
                (rd_core::exec::Plan::Program(rd_datalog::lower_program(&p, &db).unwrap()),
                 rd_core::exec::Plan::Program(rd_datalog::lower_program(&p, &raw).unwrap())),
                (rd_ra::lower(&e, &db).unwrap(), rd_ra::lower(&e, &raw).unwrap()),
                (rd_sql::lower_sql(&sql, &db).unwrap(), rd_sql::lower_sql(&sql, &raw).unwrap()),
            ];
            let mut resolved_first: Option<std::collections::BTreeSet<rd_core::Tuple>> = None;
            for (interned_plan, reference_plan) in &pairs {
                let interned = rd_core::exec::execute(interned_plan, &db).unwrap();
                let reference = rd_core::exec::execute(reference_plan, &raw).unwrap();
                let resolved = db.resolve_relation(&interned).tuples().clone();
                prop_assert_eq!(&resolved, raw.resolve_relation(&reference).tuples(),
                                "interned vs uninterned");
                // And all four languages agree with each other.
                match &resolved_first {
                    None => resolved_first = Some(resolved),
                    Some(first) => prop_assert_eq!(first, &resolved, "cross-language"),
                }
            }
        }
    }

    /// The batched executor agrees with the tuple-at-a-time executor and
    /// with the `Database::uninterned()` reference on databases of at
    /// least 256 rows — enough volume that keyed probes, dense-key
    /// tables, and quantifier pruning all do real work — across all four
    /// languages.
    #[test]
    fn batched_matches_scalar_and_uninterned_at_scale(seed in 0u64..20_000) {
        let q = random_query(seed);
        let cat = catalog();
        let mut gen = DbGenerator::new(cat.clone(), wide_domain(), 300, seed ^ 0xBA7C);
        let mut db = gen.next_db();
        while db.iter().map(|r| r.len()).sum::<usize>() < 256 {
            db = gen.next_db();
        }
        let raw = uninterned_copy(&db);
        let plans = four_plans(&q, &cat, &db);
        let reference_plans = four_plans(&q, &cat, &raw);
        for (lang, (plan, reference)) in plans.iter().zip(&reference_plans).enumerate() {
            assert_batched_scalar_reference_agree(plan, reference, &db, &raw,
                                                  &format!("seed={seed} lang={lang}"));
        }
    }

    /// The planner must not change results: evaluating with bindings
    /// and conjuncts in reversed source order agrees with the original.
    #[test]
    fn join_reorder_preserves_semantics(seed in 0u64..20_000) {
        let q = random_query(seed);
        // Build a structurally reversed twin by round-tripping through
        // the printer with reversed binding lists where possible; at
        // minimum, canonicalization + evaluation must be stable.
        let c = rd_trc::canonicalize(&q);
        let mut gen = DbGenerator::new(catalog(), mixed_domain(), 3, seed ^ 0x77);
        for _ in 0..2 {
            let db = gen.next_db();
            let a = rd_trc::eval_query(&q, &db).unwrap();
            let b = rd_trc::eval_query(&c, &db).unwrap();
            prop_assert_eq!(a.tuples(), b.tuples());
        }
    }
}
