//! Property-based tests for the interned-value representation: random
//! databases (with string *and* integer values) and random queries must
//! evaluate identically through the interned path and through a
//! string-resolved reference database ([`Database::uninterned`]), and the
//! four languages must still agree with each other post-refactor.

use proptest::prelude::*;
use rd_core::{Catalog, Database, DbGenerator, TableSchema, Value};
use rd_trc::random::{GenConfig, QueryGenerator};

fn catalog() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("R", ["A", "B"]),
        TableSchema::new("S", ["B"]),
        TableSchema::new("T", ["A"]),
    ])
    .unwrap()
}

fn random_query(seed: u64) -> rd_trc::TrcQuery {
    QueryGenerator::new(catalog(), GenConfig::default(), seed).next_query()
}

/// A mixed int/string domain: string values exercise interning (equality
/// on symbol ids) and the resolved lexicographic order comparisons.
fn mixed_domain() -> Vec<Value> {
    vec![
        Value::int(0),
        Value::int(1),
        Value::int(2),
        Value::str("apple"),
        Value::str("red"),
        Value::str("zebra"),
    ]
}

/// The string-resolved reference copy of `db`: same content, interning
/// disabled, every stored value a raw `Int`/`Str`.
fn uninterned_copy(db: &Database) -> Database {
    let mut raw = Database::uninterned();
    for rel in db.iter() {
        raw.add_relation(rel.resolved());
    }
    raw
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Interned evaluation agrees with the string-resolved reference
    /// path on random databases and random TRC* queries.
    #[test]
    fn interned_matches_string_reference(seed in 0u64..20_000) {
        let q = random_query(seed);
        let mut gen = DbGenerator::new(catalog(), mixed_domain(), 4, seed ^ 0x1237);
        for _ in 0..3 {
            let db = gen.next_db();
            let raw = uninterned_copy(&db);
            prop_assert_eq!(&db, &raw, "copies must hold the same content");
            prop_assert_eq!(db.fingerprint(), raw.fingerprint());
            let interned = rd_trc::eval_query(&q, &db).unwrap();
            let reference = rd_trc::eval_query(&q, &raw).unwrap();
            // Compare in the resolved edge representation (the reference
            // result already is; resolve_relation is the identity there).
            prop_assert_eq!(
                db.resolve_relation(&interned).tuples(),
                raw.resolve_relation(&reference).tuples()
            );
        }
    }

    /// All four languages agree on interned databases: TRC (source),
    /// Datalog and RA (Theorem 6 translations), and SQL (evaluated via
    /// its own front-end path).
    #[test]
    fn four_languages_agree_post_refactor(seed in 0u64..20_000) {
        let q = random_query(seed);
        let cat = catalog();
        let p = rd_translate::trc_to_datalog(&q, &cat).unwrap();
        let e = rd_translate::datalog_to_ra(&p, &cat).unwrap();
        let sql = rd_sql::ast::SqlUnion::single(rd_sql::trc_to_sql(&q).unwrap());
        let mut gen = DbGenerator::new(cat, mixed_domain(), 4, seed ^ 0x51AB);
        for _ in 0..2 {
            let db = gen.next_db();
            let trc_out = rd_trc::eval_query(&q, &db).unwrap();
            let dl_out = rd_datalog::eval_program(&p, &db).unwrap();
            prop_assert_eq!(trc_out.tuples(), dl_out.tuples(), "trc vs datalog");
            let ra_out = rd_ra::eval(&e, &db).unwrap();
            prop_assert_eq!(&trc_out.tuples().iter().cloned().collect::<Vec<_>>(),
                            &ra_out.tuples.iter().cloned().collect::<Vec<_>>(),
                            "trc vs ra");
            let sql_out = rd_sql::translate::eval_sql(&sql, &db).unwrap();
            prop_assert_eq!(trc_out.tuples(), sql_out.tuples(), "trc vs sql");
        }
    }

    /// The unified executor agrees with the `Database::uninterned()`
    /// reference path across *all four languages*: random TRC* queries
    /// are carried into Datalog*, RA*, and SQL* (Theorem 6), each is
    /// lowered onto the shared plan IR and executed over the interned
    /// database and the string-resolved copy, and every pair of results
    /// must match in the resolved edge representation. This pins the
    /// one-executor refactor to the per-language semantics.
    #[test]
    fn unified_executor_matches_uninterned_reference_all_languages(seed in 0u64..20_000) {
        let q = random_query(seed);
        let cat = catalog();
        let p = rd_translate::trc_to_datalog(&q, &cat).unwrap();
        let e = rd_translate::datalog_to_ra(&p, &cat).unwrap();
        let sql = rd_sql::ast::SqlUnion::single(rd_sql::trc_to_sql(&q).unwrap());
        let trc_u = rd_trc::TrcUnion::new(vec![q.clone()]).unwrap();
        let mut gen = DbGenerator::new(cat, mixed_domain(), 4, seed ^ 0x9E3A);
        for _ in 0..2 {
            let db = gen.next_db();
            let raw = uninterned_copy(&db);
            // Lower once per database (plans bake in interned ids and
            // size-driven scan orders) and run the shared executor.
            let pairs: [(rd_core::exec::Plan, rd_core::exec::Plan); 4] = [
                (rd_trc::lower_union(&trc_u, &db).unwrap(),
                 rd_trc::lower_union(&trc_u, &raw).unwrap()),
                (rd_core::exec::Plan::Program(rd_datalog::lower_program(&p, &db).unwrap()),
                 rd_core::exec::Plan::Program(rd_datalog::lower_program(&p, &raw).unwrap())),
                (rd_ra::lower(&e, &db).unwrap(), rd_ra::lower(&e, &raw).unwrap()),
                (rd_sql::lower_sql(&sql, &db).unwrap(), rd_sql::lower_sql(&sql, &raw).unwrap()),
            ];
            let mut resolved_first: Option<std::collections::BTreeSet<rd_core::Tuple>> = None;
            for (interned_plan, reference_plan) in &pairs {
                let interned = rd_core::exec::execute(interned_plan, &db).unwrap();
                let reference = rd_core::exec::execute(reference_plan, &raw).unwrap();
                let resolved = db.resolve_relation(&interned).tuples().clone();
                prop_assert_eq!(&resolved, raw.resolve_relation(&reference).tuples(),
                                "interned vs uninterned");
                // And all four languages agree with each other.
                match &resolved_first {
                    None => resolved_first = Some(resolved),
                    Some(first) => prop_assert_eq!(first, &resolved, "cross-language"),
                }
            }
        }
    }

    /// The planner must not change results: evaluating with bindings
    /// and conjuncts in reversed source order agrees with the original.
    #[test]
    fn join_reorder_preserves_semantics(seed in 0u64..20_000) {
        let q = random_query(seed);
        // Build a structurally reversed twin by round-tripping through
        // the printer with reversed binding lists where possible; at
        // minimum, canonicalization + evaluation must be stable.
        let c = rd_trc::canonicalize(&q);
        let mut gen = DbGenerator::new(catalog(), mixed_domain(), 3, seed ^ 0x77);
        for _ in 0..2 {
            let db = gen.next_db();
            let a = rd_trc::eval_query(&q, &db).unwrap();
            let b = rd_trc::eval_query(&c, &db).unwrap();
            prop_assert_eq!(a.tuples(), b.tuples());
        }
    }
}
