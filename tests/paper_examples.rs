//! Integration tests spanning all crates: the paper's worked examples,
//! end to end.

use rd_core::{Catalog, Database, DbGenerator, Relation, TableSchema, Value};
use rd_pattern::{pattern_isomorphic, AnyQuery, EquivOptions};

fn rs_catalog() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("R", ["A", "B"]),
        TableSchema::new("S", ["B"]),
    ])
    .unwrap()
}

/// Example 1 / Fig. 2a: the "reserved all boats" query goes from TRC
/// through SQL, Datalog, RA and the diagram, agreeing everywhere.
#[test]
fn example1_reserved_all_boats_end_to_end() {
    let catalog = Catalog::from_schemas([
        TableSchema::new("Sailor", ["sid", "sname"]),
        TableSchema::new("Reserves", ["sid", "bid"]),
        TableSchema::new("Boat", ["bid"]),
    ])
    .unwrap();
    let q = rd_trc::parse_query(
        "{ q(sname) | exists s in Sailor [ q.sname = s.sname and not (exists b in Boat [ \
         not (exists r in Reserves [ r.sid = s.sid and r.bid = b.bid ]) ]) ] }",
        &catalog,
    )
    .unwrap();
    // Like Kiyana's observation: the RA translation needs extra Sailor
    // references (Fig. 1), while the diagram preserves all three tables.
    let dl = rd_translate::trc_to_datalog(&q, &catalog).unwrap();
    assert!(dl.signature().len() > q.signature().len());
    let d = rd_diagram::from_trc(&q, &catalog).unwrap();
    assert_eq!(d.signature().len(), 3);
    // Differential evaluation.
    let dbs = DbGenerator::with_int_domain(catalog.clone(), 3, 4, 11);
    let n = rd_translate::check_equivalent_results(&q, &catalog, dbs.take(40))
        .map_err(|e| e.1)
        .unwrap();
    assert_eq!(n, 40);
}

/// Example 3 / Fig. 6: the sentence "all sailors reserve some red boat"
/// as SQL, TRC and a diagram without an output table.
#[test]
fn example3_boolean_sentence() {
    let catalog = Catalog::from_schemas([
        TableSchema::new("Sailor", ["sid"]),
        TableSchema::new("Reserves", ["sid", "bid"]),
        TableSchema::new("Boat", ["bid", "color"]),
    ])
    .unwrap();
    let sql = rd_sql::parse_sql(
        "SELECT NOT EXISTS (SELECT * FROM Sailor s WHERE NOT EXISTS \
         (SELECT b.bid FROM Boat b, Reserves r WHERE b.color = 'red' \
          AND r.bid = b.bid AND r.sid = s.sid))",
        &catalog,
    )
    .unwrap();
    let trc = rd_sql::sql_to_trc(&sql, &catalog).unwrap();
    let sentence = &trc.branches[0];
    assert!(sentence.is_sentence());
    let d = rd_diagram::from_trc(sentence, &catalog).unwrap();
    assert!(d.cells[0].output.is_none());
    // Instance where it holds…
    let mut db = Database::new();
    db.add_relation(Relation::from_rows(TableSchema::new("Sailor", ["sid"]), [[1i64]]).unwrap());
    db.add_relation(
        Relation::from_rows(TableSchema::new("Reserves", ["sid", "bid"]), [[1i64, 7]]).unwrap(),
    );
    db.add_relation(
        Relation::from_rows(
            TableSchema::new("Boat", ["bid", "color"]),
            vec![vec![Value::int(7), Value::str("red")]],
        )
        .unwrap(),
    );
    assert!(rd_trc::eval_sentence(sentence, &db).unwrap());
    // …and where it fails (sailor 2 reserves nothing).
    db.relation_mut("Sailor")
        .unwrap()
        .insert_values([2i64])
        .unwrap();
    assert!(!rd_trc::eval_sentence(sentence, &db).unwrap());
}

/// Example 8 / Fig. 9a-c: eliminating an inner disjunction by De Morgan
/// preserves logic but not the pattern.
#[test]
fn example8_demorgan_rewrite_changes_pattern() {
    let catalog = Catalog::from_schemas([
        TableSchema::new("R", ["A", "B", "C"]),
        TableSchema::new("S", ["B", "C"]),
    ])
    .unwrap();
    let disjunctive = rd_sql::parse_sql(
        "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS (SELECT * FROM S WHERE NOT EXISTS \
         (SELECT * FROM R AS R2 WHERE (R2.B = S.B OR R2.C = S.C) AND R2.A = R.A))",
        &catalog,
    )
    .unwrap();
    let rewritten = rd_sql::parse_sql(
        "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS (SELECT * FROM S WHERE \
         NOT EXISTS (SELECT * FROM R AS R2 WHERE R2.B = S.B AND R2.A = R.A) AND \
         NOT EXISTS (SELECT * FROM R AS R3 WHERE R3.C = S.C AND R3.A = R.A))",
        &catalog,
    )
    .unwrap();
    // Logically equivalent…
    let mut gen = DbGenerator::with_int_domain(catalog.clone(), 3, 4, 77);
    for _ in 0..40 {
        let db = gen.next_db();
        let a = rd_sql::translate::eval_sql(&disjunctive, &db).unwrap();
        let b = rd_sql::translate::eval_sql(&rewritten, &db).unwrap();
        assert_eq!(a.tuples(), b.tuples());
    }
    // …but with different signatures (3 vs 4 references), hence not
    // pattern-isomorphic.
    assert_eq!(disjunctive.signature().len(), 3);
    assert_eq!(rewritten.signature().len(), 4);
    let v = pattern_isomorphic(
        &AnyQuery::Sql(disjunctive),
        &AnyQuery::Sql(rewritten.clone()),
        &catalog,
        &EquivOptions::default(),
    );
    assert!(!v.is_isomorphic());
    // The rewritten SQL* query is in the fragment and has a diagram
    // (Fig. 9c).
    assert!(rd_sql::is_sql_star(&rewritten, &catalog));
    let trc = rd_sql::sql_to_trc(&rewritten, &catalog).unwrap();
    rd_diagram::from_trc(&trc.branches[0], &catalog).unwrap();
}

/// Example 15 / Fig. 18: a disjunctive sentence expressed with double
/// negation in the non-disjunctive fragment.
#[test]
fn example15_disjunction_via_double_negation() {
    let catalog = Catalog::from_schemas([TableSchema::new("R", ["A"])]).unwrap();
    let or_version = rd_trc::parse_query("exists r in R [ r.A = 1 or r.A = 2 ]", &catalog).unwrap();
    let demorgan = rd_trc::parse_query(
        "not (not (exists r in R [ r.A = 1 ]) and not (exists r2 in R [ r2.A = 2 ]))",
        &catalog,
    )
    .unwrap();
    assert!(!rd_trc::check::is_nondisjunctive(&or_version));
    assert!(rd_trc::check::is_nondisjunctive(&demorgan));
    let mut gen = DbGenerator::with_int_domain(catalog.clone(), 4, 3, 5);
    for _ in 0..50 {
        let db = gen.next_db();
        assert_eq!(
            rd_trc::eval_sentence(&or_version, &db).unwrap(),
            rd_trc::eval_sentence(&demorgan, &db).unwrap()
        );
    }
    // Fig. 18b: the diagram has two sibling negation boxes inside one box.
    let d = rd_diagram::from_trc(&demorgan, &catalog).unwrap();
    assert_eq!(d.cells[0].root.children.len(), 1);
    assert_eq!(d.cells[0].root.children[0].children.len(), 2);
}

/// Example 9 / Fig. 9d-e: a union of queries evaluates as the union of
/// its cells, and cannot be expressed without union (it is checked to be
/// outside every single-branch fragment).
#[test]
fn example9_union_cells() {
    let catalog =
        Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["A"])])
            .unwrap();
    let u = rd_trc::parse_union(
        "{ q(A) | exists r in R [ q.A = r.A ] } union { q(A) | exists s in S [ q.A = s.A ] }",
        &catalog,
    )
    .unwrap();
    let d = rd_diagram::from_trc_union(&u, &catalog).unwrap();
    assert_eq!(d.cells.len(), 2);
    let back = rd_diagram::to_trc(&d, &catalog).unwrap();
    let mut gen = DbGenerator::with_int_domain(catalog.clone(), 3, 3, 13);
    for _ in 0..30 {
        let db = gen.next_db();
        let a = rd_trc::eval_union(&u, &db).unwrap();
        let b = rd_trc::eval_union(&back, &db).unwrap();
        assert_eq!(a.tuples(), b.tuples());
    }
}

/// Example 21 / Fig. 26: Q3 ("values of R with no smaller value in S")
/// has no pattern-isomorphic RA*/Datalog* form; the repaired 4th-column
/// variant does.
#[test]
fn example21_builtin_negation_boundary() {
    let catalog =
        Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["A"])])
            .unwrap();
    let q3 = rd_trc::parse_query(
        "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.A < r.A ]) ] }",
        &catalog,
    )
    .unwrap();
    let dl = rd_translate::trc_to_datalog(&q3, &catalog).unwrap();
    // The repair added one R reference (Fig. 26p).
    assert_eq!(dl.signature().len(), 3);
    assert_eq!(dl.signature().iter().filter(|t| *t == "R").count(), 2);
    // Still logically equivalent.
    let mut gen = DbGenerator::with_int_domain(catalog.clone(), 4, 3, 21);
    for _ in 0..40 {
        let db = gen.next_db();
        let a = rd_trc::eval_query(&q3, &db).unwrap();
        let b = rd_datalog::eval_program(&dl, &db).unwrap();
        assert_eq!(a.tuples(), b.tuples());
    }
}

/// The full SQL syntactic-variant family of Fig. 15 collapses to one
/// canonical form with identical semantics.
#[test]
fn fig15_sql_variants_collapse() {
    let catalog = rs_catalog();
    let groups: [&[&str]; 2] = [
        &[
            "SELECT DISTINCT R.A FROM R, S WHERE R.B = S.B",
            "SELECT DISTINCT R.A FROM R WHERE EXISTS (SELECT * FROM S WHERE R.B = S.B)",
            "SELECT DISTINCT R.A FROM R WHERE R.B IN (SELECT S.B FROM S)",
            "SELECT DISTINCT R.A FROM R WHERE R.B = ANY (SELECT S.B FROM S)",
        ],
        &[
            "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS (SELECT * FROM S WHERE R.B = S.B)",
            "SELECT DISTINCT R.A FROM R WHERE R.B NOT IN (SELECT S.B FROM S)",
            "SELECT DISTINCT R.A FROM R WHERE R.B <> ALL (SELECT S.B FROM S)",
        ],
    ];
    let mut gen = DbGenerator::with_int_domain(catalog.clone(), 3, 4, 15);
    let dbs: Vec<Database> = (&mut gen).take(25).collect();
    for group in groups {
        let canonical: Vec<_> = group
            .iter()
            .map(|text| rd_sql::parse_sql(text, &catalog).unwrap())
            .collect();
        for db in &dbs {
            let first = rd_sql::translate::eval_sql(&canonical[0], db).unwrap();
            for q in &canonical[1..] {
                let out = rd_sql::translate::eval_sql(q, db).unwrap();
                assert_eq!(out.tuples(), first.tuples());
            }
        }
    }
}

/// Example 6 / Fig. 7: logically equivalent, same signature, different
/// patterns — the motivating case for dissociation.
#[test]
fn example6_dissociation_separates_patterns() {
    let catalog = Catalog::from_schemas([TableSchema::new("R", ["A", "B"])]).unwrap();
    let q1 = rd_sql::parse_sql(
        "SELECT DISTINCT R1.A FROM R R1, R R2 WHERE R1.A = R2.A",
        &catalog,
    )
    .unwrap();
    let q2 = rd_sql::parse_sql(
        "SELECT DISTINCT R1.A FROM R R1, R R2 WHERE R1.B = R2.B",
        &catalog,
    )
    .unwrap();
    // Logically equivalent on every database…
    let mut gen = DbGenerator::with_int_domain(catalog.clone(), 3, 4, 6);
    for _ in 0..40 {
        let db = gen.next_db();
        let a = rd_sql::translate::eval_sql(&q1, &db).unwrap();
        let b = rd_sql::translate::eval_sql(&q2, &db).unwrap();
        assert_eq!(a.tuples(), b.tuples());
    }
    // …but not pattern-isomorphic.
    let v = pattern_isomorphic(
        &AnyQuery::Sql(q1),
        &AnyQuery::Sql(q2),
        &catalog,
        &EquivOptions::default(),
    );
    assert!(!v.is_isomorphic());
}
