//! Umbrella crate re-exporting the full Relational Diagrams workspace API.
pub use rd_core as core;
pub use rd_datalog as datalog;
pub use rd_diagram as diagram;
pub use rd_engine as engine;
pub use rd_pattern as pattern;
pub use rd_ra as ra;
pub use rd_server as server;
pub use rd_sql as sql;
pub use rd_study as study;
pub use rd_textbook as textbook;
pub use rd_translate as translate;
pub use rd_trc as trc;
