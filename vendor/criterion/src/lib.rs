//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Benchmarks compile and run with the same source: each `bench_function`
//! times its closure over a warmup plus `sample_size` measured batches and
//! prints mean ns/iter. No statistical analysis, plots, or reports.

use std::time::Instant;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim takes no CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Times `f` and prints `id`'s mean iteration cost.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total_nanos: 0,
            total_iters: 0,
        };
        // Warmup round (not recorded).
        f(&mut b);
        b.total_nanos = 0;
        b.total_iters = 0;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let per_iter = if b.total_iters == 0 {
            0.0
        } else {
            b.total_nanos as f64 / b.total_iters as f64
        };
        println!(
            "{id:<40} {per_iter:>12.1} ns/iter ({} iters)",
            b.total_iters
        );
        self
    }
}

/// Passed to each benchmark closure; accumulates timed iterations.
pub struct Bencher {
    total_nanos: u128,
    total_iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`, scaling the batch to the routine's cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for batches of roughly 5ms.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().as_nanos().max(1);
        let batch = ((5_000_000 / once) as u64).clamp(1, 10_000);
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.total_iters += batch;
    }
}

/// Prevents the optimizer from eliding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: both the plain form and the
/// `name/config/targets` form of real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
