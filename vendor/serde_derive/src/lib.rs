//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — structs (named, tuple, unit) and enums with
//! unit / tuple / struct variants, no generics — using only the built-in
//! `proc_macro` API (no `syn`/`quote`, which are unavailable offline).
//!
//! The generated impls target the simplified traits in the shim `serde`
//! crate: `Serialize::to_json(&self) -> serde::json::Value` and
//! `Deserialize::from_json(&Value) -> Result<Self, String>`. Field types
//! never need to be parsed: the generated code calls the trait methods and
//! lets type inference resolve them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a `struct` or `enum` item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_json(&self.{f}))"))
                .collect();
            format!("::serde::json::Value::Object(vec![{}])", entries.join(", "))
        }
        Item::TupleStruct { arity: 1, .. } => {
            // Newtype structs are transparent, matching real serde.
            "::serde::Serialize::to_json(&self.0)".to_string()
        }
        Item::TupleStruct { arity, .. } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::json::Value::Array(vec![{}])", entries.join(", "))
        }
        Item::UnitStruct { .. } => "::serde::json::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::json::Value::String({vn:?}.to_string())"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::json::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_json(__f0))])"
                        ),
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::json::Value::Object(vec![({vn:?}.to_string(), ::serde::json::Value::Array(vec![{}]))])",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_json({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => ::serde::json::Value::Object(vec![({vn:?}.to_string(), ::serde::json::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl should parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json(::serde::json::field(__v, {f:?}))?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_json(__v)?))")
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_json(::serde::json::at(__v, {i}))?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Item::UnitStruct { name } => format!("Ok({name})"),
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push(format!("{vn:?} => return Ok({name}::{vn})"));
                    }
                    VariantShape::Tuple(1) => {
                        tagged_arms.push(format!(
                            "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_json(__inner)?))"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_json(::serde::json::at(__inner, {i}))?")
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vn:?} => return Ok({name}::{vn}({}))",
                            inits.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::Deserialize::from_json(::serde::json::field(__inner, {f:?}))?")
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vn:?} => return Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::json::Value::String(__s) = __v {{\n\
                         match __s.as_str() {{ {}, _ => {{}} }}\n\
                     }}",
                    unit_arms.join(", ")
                )
            };
            let tagged_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let Some((__tag, __inner)) = ::serde::json::variant(__v) {{\n\
                         match __tag {{ {}, _ => {{}} }}\n\
                     }}",
                    tagged_arms.join(", ")
                )
            };
            format!(
                "{unit_match}\n{tagged_match}\n\
                 Err(format!(\"unrecognized value for enum `{name}`: {{__v}}\"))"
            )
        }
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(__v: &::serde::json::Value) -> Result<Self, String> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl should parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------------------
// Token-level parsing of the derive input
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("shim serde_derive: expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("shim serde_derive: expected item name, found {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("shim serde_derive: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: split_top_level(g.stream()).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("shim serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("shim serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("shim serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas, tracking angle-bracket depth
/// so commas inside `BTreeMap<K, V>` and friends don't split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth: usize = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Parses `vis name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field_tokens| {
            let mut i = 0;
            skip_attrs_and_vis(&field_tokens, &mut i);
            match &field_tokens[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("shim serde_derive: expected field name, found {t}"),
            }
        })
        .collect()
}

/// Parses enum variants: `Name`, `Name(T, ...)`, or `Name { f: T, ... }`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|variant_tokens| {
            let mut i = 0;
            skip_attrs_and_vis(&variant_tokens, &mut i);
            let name = match &variant_tokens[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("shim serde_derive: expected variant name, found {t}"),
            };
            i += 1;
            let shape = match variant_tokens.get(i) {
                None => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                // Explicit discriminants (`Name = 3`) don't affect shape.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
                other => panic!("shim serde_derive: unexpected variant body {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}
