//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! single-parameter tests whose strategy is a numeric range, and the
//! `prop_assert*` macros. Cases are drawn from a deterministic seeded
//! generator; there is no shrinking — a failing case panics with the
//! sampled input in the assertion message via [`proptest!`]'s case label.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Test-runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; unused.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 0,
        }
    }
}

/// Everything a `use proptest::prelude::*;` caller expects in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// A strategy: a value source a [`proptest!`] parameter can draw from.
/// Implemented for numeric ranges.
pub trait Strategy {
    /// The values the strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Runs `body` for each of `cfg.cases` deterministic samples of `strategy`.
/// Used by the [`proptest!`] expansion; not part of real proptest's API.
pub fn run_cases<S: Strategy>(
    test_name: &str,
    cfg: &ProptestConfig,
    strategy: S,
    mut body: impl FnMut(S::Value),
) {
    // A fixed per-test seed keeps failures reproducible run-to-run.
    let seed = test_name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..cfg.cases {
        body(strategy.sample(&mut rng));
    }
}

/// The shim's `proptest!` macro: expands each property into a plain `#[test]`
/// looping over sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($var:ident in $strategy:expr) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__cfg, $strategy, |$var| $body);
            }
        )*
    };
    (
        $($(#[$meta:meta])* fn $name:ident($var:ident in $strategy:expr) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($var in $strategy) $body)*
        }
    };
}

/// `prop_assert!` — panics like `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    proptest! {
        #![proptest_config(crate::ProptestConfig { cases: 32, ..crate::ProptestConfig::default() })]

        /// The macro wires config, sampling, and assertions together.
        #[test]
        fn samples_respect_the_range(x in 10u64..20) {
            prop_assert!((10..20).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0i64..5) {
            prop_assert!(x >= 0);
            prop_assert_ne!(x, 5);
        }
    }
}
