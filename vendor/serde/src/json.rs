//! A self-contained JSON value model: the common ground between the shim
//! `serde` traits and the shim `serde_json` front-end.
//!
//! Objects preserve insertion order (a `Vec` of pairs), so serialized
//! structs keep their field order just like real `serde_json`.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without a fractional part, e.g. `42`.
    Int(i64),
    /// A floating-point number, e.g. `0.5`.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an `f64` if this is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an `i64` if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The pairs if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Renders the value as compact JSON.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as 2-space-indented JSON.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                use std::fmt::Write;
                let _ = write!(out, "{i}"); // formats in place, no temporary
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Keep a fractional marker so the value re-parses as a float.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&f.to_string());
                    }
                } else {
                    // JSON has no NaN/Infinity; real serde_json emits null.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    // Copy maximal runs that need no escaping in one push; only the
    // rare escape characters take the per-char path.
    let bytes = s.as_bytes();
    let mut from = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: &str = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            b if b < 0x20 => {
                out.push_str(&s[from..i]);
                from = i + 1;
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", b);
                continue;
            }
            _ => continue,
        };
        out.push_str(&s[from..i]);
        out.push_str(escape);
        from = i + 1;
    }
    out.push_str(&s[from..]);
    out.push('"');
}

/// Field access used by generated `Deserialize` impls: a missing member
/// reads as `null` (so `Option` fields tolerate omission).
pub fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key).unwrap_or(&Value::Null)
}

/// Positional access used by generated `Deserialize` impls.
pub fn at(v: &Value, i: usize) -> &Value {
    &v[i]
}

/// Externally-tagged enum access: a single-entry object's `(tag, payload)`.
pub fn variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Object(pairs) if pairs.len() == 1 => Some((pairs[0].0.as_str(), &pairs[0].1)),
        _ => None,
    }
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                expected as char, self.pos
            ))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    /// Advances past a run of plain string bytes (anything but `"` or
    /// `\`) and returns it as validated UTF-8. Scanning whole runs —
    /// instead of decoding one character at a time — is what keeps
    /// string parsing linear.
    fn plain_run(&mut self) -> Result<&'a str, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' || b == b'\\' {
                break;
            }
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        // Fast path: a string with no escapes is one run, one copy.
        let run = self.plain_run()?;
        if self.peek() == Some(b'"') {
            self.pos += 1;
            return Ok(run.to_string());
        }
        let mut out = run.to_string();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => out.push_str(self.plain_run()?),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y".into())),
            ("d".into(), Value::Float(0.5)),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn float_with_integral_value_reparses_as_float() {
        let v = Value::Float(3.0);
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn index_and_get() {
        let v = parse(r#"{"xs": [10, 20]}"#).unwrap();
        assert_eq!(v["xs"][1].as_i64(), Some(20));
        assert!(v["missing"].is_null());
    }
}
