//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies the sources rely on are vendored as
//! minimal, API-compatible shims (see `vendor/README.md`). This crate keeps
//! the parts of serde's surface the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the companion
//!   proc-macro crate `serde_derive`), generating field-wise conversions;
//! * the [`Serialize`] / [`Deserialize`] traits, simplified to convert
//!   through one concrete JSON value model ([`json::Value`]) instead of
//!   serde's generic `Serializer`/`Deserializer` visitors.
//!
//! The shape of the generated JSON matches real serde's defaults closely
//! enough for the workspace's exports and tests: structs become objects,
//! newtype structs are transparent, unit enum variants become strings, and
//! data-carrying variants become externally tagged single-entry objects.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Conversion into the shim's JSON value model.
///
/// The real serde trait is `fn serialize<S: Serializer>(&self, s: S)`;
/// every use in this workspace ultimately targets JSON through
/// `serde_json`, so the shim collapses the serializer abstraction into a
/// direct conversion.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> json::Value;
}

/// Conversion from the shim's JSON value model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_json(v: &json::Value) -> Result<Self, String>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        T::from_json(v).map(Box::new)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &json::Value) -> Result<Self, String> {
                match v {
                    json::Value::Int(i) => Ok(*i as $t),
                    json::Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(format!("expected integer, found {other}")),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &json::Value) -> Result<Self, String> {
                match v {
                    json::Value::Float(f) => Ok(*f as $t),
                    json::Value::Int(i) => Ok(*i as $t),
                    other => Err(format!("expected number, found {other}")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other}")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other}")),
        }
    }
}

impl Serialize for char {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json(&self) -> json::Value {
        json::Value::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(format!("expected array, found {other}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(format!("expected array, found {other}")),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

/// Renders a serialized map key as the JSON object key string.
fn key_string(v: json::Value) -> String {
    match v {
        json::Value::String(s) => s,
        other => other.to_compact(),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_json()), v.to_json()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(format!("expected object, found {other}")),
        }
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_json(&self) -> json::Value {
        // Sort for deterministic output, matching the BTreeMap rendering.
        let mut pairs: Vec<(String, json::Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_json()), v.to_json()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        json::Value::Object(pairs)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> json::Value {
                json::Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &json::Value) -> Result<Self, String> {
                Ok(($($name::from_json(json::at(v, $idx))?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for json::Value {
    fn to_json(&self) -> json::Value {
        self.clone()
    }
}

impl Deserialize for json::Value {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
