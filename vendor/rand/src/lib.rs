//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Covers the surface this workspace uses — `StdRng::seed_from_u64`,
//! `Rng::random_range` over integer and float ranges, and
//! `SliceRandom::shuffle` — with a deterministic xoshiro256++ generator.
//! All uses in the workspace are explicitly seeded (reproducibility is a
//! design goal of the experiments), so no OS entropy source is needed.

pub mod rngs;
pub mod seq;

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output stream of a generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range, e.g. `rng.random_range(0..10)` or
    /// `rng.random_range(0.0..1.0)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample itself uniformly.
///
/// Like real rand, this is a *blanket* impl over [`SampleUniform`] element
/// types — the blanket shape matters for type inference: `0..100` must stay
/// an unresolved `{integer}` until surrounding code (e.g. a comparison with
/// a `u32`) pins it.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types that support uniform sampling from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..7);
            assert!((3..7).contains(&v));
            let w = rng.random_range(0..=2u64);
            assert!(w <= 2);
            let f = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let n = rng.random_range(-5i64..-1);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
