//! Sequence-related random operations.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements should not shuffle to identity");
    }
}
