//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: xoshiro256++ (Blackman & Vigna),
/// seeded through SplitMix64. Not cryptographically secure — neither is
/// real `StdRng` for this workspace's purposes (seeded simulation and
/// randomized testing).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}
