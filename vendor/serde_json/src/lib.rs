//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Serialization goes through the shim `serde::Serialize` trait into
//! [`Value`], which owns the text rendering and parsing.

pub use serde::json::Value;

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_compact())
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty())
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Parses a JSON document into any `Deserialize` type (annotate the target
/// type; `Value` itself deserializes as identity).
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text).map_err(Error)?;
    T::from_json(&value).map_err(Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip_through_value() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x"], "b": null}"#).unwrap();
        assert_eq!(v["a"][0].as_i64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_str(), Some("x"));
        assert!(v["b"].is_null());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"[{"k": true}]"#).unwrap();
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }
}
