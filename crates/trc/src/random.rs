//! Seeded random generation of valid TRC\* queries.
//!
//! Used by the Theorem 6 differential tests and benchmarks: every generated
//! query is well-formed, safe, guarded, and in the non-disjunctive fragment
//! by construction, so it can be translated to Datalog\*, RA\*, and SQL\*
//! and the four evaluations compared on random databases.

use crate::ast::{Binding, Formula, OutputSpec, Predicate, Term, TrcQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rd_core::{Catalog, CmpOp, Value};

/// Tuning knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum negation nesting depth.
    pub max_depth: usize,
    /// Maximum tables bound per scope.
    pub max_tables_per_scope: usize,
    /// Maximum extra predicates per scope (beyond structural ones).
    pub max_preds_per_scope: usize,
    /// Maximum negated sub-scopes per scope.
    pub max_children: usize,
    /// Constants to draw from for selection predicates.
    pub constants: Vec<Value>,
    /// Probability (0–100) that a join predicate reaches an outer scope.
    pub cross_scope_join_pct: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 2,
            max_tables_per_scope: 2,
            max_preds_per_scope: 2,
            max_children: 2,
            constants: (0..4).map(Value::int).collect(),
            cross_scope_join_pct: 60,
        }
    }
}

/// Generates random valid TRC\* queries over `catalog`.
#[derive(Debug)]
pub struct QueryGenerator {
    catalog: Catalog,
    config: GenConfig,
    rng: StdRng,
    counter: usize,
}

/// A variable visible while generating: its name, table, and whether it is
/// local to the current negation scope (and may therefore guard).
#[derive(Clone)]
struct Visible {
    var: String,
    table: String,
    local: bool,
}

impl QueryGenerator {
    /// Creates a generator with a fixed seed.
    pub fn new(catalog: Catalog, config: GenConfig, seed: u64) -> Self {
        assert!(!catalog.is_empty(), "catalog must have at least one table");
        QueryGenerator {
            catalog,
            config,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Draws the next random TRC\* query (always non-Boolean).
    pub fn next_query(&mut self) -> TrcQuery {
        self.counter = 0;
        let (bindings, visible) = self.fresh_scope();
        let mut parts = Vec::new();
        // Output definition: pick a root table attribute.
        let pick = self.rng.random_range(0..visible.len());
        let out_var = visible[pick].var.clone();
        let out_table = visible[pick].table.clone();
        let schema = self.catalog.require(&out_table).expect("table exists");
        let attr = schema.attrs()[self.rng.random_range(0..schema.arity())].clone();
        parts.push(Formula::Pred(Predicate::new(
            Term::attr("q", "out"),
            CmpOp::Eq,
            Term::attr(out_var, attr),
        )));
        self.fill_scope(&mut parts, &visible, 0);
        TrcQuery::query(
            OutputSpec::new("q", ["out"]),
            Formula::exists(bindings, Formula::and(parts)),
        )
    }

    /// Draws the next random Boolean TRC\* sentence.
    pub fn next_sentence(&mut self) -> TrcQuery {
        self.counter = 0;
        let (bindings, visible) = self.fresh_scope();
        let mut parts = Vec::new();
        self.fill_scope(&mut parts, &visible, 0);
        TrcQuery::sentence(Formula::exists(bindings, Formula::and(parts)))
    }

    /// Binds 1..=max fresh variables over random tables.
    fn fresh_scope(&mut self) -> (Vec<Binding>, Vec<Visible>) {
        let tables: Vec<String> = self.catalog.iter().map(|s| s.name().to_string()).collect();
        let n = self.rng.random_range(1..=self.config.max_tables_per_scope);
        let mut bindings = Vec::with_capacity(n);
        let mut visible = Vec::with_capacity(n);
        for _ in 0..n {
            let table = tables[self.rng.random_range(0..tables.len())].clone();
            self.counter += 1;
            let var = format!("v{}", self.counter);
            bindings.push(Binding::new(var.clone(), table.clone()));
            visible.push(Visible {
                var,
                table,
                local: true,
            });
        }
        (bindings, visible)
    }

    /// Adds guarded predicates and negated children to a scope.
    fn fill_scope(&mut self, parts: &mut Vec<Formula>, visible: &[Visible], depth: usize) {
        let n_preds = self.rng.random_range(0..=self.config.max_preds_per_scope);
        for _ in 0..n_preds {
            parts.push(Formula::Pred(self.guarded_predicate(visible)));
        }
        if depth < self.config.max_depth {
            let n_children = self.rng.random_range(0..=self.config.max_children);
            for _ in 0..n_children {
                let (bindings, locals) = self.fresh_scope();
                // Inside the child's negation, outer variables lose their
                // guard status.
                let mut child_visible: Vec<Visible> = visible
                    .iter()
                    .map(|v| Visible {
                        local: false,
                        ..v.clone()
                    })
                    .collect();
                child_visible.extend(locals);
                let mut child_parts = Vec::new();
                // Always link the child to its context with one guarded join
                // when an outer variable exists (keeps queries interesting).
                if child_visible.iter().any(|v| !v.local) {
                    child_parts.push(Formula::Pred(self.linking_predicate(&child_visible)));
                }
                self.fill_scope(&mut child_parts, &child_visible, depth + 1);
                parts.push(Formula::not(Formula::exists(
                    bindings,
                    Formula::and(child_parts),
                )));
            }
        }
    }

    /// A predicate guarded by a local variable: `local.attr θ rhs`.
    fn guarded_predicate(&mut self, visible: &[Visible]) -> Predicate {
        let locals: Vec<&Visible> = visible.iter().filter(|v| v.local).collect();
        let guard = locals[self.rng.random_range(0..locals.len())];
        let schema = self.catalog.require(&guard.table).expect("table exists");
        let attr = schema.attrs()[self.rng.random_range(0..schema.arity())].clone();
        let left = Term::attr(guard.var.clone(), attr);
        let op = CmpOp::ALL[self.rng.random_range(0..CmpOp::ALL.len())];
        let right = if self.rng.random_range(0..100) < self.config.cross_scope_join_pct
            && visible.len() > 1
        {
            // Join with any visible variable (possibly outer).
            let other = &visible[self.rng.random_range(0..visible.len())];
            let os = self.catalog.require(&other.table).expect("table exists");
            let oattr = os.attrs()[self.rng.random_range(0..os.arity())].clone();
            Term::attr(other.var.clone(), oattr)
        } else {
            let c = &self.config.constants;
            Term::Const(c[self.rng.random_range(0..c.len())].clone())
        };
        Predicate::new(left, op, right)
    }

    /// A guarded equality linking a local variable to an outer one.
    fn linking_predicate(&mut self, visible: &[Visible]) -> Predicate {
        let locals: Vec<&Visible> = visible.iter().filter(|v| v.local).collect();
        let outers: Vec<&Visible> = visible.iter().filter(|v| !v.local).collect();
        let l = locals[self.rng.random_range(0..locals.len())];
        let o = outers[self.rng.random_range(0..outers.len())];
        let ls = self.catalog.require(&l.table).expect("table exists");
        let os = self.catalog.require(&o.table).expect("table exists");
        let lattr = ls.attrs()[self.rng.random_range(0..ls.arity())].clone();
        let oattr = os.attrs()[self.rng.random_range(0..os.arity())].clone();
        Predicate::new(
            Term::attr(l.var.clone(), lattr),
            CmpOp::Eq,
            Term::attr(o.var.clone(), oattr),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{guard_violations, is_nondisjunctive};
    use rd_core::TableSchema;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
            TableSchema::new("T", ["A"]),
        ])
        .unwrap()
    }

    #[test]
    fn generated_queries_are_valid_trc_star() {
        let mut g = QueryGenerator::new(catalog(), GenConfig::default(), 7);
        for i in 0..200 {
            let q = g.next_query();
            assert!(q.check(&catalog()).is_ok(), "query {i} failed check: {q}");
            assert!(
                is_nondisjunctive(&q),
                "query {i} not in TRC*: {q} (violations: {:?})",
                guard_violations(&q)
            );
        }
    }

    #[test]
    fn generated_sentences_are_valid() {
        let mut g = QueryGenerator::new(catalog(), GenConfig::default(), 11);
        for _ in 0..100 {
            let s = g.next_sentence();
            assert!(s.is_sentence());
            assert!(s.check(&catalog()).is_ok());
            assert!(is_nondisjunctive(&s));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = QueryGenerator::new(catalog(), GenConfig::default(), 3);
        let mut b = QueryGenerator::new(catalog(), GenConfig::default(), 3);
        for _ in 0..20 {
            assert_eq!(a.next_query(), b.next_query());
        }
    }

    #[test]
    fn depth_zero_produces_conjunctive_queries() {
        let cfg = GenConfig {
            max_depth: 0,
            ..GenConfig::default()
        };
        let mut g = QueryGenerator::new(catalog(), cfg, 5);
        for _ in 0..50 {
            let q = g.next_query();
            assert_eq!(q.formula.negation_depth(), 0);
        }
    }
}
