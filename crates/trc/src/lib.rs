//! # rd-trc — safe Tuple Relational Calculus and the fragment TRC\*
//!
//! This crate implements the paper's central language (§2.3): safe TRC with
//! existential quantification, negation, conjunction — and, for the
//! relationally complete extension of §5, disjunction and union.
//!
//! It provides:
//!
//! * an [AST](ast) for queries `{q(A, …) | φ}`, Boolean sentences `φ`, and
//!   unions of queries;
//! * a [parser](mod@parser) and [printer](mod@printer) for an ASCII surface syntax
//!   that round-trips (the printer can also emit the paper's Unicode
//!   notation `∃r ∈ R[…]`);
//! * [well-formedness and safety checks](check), including the paper's
//!   *guardedness* (Definition 3) and the non-disjunctive fragment TRC\*
//!   (Definition 4);
//! * the [canonical form](canon) of §2.3 — existential quantifiers pulled
//!   up to the nearest enclosing negation, `¬(pred)` folded into the
//!   complemented comparison operator, conjunctions flattened;
//! * a nested-loop [evaluator](eval) over [`rd_core::Database`] instances;
//! * a seeded [random query generator](random) used for differential
//!   testing of the translations (Theorem 6).
//!
//! ## Surface syntax
//!
//! ```text
//! { q(sname) | exists s in Sailor [ q.sname = s.sname and
//!     not (exists b in Boat [ b.color = 'red' and
//!         not (exists r in Reserves [ r.bid = b.bid and r.sid = s.sid ]) ]) ] }
//! ```
//!
//! Boolean sentences omit the output head: `exists r in R [ r.A = 1 ]`.
//! Unions of queries are written `{...} union {...}`.
//!
//! ```
//! use rd_trc::parse_query;
//! use rd_core::{Catalog, TableSchema};
//!
//! let catalog = Catalog::from_schemas([
//!     TableSchema::new("R", ["A", "B"]),
//!     TableSchema::new("S", ["B"]),
//! ]).unwrap();
//! let q = parse_query("{ q(A) | exists r in R [ q.A = r.A and
//!                        not (exists s in S [ s.B = r.B ]) ] }", &catalog).unwrap();
//! assert!(q.check(&catalog).is_ok());
//! assert!(rd_trc::check::is_nondisjunctive(&q));
//! ```

pub mod ast;
pub mod canon;
pub mod check;
pub mod eval;
pub mod parser;
pub mod printer;
pub mod random;

pub use ast::{AttrRef, Binding, Formula, OutputSpec, Predicate, Term, TrcQuery, TrcUnion, Var};
pub use canon::canonicalize;
pub use eval::{
    eval_query, eval_sentence, eval_union, lower_query, lower_query_with, lower_sentence,
    lower_sentence_with, lower_union, lower_union_with,
};
pub use parser::{parse_query, parse_union};
pub use printer::{to_ascii, to_unicode};
