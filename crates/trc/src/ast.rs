//! Abstract syntax of safe Tuple Relational Calculus.
//!
//! The shapes mirror §2.3 of the paper. A query is
//! `{q(A₁,…,Aₖ) | φ}` where `φ` is built from existential quantifier
//! blocks, negation, conjunction, disjunction (only outside TRC\*), and
//! atomic comparison predicates. A *sentence* (Boolean query, §3.5) is the
//! same object without an output head. A [`TrcUnion`] is a union of queries
//! with identical output heads (§5, Example 9).

use rd_core::{Catalog, CmpOp, CoreError, CoreResult, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A tuple-variable name such as `r`, `s2`.
pub type Var = String;

/// A reference to an attribute of a tuple variable: `r.A`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrRef {
    /// Tuple variable, e.g. `r`.
    pub var: Var,
    /// Attribute name, e.g. `A`.
    pub attr: String,
}

impl AttrRef {
    /// `r.A`-style constructor.
    pub fn new(var: impl Into<Var>, attr: impl Into<String>) -> Self {
        AttrRef {
            var: var.into(),
            attr: attr.into(),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.var, self.attr)
    }
}

/// One side of a comparison: an attribute reference or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// `r.A`
    Attr(AttrRef),
    /// `5`, `'red'`
    Const(Value),
}

impl Term {
    /// Attribute-term constructor.
    pub fn attr(var: impl Into<Var>, attr: impl Into<String>) -> Self {
        Term::Attr(AttrRef::new(var, attr))
    }

    /// Constant-term constructor.
    pub fn value(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable referenced by this term, if any.
    pub fn var(&self) -> Option<&Var> {
        match self {
            Term::Attr(a) => Some(&a.var),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Attr(a) => write!(f, "{a}"),
            Term::Const(v) => write!(f, "{v}"),
        }
    }
}

/// An atomic comparison `left θ right`.
///
/// The paper distinguishes *join predicates* `r.A θ s.B` from *selection
/// predicates* `r.A θ v` (§2.3); [`Predicate::is_join`] recovers that
/// distinction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Predicate {
    /// Left term.
    pub left: Term,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right term.
    pub right: Term,
}

impl Predicate {
    /// Constructor.
    pub fn new(left: Term, op: CmpOp, right: Term) -> Self {
        Predicate { left, op, right }
    }

    /// `true` if both sides are attribute references.
    pub fn is_join(&self) -> bool {
        matches!((&self.left, &self.right), (Term::Attr(_), Term::Attr(_)))
    }

    /// `true` if exactly one side is a constant.
    pub fn is_selection(&self) -> bool {
        matches!(
            (&self.left, &self.right),
            (Term::Attr(_), Term::Const(_)) | (Term::Const(_), Term::Attr(_))
        )
    }

    /// The predicate with sides swapped and the operator flipped
    /// (identical meaning).
    pub fn flipped(&self) -> Predicate {
        Predicate {
            left: self.right.clone(),
            op: self.op.flipped(),
            right: self.left.clone(),
        }
    }

    /// The logical complement (`¬(a < b)` → `a >= b`).
    pub fn negated(&self) -> Predicate {
        Predicate {
            left: self.left.clone(),
            op: self.op.negated(),
            right: self.right.clone(),
        }
    }

    /// Variables mentioned on either side.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.left.var().into_iter().chain(self.right.var())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// An existential binding `v in T` (paper: `∃v ∈ T`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Binding {
    /// Tuple variable being bound.
    pub var: Var,
    /// Table it ranges over.
    pub table: String,
}

impl Binding {
    /// Constructor.
    pub fn new(var: impl Into<Var>, table: impl Into<String>) -> Self {
        Binding {
            var: var.into(),
            table: table.into(),
        }
    }
}

/// A TRC formula.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// Conjunction of sub-formulas. `And(vec![])` is the constant `true`
    /// (needed for bodies like `¬(∃r ∈ R[ ])` with no predicates).
    And(Vec<Formula>),
    /// Disjunction. Only legal outside the TRC\* fragment (§5).
    Or(Vec<Formula>),
    /// Negation `¬(φ)`.
    Not(Box<Formula>),
    /// An existential block `∃v₁ ∈ T₁, …, vₖ ∈ Tₖ [φ]`.
    Exists(Vec<Binding>, Box<Formula>),
    /// An atomic comparison.
    Pred(Predicate),
}

impl Formula {
    /// The constant `true` (empty conjunction).
    pub fn truth() -> Formula {
        Formula::And(Vec::new())
    }

    /// Conjunction that collapses singleton vectors.
    pub fn and(mut fs: Vec<Formula>) -> Formula {
        if fs.len() == 1 {
            fs.pop().expect("len checked")
        } else {
            Formula::And(fs)
        }
    }

    /// Negation helper — named for the logical connective, not the
    /// `std::ops::Not` method (this is an associated constructor).
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Existential helper.
    pub fn exists(bindings: Vec<Binding>, body: Formula) -> Formula {
        Formula::Exists(bindings, Box::new(body))
    }

    /// Visits every predicate in the formula.
    pub fn visit_predicates<'a>(&'a self, f: &mut impl FnMut(&'a Predicate)) {
        match self {
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    sub.visit_predicates(f);
                }
            }
            Formula::Not(sub) => sub.visit_predicates(f),
            Formula::Exists(_, body) => body.visit_predicates(f),
            Formula::Pred(p) => f(p),
        }
    }

    /// Visits every binding (in syntactic order).
    pub fn visit_bindings<'a>(&'a self, f: &mut impl FnMut(&'a Binding)) {
        match self {
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    sub.visit_bindings(f);
                }
            }
            Formula::Not(sub) => sub.visit_bindings(f),
            Formula::Exists(bindings, body) => {
                for b in bindings {
                    f(b);
                }
                body.visit_bindings(f);
            }
            Formula::Pred(_) => {}
        }
    }

    /// All variables bound anywhere inside the formula.
    pub fn bound_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.visit_bindings(&mut |b| {
            out.insert(b.var.clone());
        });
        out
    }

    /// Variables used in predicates but not bound inside this formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn walk(f: &Formula, bound: &mut Vec<Var>, free: &mut BTreeSet<Var>) {
            match f {
                Formula::And(fs) | Formula::Or(fs) => {
                    for sub in fs {
                        walk(sub, bound, free);
                    }
                }
                Formula::Not(sub) => walk(sub, bound, free),
                Formula::Exists(bindings, body) => {
                    let n = bound.len();
                    bound.extend(bindings.iter().map(|b| b.var.clone()));
                    walk(body, bound, free);
                    bound.truncate(n);
                }
                Formula::Pred(p) => {
                    for v in p.vars() {
                        if !bound.contains(v) {
                            free.insert(v.clone());
                        }
                    }
                }
            }
        }
        let mut free = BTreeSet::new();
        walk(self, &mut Vec::new(), &mut free);
        free
    }

    /// Renames every occurrence of table `from` (in bindings) to `to`.
    pub fn rename_table(&mut self, from: &str, to: &str) {
        match self {
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    sub.rename_table(from, to);
                }
            }
            Formula::Not(sub) => sub.rename_table(from, to),
            Formula::Exists(bindings, body) => {
                for b in bindings.iter_mut() {
                    if b.table == from {
                        b.table = to.to_string();
                    }
                }
                body.rename_table(from, to);
            }
            Formula::Pred(_) => {}
        }
    }

    /// Renames a tuple variable everywhere (bindings and predicates).
    /// The caller is responsible for avoiding capture.
    pub fn rename_var(&mut self, from: &str, to: &str) {
        let fix = |t: &mut Term| {
            if let Term::Attr(a) = t {
                if a.var == from {
                    a.var = to.to_string();
                }
            }
        };
        match self {
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    sub.rename_var(from, to);
                }
            }
            Formula::Not(sub) => sub.rename_var(from, to),
            Formula::Exists(bindings, body) => {
                for b in bindings.iter_mut() {
                    if b.var == from {
                        b.var = to.to_string();
                    }
                }
                body.rename_var(from, to);
            }
            Formula::Pred(p) => {
                fix(&mut p.left);
                fix(&mut p.right);
            }
        }
    }

    /// Maximum negation-nesting depth (`0` for negation-free formulas).
    pub fn negation_depth(&self) -> usize {
        match self {
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::negation_depth).max().unwrap_or(0)
            }
            Formula::Not(sub) => 1 + sub.negation_depth(),
            Formula::Exists(_, body) => body.negation_depth(),
            Formula::Pred(_) => 0,
        }
    }

    /// `true` if any `Or` occurs in the formula.
    pub fn contains_or(&self) -> bool {
        match self {
            Formula::Or(_) => true,
            Formula::And(fs) => fs.iter().any(Formula::contains_or),
            Formula::Not(sub) => sub.contains_or(),
            Formula::Exists(_, body) => body.contains_or(),
            Formula::Pred(_) => false,
        }
    }
}

/// The output head `q(A₁,…,Aₖ)` of a non-Boolean query.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OutputSpec {
    /// Name of the output table (conventionally `q`, §3.1 point 5).
    pub name: String,
    /// Output attribute names.
    pub attrs: Vec<String>,
}

impl OutputSpec {
    /// Constructor.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(
        name: impl Into<String>,
        attrs: I,
    ) -> Self {
        OutputSpec {
            name: name.into(),
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }
}

/// A TRC query: an optional output head plus a formula.
///
/// * `{q(A) | φ}` — `output = Some(..)`, a relational query;
/// * `φ` — `output = None`, a Boolean sentence (§3.5).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrcQuery {
    /// Output head; `None` for Boolean sentences.
    pub output: Option<OutputSpec>,
    /// The body formula (for queries, predicates `q.A = …` reference the
    /// output head's name).
    pub formula: Formula,
}

impl TrcQuery {
    /// A relational query `{head | formula}`.
    pub fn query(head: OutputSpec, formula: Formula) -> Self {
        TrcQuery {
            output: Some(head),
            formula,
        }
    }

    /// A Boolean sentence.
    pub fn sentence(formula: Formula) -> Self {
        TrcQuery {
            output: None,
            formula,
        }
    }

    /// `true` if the query is a Boolean sentence.
    pub fn is_sentence(&self) -> bool {
        self.output.is_none()
    }

    /// The *signature* of the query expression (Def. 9): the ordered list
    /// of its table references, in syntactic (quantifier) order.
    pub fn signature(&self) -> Vec<String> {
        let mut sig = Vec::new();
        self.formula
            .visit_bindings(&mut |b| sig.push(b.table.clone()));
        sig
    }

    /// Well-formedness + paper safety checks (delegates to [`crate::check`]).
    pub fn check(&self, catalog: &Catalog) -> CoreResult<()> {
        crate::check::check_query(self, catalog)
    }

    /// The set of table names referenced by the query.
    pub fn tables_used(&self) -> BTreeSet<String> {
        self.signature().into_iter().collect()
    }
}

/// A union of TRC queries with identical output heads (§5, Example 9).
///
/// A single-branch union is semantically the plain query.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrcUnion {
    /// The union branches.
    pub branches: Vec<TrcQuery>,
}

impl TrcUnion {
    /// Wraps a single query.
    pub fn single(q: TrcQuery) -> Self {
        TrcUnion { branches: vec![q] }
    }

    /// Builds a union, validating arity compatibility of the heads
    /// (Def. 16: same name and same set of attributes).
    pub fn new(branches: Vec<TrcQuery>) -> CoreResult<Self> {
        if branches.is_empty() {
            return Err(CoreError::Invalid("union must have >= 1 branch".into()));
        }
        let head = branches[0].output.clone();
        for b in &branches[1..] {
            if b.output != head {
                return Err(CoreError::Invalid(
                    "all union branches must have the same output head (Def. 16)".into(),
                ));
            }
        }
        Ok(TrcUnion { branches })
    }

    /// `true` if this union is a single query.
    pub fn is_single(&self) -> bool {
        self.branches.len() == 1
    }

    /// Concatenated signature across branches.
    pub fn signature(&self) -> Vec<String> {
        self.branches.iter().flat_map(TrcQuery::signature).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running division example (eq. 14):
    /// `{q(A) | ∃r∈R[q.A=r.A ∧ ¬(∃s∈S[¬(∃r2∈R[r2.B=s.B ∧ r2.A=r.A])])]}`.
    pub(crate) fn division() -> TrcQuery {
        let inner = Formula::exists(
            vec![Binding::new("r2", "R")],
            Formula::and(vec![
                Formula::Pred(Predicate::new(
                    Term::attr("r2", "B"),
                    CmpOp::Eq,
                    Term::attr("s", "B"),
                )),
                Formula::Pred(Predicate::new(
                    Term::attr("r2", "A"),
                    CmpOp::Eq,
                    Term::attr("r", "A"),
                )),
            ]),
        );
        let mid = Formula::exists(vec![Binding::new("s", "S")], Formula::not(inner));
        let root = Formula::exists(
            vec![Binding::new("r", "R")],
            Formula::and(vec![
                Formula::Pred(Predicate::new(
                    Term::attr("q", "A"),
                    CmpOp::Eq,
                    Term::attr("r", "A"),
                )),
                Formula::not(mid),
            ]),
        );
        TrcQuery::query(OutputSpec::new("q", ["A"]), root)
    }

    #[test]
    fn signature_in_syntactic_order() {
        assert_eq!(division().signature(), vec!["R", "S", "R"]);
    }

    #[test]
    fn free_and_bound_vars() {
        let q = division();
        assert_eq!(
            q.formula.bound_vars().into_iter().collect::<Vec<_>>(),
            vec!["r".to_string(), "r2".into(), "s".into()]
        );
        // Only the output variable `q` is free.
        assert_eq!(
            q.formula.free_vars().into_iter().collect::<Vec<_>>(),
            vec!["q".to_string()]
        );
    }

    #[test]
    fn negation_depth() {
        assert_eq!(division().formula.negation_depth(), 2);
        assert_eq!(Formula::truth().negation_depth(), 0);
    }

    #[test]
    fn rename_table_only_touches_bindings() {
        let mut q = division();
        q.formula.rename_table("R", "R_1");
        assert_eq!(q.signature(), vec!["R_1", "S", "R_1"]);
    }

    #[test]
    fn rename_var_touches_predicates() {
        let mut q = division();
        q.formula.rename_var("r2", "x");
        let mut seen = Vec::new();
        q.formula
            .visit_predicates(&mut |p| seen.push(p.to_string()));
        assert!(seen.contains(&"x.B = s.B".to_string()));
        assert!(seen.contains(&"x.A = r.A".to_string()));
    }

    #[test]
    fn union_head_validation() {
        let q1 = division();
        let mut q2 = division();
        q2.output = Some(OutputSpec::new("q", ["Z"]));
        assert!(TrcUnion::new(vec![q1.clone(), q1.clone()]).is_ok());
        assert!(TrcUnion::new(vec![q1, q2]).is_err());
        assert!(TrcUnion::new(vec![]).is_err());
    }

    #[test]
    fn predicate_helpers() {
        let p = Predicate::new(Term::attr("r", "A"), CmpOp::Lt, Term::value(5));
        assert!(p.is_selection());
        assert!(!p.is_join());
        assert_eq!(p.negated().op, CmpOp::Ge);
        assert_eq!(p.flipped().op, CmpOp::Gt);
        assert_eq!(p.to_string(), "r.A < 5");
    }

    #[test]
    fn contains_or_detection() {
        let q = division();
        assert!(!q.formula.contains_or());
        let f = Formula::Or(vec![Formula::truth(), Formula::truth()]);
        assert!(f.contains_or());
        assert!(Formula::not(f).contains_or());
    }
}
