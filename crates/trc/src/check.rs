//! Well-formedness, safety, guardedness (Def. 3) and fragment membership
//! (Def. 4) for TRC queries.

use crate::ast::{Formula, Predicate, Term, TrcQuery, Var};
use rd_core::{Catalog, CmpOp, CoreError, CoreResult};
use std::collections::BTreeMap;

/// Full static check: well-formedness against the catalog plus the paper's
/// safety conditions for safe TRC.
///
/// Checks performed:
/// 1. every binding references an existing table;
/// 2. no tuple variable is bound twice in overlapping scopes, and none
///    shadows the output head's name;
/// 3. every attribute reference resolves (bound variable + existing
///    attribute; output attributes for the head variable);
/// 4. the output head's variable only occurs in *equality* predicates
///    (§2.3: "WLOG, we only allow equality conditions with the result
///    table");
/// 5. safety: every output attribute has at least one defining equality
///    `q.A = r.B` located *outside all negations*, where `r` is bound
///    outside all negations (§3.2 step 5 / standard safety [Ullman 77]).
pub fn check_query(q: &TrcQuery, catalog: &Catalog) -> CoreResult<()> {
    let head_var = q.output.as_ref().map(|o| o.name.clone());
    let mut scope: Vec<(Var, String)> = Vec::new();
    check_formula(&q.formula, catalog, &head_var, q, &mut scope)?;
    check_output_safety(q)?;
    Ok(())
}

fn check_formula(
    f: &Formula,
    catalog: &Catalog,
    head_var: &Option<Var>,
    q: &TrcQuery,
    scope: &mut Vec<(Var, String)>,
) -> CoreResult<()> {
    match f {
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                check_formula(sub, catalog, head_var, q, scope)?;
            }
            Ok(())
        }
        Formula::Not(sub) => check_formula(sub, catalog, head_var, q, scope),
        Formula::Exists(bindings, body) => {
            let n = scope.len();
            for b in bindings {
                catalog.require(&b.table)?;
                if scope.iter().any(|(v, _)| v == &b.var)
                    || head_var.as_deref() == Some(b.var.as_str())
                {
                    return Err(CoreError::Invalid(format!(
                        "tuple variable '{}' bound twice (or shadows the output head)",
                        b.var
                    )));
                }
                scope.push((b.var.clone(), b.table.clone()));
            }
            let r = check_formula(body, catalog, head_var, q, scope);
            scope.truncate(n);
            r
        }
        Formula::Pred(p) => {
            for term in [&p.left, &p.right] {
                if let Term::Attr(a) = term {
                    if head_var.as_deref() == Some(a.var.as_str()) {
                        let head = q.output.as_ref().expect("head var implies output");
                        if !head.attrs.contains(&a.attr) {
                            return Err(CoreError::Invalid(format!(
                                "output head '{}' has no attribute '{}'",
                                head.name, a.attr
                            )));
                        }
                        if p.op != CmpOp::Eq {
                            return Err(CoreError::Invalid(format!(
                                "output attribute {a} may only appear in equality predicates \
                                 (canonical safe TRC, §2.3)"
                            )));
                        }
                    } else {
                        let table = scope
                            .iter()
                            .rev()
                            .find(|(v, _)| v == &a.var)
                            .map(|(_, t)| t.clone())
                            .ok_or_else(|| {
                                CoreError::Invalid(format!("unbound tuple variable '{}'", a.var))
                            })?;
                        let schema = catalog.require(&table)?;
                        if !schema.has_attr(&a.attr) {
                            return Err(CoreError::UnknownAttribute {
                                table,
                                attribute: a.attr.clone(),
                            });
                        }
                    }
                }
            }
            Ok(())
        }
    }
}

/// Collects the predicates located outside all negations, together with the
/// variables bound outside all negations.
fn root_level(q: &TrcQuery) -> (Vec<&Predicate>, Vec<&Var>) {
    fn walk<'a>(f: &'a Formula, preds: &mut Vec<&'a Predicate>, vars: &mut Vec<&'a Var>) {
        match f {
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    walk(sub, preds, vars);
                }
            }
            Formula::Not(_) => {}
            Formula::Exists(bindings, body) => {
                vars.extend(bindings.iter().map(|b| &b.var));
                walk(body, preds, vars);
            }
            Formula::Pred(p) => preds.push(p),
        }
    }
    let mut preds = Vec::new();
    let mut vars = Vec::new();
    walk(&q.formula, &mut preds, &mut vars);
    (preds, vars)
}

/// Safety of the output head (check 5 above). Sentences are trivially safe.
fn check_output_safety(q: &TrcQuery) -> CoreResult<()> {
    let Some(head) = &q.output else {
        return Ok(());
    };
    let (preds, root_vars) = root_level(q);
    for attr in &head.attrs {
        let defined = preds.iter().any(|p| {
            p.op == CmpOp::Eq && {
                let (a, other) = match (&p.left, &p.right) {
                    (Term::Attr(a), other) if a.var == head.name && &a.attr == attr => (a, other),
                    (other, Term::Attr(a)) if a.var == head.name && &a.attr == attr => (a, other),
                    _ => return false,
                };
                let _ = a;
                match other {
                    Term::Const(_) => true,
                    Term::Attr(o) => root_vars.contains(&&o.var),
                }
            }
        });
        if !defined {
            return Err(CoreError::Invalid(format!(
                "output attribute {}.{attr} has no defining equality outside all negations \
                 (safety condition of safe TRC)",
                head.name
            )));
        }
    }
    Ok(())
}

/// Returns every predicate violating *guardedness* (Definition 3): a
/// predicate is guarded iff it contains at least one attribute of a table
/// that is existentially quantified inside the same negation scope as the
/// predicate.
///
/// The "current negation scope" accumulates bindings through nested
/// `Exists` blocks and resets at each `Not`.
pub fn guard_violations(q: &TrcQuery) -> Vec<Predicate> {
    fn walk(f: &Formula, scope_vars: &mut Vec<Var>, scope_start: usize, out: &mut Vec<Predicate>) {
        match f {
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    walk(sub, scope_vars, scope_start, out);
                }
            }
            Formula::Not(sub) => {
                // A new negation scope begins: variables bound outside are
                // no longer local guards.
                let start = scope_vars.len();
                walk(sub, scope_vars, start, out);
            }
            Formula::Exists(bindings, body) => {
                let n = scope_vars.len();
                scope_vars.extend(bindings.iter().map(|b| b.var.clone()));
                walk(body, scope_vars, scope_start, out);
                scope_vars.truncate(n);
            }
            Formula::Pred(p) => {
                let local = &scope_vars[scope_start..];
                let guarded = p.vars().any(|v| local.contains(v));
                if !guarded {
                    out.push(p.clone());
                }
            }
        }
    }
    let mut out = Vec::new();
    let mut vars = Vec::new();
    walk(&q.formula, &mut vars, 0, &mut out);
    // At the outermost level, a predicate defining the output from a
    // root-bound table is guarded; predicates comparing two constants or
    // only the head variable are reported. The head variable itself never
    // guards (it is not an existentially quantified table variable), which
    // matches the paper: `q.A = r.A` is guarded by `r`.
    out
}

/// `true` if the query lies in the non-disjunctive fragment TRC\*
/// (Definition 4): no disjunction anywhere and every predicate guarded.
pub fn is_nondisjunctive(q: &TrcQuery) -> bool {
    !q.formula.contains_or() && guard_violations(q).is_empty()
}

/// Classifies each table reference by the parity of its negation depth.
/// Used by translations and by the monotonicity reasoning of Lemma 20:
/// even depth ⇒ the query is positive-monotone in that reference, odd ⇒
/// negative-monotone.
pub fn reference_polarities(q: &TrcQuery) -> Vec<(String, usize)> {
    fn walk(f: &Formula, depth: usize, out: &mut Vec<(String, usize)>) {
        match f {
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    walk(sub, depth, out);
                }
            }
            Formula::Not(sub) => walk(sub, depth + 1, out),
            Formula::Exists(bindings, body) => {
                for b in bindings {
                    out.push((b.table.clone(), depth));
                }
                walk(body, depth, out);
            }
            Formula::Pred(_) => {}
        }
    }
    let mut out = Vec::new();
    walk(&q.formula, 0, &mut out);
    out
}

/// Maps each bound variable to its table, failing on duplicates.
/// Convenience shared by translators.
pub fn var_tables(q: &TrcQuery) -> CoreResult<BTreeMap<Var, String>> {
    let mut map = BTreeMap::new();
    let mut dup = None;
    q.formula.visit_bindings(&mut |b| {
        if map.insert(b.var.clone(), b.table.clone()).is_some() {
            dup = Some(b.var.clone());
        }
    });
    match dup {
        Some(v) => Err(CoreError::Invalid(format!(
            "tuple variable '{v}' bound more than once"
        ))),
        None => Ok(map),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_query_unchecked};
    use rd_core::TableSchema;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
        ])
        .unwrap()
    }

    #[test]
    fn accepts_valid_division() {
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
            &catalog(),
        )
        .unwrap();
        assert!(is_nondisjunctive(&q));
        assert!(guard_violations(&q).is_empty());
    }

    #[test]
    fn rejects_unknown_table_and_attr() {
        assert!(parse_query("exists t in T [ t.A = 1 ]", &catalog()).is_err());
        assert!(parse_query("exists r in R [ r.Z = 1 ]", &catalog()).is_err());
    }

    #[test]
    fn rejects_unbound_var_and_double_binding() {
        assert!(parse_query("exists r in R [ x.A = 1 ]", &catalog()).is_err());
        assert!(parse_query("exists r in R [ exists r in R [ r.A = 1 ] ]", &catalog()).is_err());
    }

    #[test]
    fn rejects_unsafe_output() {
        // No defining equality at root scope for q.A.
        assert!(parse_query(
            "{ q(A) | exists r in R [ not (exists s in S [ s.B = r.B and q.A = r.A ]) ] }",
            &catalog()
        )
        .is_err());
        // Non-equality use of the output attribute.
        assert!(parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and q.A < r.B ] }",
            &catalog()
        )
        .is_err());
    }

    #[test]
    fn guardedness_matches_paper_examples() {
        // §2.3: ¬(∃r∈R[¬(r.A = 0)]) is NOT allowed — the inner predicate's
        // table is quantified outside the innermost negation.
        let q = parse_query_unchecked("not (exists r in R [ not (r.A = 0) ])").unwrap();
        assert_eq!(guard_violations(&q).len(), 1);
        assert!(!is_nondisjunctive(&q));
        // The logically-equivalent ¬(∃r∈R[r.A != 0]) IS allowed.
        let q = parse_query_unchecked("not (exists r in R [ r.A != 0 ])").unwrap();
        assert!(guard_violations(&q).is_empty());
        assert!(is_nondisjunctive(&q));
    }

    #[test]
    fn hidden_disjunction_example_is_guarded() {
        // §2.3's "hidden disjunction": r.A = 0 inside ¬(∃s∈S[…]) is
        // unguarded (r is bound outside the negation).
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and \
               not (exists s in S [ r.A = 0 and s.B = r.B ]) ] }",
            &catalog(),
        )
        .unwrap();
        let v = guard_violations(&q);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].to_string(), "r.A = 0");
        assert!(!is_nondisjunctive(&q));
    }

    #[test]
    fn or_excludes_from_fragment() {
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and (r.B = 1 or r.B = 2) ] }",
            &catalog(),
        )
        .unwrap();
        assert!(!is_nondisjunctive(&q));
    }

    #[test]
    fn polarities_track_negation_parity() {
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
            &catalog(),
        )
        .unwrap();
        assert_eq!(
            reference_polarities(&q),
            vec![
                ("R".to_string(), 0),
                ("S".to_string(), 1),
                ("R".to_string(), 2)
            ]
        );
    }

    #[test]
    fn sentences_skip_output_safety() {
        let q = parse_query("not (exists r in R [ r.A != 0 ])", &catalog()).unwrap();
        assert!(q.is_sentence());
    }

    #[test]
    fn var_tables_maps_and_rejects_duplicates() {
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B = r.B ]) ] }",
            &catalog(),
        )
        .unwrap();
        let m = var_tables(&q).unwrap();
        assert_eq!(m["r"], "R");
        assert_eq!(m["s"], "S");
    }
}
