//! TRC evaluation as a *lowering* onto the shared plan IR
//! ([`rd_core::exec`]).
//!
//! Evaluation works on the canonical form (the lowering canonicalizes
//! internally) and proceeds in two phases:
//!
//! 1. **Lower.** The formula is compiled once per query into the
//!    workspace-wide IR: every tuple variable gets a *slot* (so the
//!    runtime environment is a flat slot vector, not a string-keyed
//!    map), attribute names are resolved to column indices, and string
//!    constants are interned against the database — execution never
//!    touches a heap string. Each existential block becomes an
//!    [`rd_core::exec::Block`]: its conjuncts are classified, its
//!    bindings greedily reordered by estimated cost
//!    ([`rd_core::plan::scan_cost`] — prefer scans with bound equality
//!    keys, then smaller relations), equality predicates against
//!    already-bound terms become **hash-join keys**, and every other
//!    conjunct (filters, negated/quantified subformulas) is attached to
//!    the earliest scan after which its variables are bound.
//! 2. **Execute.** The shared executor ([`rd_core::exec::execute`])
//!    runs the plan: keyed scans probe lazily-built hash indexes,
//!    unkeyed scans iterate. Output tuples are computed from the
//!    defining equalities `q.A = term`; conjuncts that mention the
//!    output head are deferred and validated with the head bound.
//!
//! The compiled [`Plan`](rd_core::exec::Plan) carries no borrows, so
//! the engine can cache it per database epoch and skip this whole
//! module on a plan-cache hit.

use crate::ast::{Binding, Formula, Predicate, Term, TrcQuery, TrcUnion};
use crate::canon::canonicalize;
use rd_core::exec::{self, Block, EnvShape, Plan, QueryPlan, Scan, SentencePlan};
use rd_core::plan::{OrderStrategy, PlanHints, PlannerOpts, ScanCand};
use rd_core::{plan, CmpOp, CoreError, CoreResult, Database, Relation, TableSchema};
use std::collections::{BTreeSet, HashMap};

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

struct Compiler<'d> {
    db: &'d Database,
    /// Table statistics (sizes, distinct sketches, `Int` ranges, plus
    /// any feedback overrides) driving scan ordering.
    stats: plan::DbStats,
    /// Planner configuration (strategy, DP threshold).
    opts: PlannerOpts,
    /// Lexical scope: (variable, slot), innermost last.
    scope: Vec<(String, usize)>,
    /// Slot → schema of the table (or output head) it ranges over.
    slot_schemas: Vec<TableSchema>,
    /// Variables bound at the current compilation point (enumeration
    /// order, not lexical scope — the output head is in scope but only
    /// bound during deferred validation).
    bound: BTreeSet<String>,
    /// Number of hash-index cache slots handed out.
    n_indexes: usize,
    /// Estimated output cardinality of the most recently planned block.
    /// Nested blocks finish before their parent, so after lowering this
    /// holds the *root* block's estimate.
    block_est: Option<f64>,
}

impl<'d> Compiler<'d> {
    fn new(db: &'d Database, opts: &PlannerOpts, hints: &PlanHints) -> Self {
        let mut stats = plan::DbStats::of(db);
        stats.apply_hints(hints);
        Compiler {
            db,
            stats,
            opts: *opts,
            scope: Vec::new(),
            slot_schemas: Vec::new(),
            bound: BTreeSet::new(),
            n_indexes: 0,
            block_est: None,
        }
    }

    fn shape(&self) -> EnvShape {
        EnvShape {
            tuple_slots: self.slot_schemas.len(),
            value_slots: 0,
            indexes: self.n_indexes,
        }
    }

    fn push_schema_var(&mut self, var: &str, schema: TableSchema) -> usize {
        let slot = self.slot_schemas.len();
        self.slot_schemas.push(schema);
        self.scope.push((var.to_string(), slot));
        slot
    }

    fn push_binding(&mut self, b: &Binding) -> CoreResult<usize> {
        let schema = self.db.require(&b.table)?.schema().clone();
        Ok(self.push_schema_var(&b.var, schema))
    }

    fn lookup(&self, var: &str) -> Option<usize> {
        self.scope
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|&(_, s)| s)
    }

    fn compile_term(&self, t: &Term) -> CoreResult<exec::Term> {
        match t {
            Term::Const(v) => Ok(exec::Term::Const(self.db.lookup_value(v))),
            Term::Attr(a) => {
                let slot = self
                    .lookup(&a.var)
                    .ok_or_else(|| CoreError::Invalid(format!("unbound variable '{}'", a.var)))?;
                let schema = &self.slot_schemas[slot];
                let col =
                    schema
                        .attr_index(&a.attr)
                        .ok_or_else(|| CoreError::UnknownAttribute {
                            table: schema.name().to_string(),
                            attribute: a.attr.clone(),
                        })?;
                Ok(exec::Term::Col { slot, col })
            }
        }
    }

    fn compile_pred(&self, p: &Predicate) -> CoreResult<exec::Formula> {
        Ok(exec::Formula::Pred(exec::Pred {
            left: self.compile_term(&p.left)?,
            op: p.op,
            right: self.compile_term(&p.right)?,
        }))
    }

    fn compile_formula(&mut self, f: &Formula) -> CoreResult<exec::Formula> {
        match f {
            Formula::And(fs) => Ok(exec::Formula::And(
                fs.iter()
                    .map(|s| self.compile_formula(s))
                    .collect::<CoreResult<_>>()?,
            )),
            Formula::Or(fs) => Ok(exec::Formula::Or(
                fs.iter()
                    .map(|s| self.compile_formula(s))
                    .collect::<CoreResult<_>>()?,
            )),
            Formula::Not(sub) => Ok(exec::Formula::Not(Box::new(self.compile_formula(sub)?))),
            Formula::Exists(bindings, body) => {
                Ok(exec::Formula::Exists(self.compile_exists(bindings, body)?))
            }
            Formula::Pred(p) => self.compile_pred(p),
        }
    }

    fn compile_exists(&mut self, bindings: &[Binding], body: &Formula) -> CoreResult<Block> {
        let scope_mark = self.scope.len();
        let bound_snapshot = self.bound.clone();
        let mut slots = Vec::with_capacity(bindings.len());
        for b in bindings {
            slots.push(self.push_binding(b)?);
        }
        let block = self.plan_block(bindings, &slots, &conjuncts(body));
        self.scope.truncate(scope_mark);
        self.bound = bound_snapshot;
        block
    }

    /// Plans one existential block whose binding slots are already in
    /// scope: greedy scan ordering, key extraction, conjunct attachment.
    fn plan_block(
        &mut self,
        bindings: &[Binding],
        slots: &[usize],
        conjs: &[Formula],
    ) -> CoreResult<Block> {
        // Classify conjuncts. Predicates are join/selection candidates;
        // everything else (negation, nested quantifiers, disjunction)
        // waits until its free variables are bound.
        let mut preds: Vec<Option<(Predicate, BTreeSet<String>)>> = Vec::new();
        let mut subs: Vec<Option<(Formula, BTreeSet<String>)>> = Vec::new();
        for f in conjs {
            match f {
                Formula::Pred(p) => {
                    let vars: BTreeSet<String> = p.vars().cloned().collect();
                    preds.push(Some((p.clone(), vars)));
                }
                other => {
                    let free = other.free_vars();
                    subs.push(Some((other.clone(), free)));
                }
            }
        }
        let pre = self.attach_ready(&mut preds, &mut subs)?;
        // Under the cost-based strategy the whole block order is decided
        // up front by the dynamic program; the legacy greedy re-ranks
        // the remaining scans at every step instead.
        let forced: Vec<usize> = match self.opts.strategy {
            OrderStrategy::CostDp => {
                let cands = self.scan_cands(bindings, slots, &preds);
                let (order, est) = plan::order_scans(&cands, &self.opts);
                self.block_est = Some(est);
                order
            }
            OrderStrategy::Greedy => Vec::new(),
        };
        let mut forced = forced.into_iter();
        let mut scans = Vec::new();
        let mut remaining: Vec<usize> = (0..bindings.len()).collect();
        while !remaining.is_empty() {
            let bi = match self.opts.strategy {
                OrderStrategy::CostDp => {
                    let next = forced.next().expect("order covers every binding");
                    remaining.retain(|&x| x != next);
                    next
                }
                OrderStrategy::Greedy => {
                    // Greedy choice: cheapest next scan under the
                    // legacy cost model.
                    let mut best = 0usize;
                    let mut best_cost = f64::INFINITY;
                    for (k, &bi) in remaining.iter().enumerate() {
                        let b = &bindings[bi];
                        let keys = preds
                            .iter()
                            .flatten()
                            .filter(|(p, _)| self.key_side(p, &b.var).is_some())
                            .count();
                        let cost = plan::scan_cost(self.stats.size(&b.table), keys);
                        if cost < best_cost {
                            best_cost = cost;
                            best = k;
                        }
                    }
                    remaining.remove(best)
                }
            };
            let b = &bindings[bi];
            let schema = self.slot_schemas[slots[bi]].clone();
            // Extract the equality predicates usable as hash-join keys.
            let mut key_cols = Vec::new();
            let mut key_terms = Vec::new();
            for entry in preds.iter_mut() {
                let usable = entry
                    .as_ref()
                    .and_then(|(p, _)| self.key_side(p, &b.var).cloned());
                if let Some(scan_attr) = usable {
                    let (p, _) = entry.take().expect("checked above");
                    let col = schema.attr_index(&scan_attr.attr).ok_or_else(|| {
                        CoreError::UnknownAttribute {
                            table: schema.name().to_string(),
                            attribute: scan_attr.attr.clone(),
                        }
                    })?;
                    let other = if matches!(&p.left, Term::Attr(a) if a.var == b.var && a.attr == scan_attr.attr)
                    {
                        &p.right
                    } else {
                        &p.left
                    };
                    key_cols.push(col);
                    key_terms.push(self.compile_term(other)?);
                }
            }
            self.bound.insert(b.var.clone());
            let filters = self.attach_ready(&mut preds, &mut subs)?;
            let index_id = if key_cols.is_empty() {
                exec::FULL_SCAN
            } else {
                self.n_indexes += 1;
                self.n_indexes - 1
            };
            scans.push(Scan {
                rel: b.table.clone(),
                tuple_slot: Some(slots[bi]),
                key_cols,
                key_terms,
                bind_cols: Vec::new(),
                check_cols: Vec::new(),
                index_id,
                filters,
            });
        }
        // Anything left references variables outside every scope level;
        // compiling it surfaces the proper "unbound variable" error.
        let mut leftovers = Vec::new();
        for entry in preds.iter_mut() {
            if let Some((p, _)) = entry.take() {
                leftovers.push(self.compile_pred(&p)?);
            }
        }
        for entry in subs.iter_mut() {
            if let Some((f, _)) = entry.take() {
                leftovers.push(self.compile_formula(&f)?);
            }
        }
        let mut block = Block { pre, scans };
        if !leftovers.is_empty() {
            match block.scans.last_mut() {
                Some(last) => last.filters.extend(leftovers),
                None => block.pre.extend(leftovers),
            }
        }
        Ok(block)
    }

    /// Reduces one block's bindings and pending predicates to the
    /// numeric [`ScanCand`]s the cost-based orderer consumes: local
    /// predicate selectivities shrink each candidate's row estimate,
    /// and equalities between two block variables are merged into
    /// cross-scan join classes (union-find, so `x.A = y.B ∧ y.B = z.C`
    /// forms one class).
    fn scan_cands(
        &self,
        bindings: &[Binding],
        slots: &[usize],
        preds: &[Option<(Predicate, BTreeSet<String>)>],
    ) -> Vec<ScanCand> {
        // Innermost binding wins a name, matching `lookup` resolution.
        let mut var_of: HashMap<&str, usize> = HashMap::new();
        for (i, b) in bindings.iter().enumerate() {
            var_of.insert(b.var.as_str(), i);
        }
        let col_of = |bi: usize, attr: &str| self.slot_schemas[slots[bi]].attr_index(attr);
        let mut rows: Vec<f64> = bindings
            .iter()
            .map(|b| self.stats.size(&b.table) as f64)
            .collect();

        // Union-find over (binding, column) endpoints of local-local
        // equalities.
        let mut nodes: Vec<(usize, usize)> = Vec::new();
        let mut parent: Vec<usize> = Vec::new();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let node_id =
            |nodes: &mut Vec<(usize, usize)>, parent: &mut Vec<usize>, e: (usize, usize)| {
                match nodes.iter().position(|&n| n == e) {
                    Some(i) => i,
                    None => {
                        nodes.push(e);
                        parent.push(parent.len());
                        parent.len() - 1
                    }
                }
            };

        /// One side of a predicate, from the block's point of view.
        enum Side {
            /// An attribute of a block variable: `(binding, column)`.
            Local(usize, usize),
            /// Already bound when the block runs: a literal constant.
            Lit(rd_core::Value),
            /// Already bound: an outer variable's attribute (value
            /// unknown at compile time).
            Outer,
            /// References the head or a not-yet-scoped name — carries
            /// no selectivity information here.
            Opaque,
        }
        let classify = |t: &Term| -> Side {
            match t {
                Term::Const(v) => Side::Lit(v.clone()),
                Term::Attr(a) => match var_of.get(a.var.as_str()) {
                    Some(&bi) => match col_of(bi, &a.attr) {
                        Some(col) => Side::Local(bi, col),
                        None => Side::Opaque,
                    },
                    None if self.bound.contains(&a.var) => Side::Outer,
                    None => Side::Opaque,
                },
            }
        };

        for (p, _) in preds.iter().flatten() {
            let table = |bi: usize| bindings[bi].table.as_str();
            match (classify(&p.left), classify(&p.right)) {
                (Side::Local(bi, c), Side::Lit(v)) => {
                    rows[bi] *= self.stats.cmp_selectivity(table(bi), c, p.op, &v);
                }
                (Side::Lit(v), Side::Local(bi, c)) => {
                    // `lit < x.A` constrains the column as `x.A > lit`.
                    rows[bi] *= self.stats.cmp_selectivity(table(bi), c, p.op.flipped(), &v);
                }
                (Side::Local(bi, c), Side::Outer) | (Side::Outer, Side::Local(bi, c)) => {
                    // Equality with an outer binding filters like a
                    // constant of unknown value; other comparisons get
                    // the default fraction.
                    rows[bi] *= match p.op {
                        CmpOp::Eq => 1.0 / self.stats.distinct(table(bi), c),
                        CmpOp::Ne => 1.0,
                        _ => 1.0 / 3.0,
                    };
                }
                (Side::Local(bi, c1), Side::Local(bj, c2)) if bi == bj => {
                    if p.op == CmpOp::Eq && c1 != c2 {
                        // σ_{A=B}(R): |R| / max(V_A, V_B).
                        let v = self
                            .stats
                            .distinct(table(bi), c1)
                            .max(self.stats.distinct(table(bi), c2));
                        rows[bi] /= v.max(1.0);
                    } else if p.op != CmpOp::Eq && p.op != CmpOp::Ne {
                        rows[bi] *= 1.0 / 3.0;
                    }
                }
                (Side::Local(bi, c1), Side::Local(bj, c2)) if p.op == CmpOp::Eq => {
                    let a = node_id(&mut nodes, &mut parent, (bi, c1));
                    let b = node_id(&mut nodes, &mut parent, (bj, c2));
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    parent[ra] = rb;
                }
                _ => {}
            }
        }

        // Emit join columns for every class spanning more than one scan.
        let mut cands: Vec<ScanCand> = rows
            .iter()
            .map(|&r| ScanCand {
                rows: r,
                join_cols: Vec::new(),
            })
            .collect();
        let roots: Vec<usize> = (0..nodes.len()).map(|i| find(&mut parent, i)).collect();
        for (i, &(bi, col)) in nodes.iter().enumerate() {
            let root = roots[i];
            let spans_scans = roots
                .iter()
                .enumerate()
                .any(|(j, &rj)| rj == root && nodes[j].0 != bi);
            if spans_scans {
                let v = self.stats.distinct(&bindings[bi].table, col);
                cands[bi].join_cols.push((root, v));
            }
        }
        cands
    }

    /// Drains and compiles every pending conjunct whose variables are all
    /// bound at the current point.
    #[allow(clippy::type_complexity)]
    fn attach_ready(
        &mut self,
        preds: &mut [Option<(Predicate, BTreeSet<String>)>],
        subs: &mut [Option<(Formula, BTreeSet<String>)>],
    ) -> CoreResult<Vec<exec::Formula>> {
        let mut out = Vec::new();
        for entry in preds.iter_mut() {
            if entry
                .as_ref()
                .is_some_and(|(_, vars)| vars.iter().all(|v| self.bound.contains(v)))
            {
                let (p, _) = entry.take().expect("checked above");
                out.push(self.compile_pred(&p)?);
            }
        }
        for entry in subs.iter_mut() {
            if entry
                .as_ref()
                .is_some_and(|(_, free)| free.iter().all(|v| self.bound.contains(v)))
            {
                let (f, _) = entry.take().expect("checked above");
                out.push(self.compile_formula(&f)?);
            }
        }
        Ok(out)
    }

    /// If `p` can key a hash probe into the scan of `var` — an equality
    /// with exactly one side an attribute of `var` and the other side
    /// already bound (constant or bound variable) — returns the `var`
    /// side's attribute reference.
    fn key_side<'p>(&self, p: &'p Predicate, var: &str) -> Option<&'p crate::ast::AttrRef> {
        if p.op != CmpOp::Eq {
            return None;
        }
        let bound_term = |t: &Term| match t {
            Term::Const(_) => true,
            Term::Attr(a) => a.var != var && self.bound.contains(&a.var),
        };
        match (&p.left, &p.right) {
            (Term::Attr(a), other) if a.var == var && bound_term(other) => Some(a),
            (other, Term::Attr(a)) if a.var == var && bound_term(other) => Some(a),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Public lowering entry points
// ---------------------------------------------------------------------

/// Lowers a non-Boolean query to a compiled plan branch under the
/// default planner configuration.
pub fn lower_query(q: &TrcQuery, db: &Database) -> CoreResult<QueryPlan> {
    lower_query_with(q, db, &PlannerOpts::default(), &PlanHints::default())
}

/// Lowers a non-Boolean query with explicit planner configuration and
/// execution-feedback hints.
pub fn lower_query_with(
    q: &TrcQuery,
    db: &Database,
    opts: &PlannerOpts,
    hints: &PlanHints,
) -> CoreResult<QueryPlan> {
    let head = q.output.clone().ok_or_else(|| {
        CoreError::Invalid(
            "eval_query requires an output head; use eval_sentence for Boolean queries".into(),
        )
    })?;
    let canon = canonicalize(q);
    let out_schema = TableSchema::try_new(head.name.clone(), head.attrs.clone())?;

    // Split the canonical root into bindings and conjunct parts.
    let (bindings, parts) = match &canon.formula {
        Formula::Exists(b, body) => (b.clone(), conjuncts(body)),
        other => (Vec::new(), conjuncts(other)),
    };

    // Locate one defining equality per output attribute.
    let mut defs: Vec<Term> = Vec::with_capacity(head.attrs.len());
    for attr in &head.attrs {
        let term = parts
            .iter()
            .find_map(|f| match f {
                Formula::Pred(p) if p.op == CmpOp::Eq => {
                    let is_head = |t: &Term| {
                        matches!(t, Term::Attr(a) if a.var == head.name && &a.attr == attr)
                    };
                    if is_head(&p.left) && !is_head(&p.right) {
                        Some(p.right.clone())
                    } else if is_head(&p.right) && !is_head(&p.left) {
                        Some(p.left.clone())
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .ok_or_else(|| {
                CoreError::Invalid(format!(
                    "output attribute {}.{attr} lacks a defining equality (unsafe query)",
                    head.name
                ))
            })?;
        defs.push(term);
    }

    // Conjuncts mentioning the head cannot constrain the enumeration;
    // they are validated against each candidate tuple instead.
    let mut enumerated = Vec::new();
    let mut deferred_ast = Vec::new();
    for f in &parts {
        if f.free_vars().contains(&head.name) {
            deferred_ast.push(f.clone());
        } else {
            enumerated.push(f.clone());
        }
    }

    let mut c = Compiler::new(db, opts, hints);
    let head_slot = c.push_schema_var(&head.name, out_schema.clone());
    let mut slots_of = Vec::with_capacity(bindings.len());
    for b in &bindings {
        slots_of.push(c.push_binding(b)?);
    }
    let root = c.plan_block(&bindings, &slots_of, &enumerated)?;
    let cdefs: Vec<exec::Term> = defs
        .iter()
        .map(|t| c.compile_term(t))
        .collect::<CoreResult<_>>()?;
    c.bound.insert(head.name.clone());
    let deferred: Vec<exec::Formula> = deferred_ast
        .iter()
        .map(|f| c.compile_formula(f))
        .collect::<CoreResult<_>>()?;

    Ok(QueryPlan {
        out: out_schema,
        head_slot,
        root,
        defs: cdefs,
        deferred,
        shape: c.shape(),
        est_rows: c
            .block_est
            .map(|e| e.round().clamp(0.0, u64::MAX as f64) as u64),
    })
}

/// Lowers a Boolean sentence to a compiled plan under the default
/// planner configuration.
pub fn lower_sentence(q: &TrcQuery, db: &Database) -> CoreResult<SentencePlan> {
    lower_sentence_with(q, db, &PlannerOpts::default(), &PlanHints::default())
}

/// Lowers a Boolean sentence with explicit planner configuration.
pub fn lower_sentence_with(
    q: &TrcQuery,
    db: &Database,
    opts: &PlannerOpts,
    hints: &PlanHints,
) -> CoreResult<SentencePlan> {
    if q.output.is_some() {
        return Err(CoreError::Invalid(
            "eval_sentence requires a Boolean query; use eval_query".into(),
        ));
    }
    let canon = canonicalize(q);
    let mut c = Compiler::new(db, opts, hints);
    let formula = c.compile_formula(&canon.formula)?;
    Ok(SentencePlan {
        formula,
        shape: c.shape(),
    })
}

/// Lowers a union of queries to a complete [`Plan`]: a single branch
/// without an output head becomes a Boolean sentence plan, anything
/// else a union of query branches.
pub fn lower_union(u: &TrcUnion, db: &Database) -> CoreResult<Plan> {
    lower_union_with(u, db, &PlannerOpts::default(), &PlanHints::default())
}

/// [`lower_union`] with explicit planner configuration and
/// execution-feedback hints — the engine's re-planning entry point.
pub fn lower_union_with(
    u: &TrcUnion,
    db: &Database,
    opts: &PlannerOpts,
    hints: &PlanHints,
) -> CoreResult<Plan> {
    match u.branches.as_slice() {
        [] => Err(CoreError::Invalid("empty union".into())),
        [sentence] if sentence.output.is_none() => Ok(Plan::Sentence(lower_sentence_with(
            sentence, db, opts, hints,
        )?)),
        branches => Ok(Plan::Union(
            branches
                .iter()
                .map(|q| lower_query_with(q, db, opts, hints))
                .collect::<CoreResult<_>>()?,
        )),
    }
}

// ---------------------------------------------------------------------
// Evaluation wrappers (lower + shared executor)
// ---------------------------------------------------------------------

/// Evaluates a non-Boolean query, returning its output relation.
pub fn eval_query(q: &TrcQuery, db: &Database) -> CoreResult<Relation> {
    exec::run_query(&lower_query(q, db)?, db)
}

/// Evaluates a Boolean sentence.
pub fn eval_sentence(q: &TrcQuery, db: &Database) -> CoreResult<bool> {
    exec::run_sentence(&lower_sentence(q, db)?, db)
}

/// Evaluates a union of queries (§5): the set union of branch outputs.
pub fn eval_union(u: &TrcUnion, db: &Database) -> CoreResult<Relation> {
    let mut iter = u.branches.iter();
    let first = iter
        .next()
        .ok_or_else(|| CoreError::Invalid("empty union".into()))?;
    let mut result = eval_query(first, db)?;
    for branch in iter {
        let r = eval_query(branch, db)?;
        for t in r.iter() {
            result.insert(t.clone())?;
        }
    }
    Ok(result)
}

/// Flattens a formula into its top-level conjunct list.
fn conjuncts(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::And(fs) => fs.clone(),
        other => vec![other.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_union};
    use rd_core::{Catalog, TableSchema, Value};

    fn rs_db() -> (Catalog, Database) {
        let catalog = Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        (catalog, db)
    }

    #[test]
    fn simple_join() {
        let (cat, db) = rs_db();
        let q = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        let vals: Vec<i64> = out
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn negation_not_in() {
        let (cat, db) = rs_db();
        // Values of A whose B never appears in S.
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B = r.B ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get(0), &Value::int(3));
    }

    #[test]
    fn relational_division() {
        let (cat, db) = rs_db();
        // A values of R co-occurring with ALL S.B values: A=1 (10 and 20).
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get(0), &Value::int(1));
    }

    #[test]
    fn boolean_sentence() {
        let (cat, db) = rs_db();
        let t = parse_query("exists r in R [ r.A = 3 ]", &cat).unwrap();
        assert!(eval_sentence(&t, &db).unwrap());
        let f = parse_query("exists r in R [ r.A = 99 ]", &cat).unwrap();
        assert!(!eval_sentence(&f, &db).unwrap());
        // "every R.B appears in S" is false (30 is missing).
        let all = parse_query(
            "not (exists r in R [ not (exists s in S [ s.B = r.B ]) ])",
            &cat,
        )
        .unwrap();
        assert!(!eval_sentence(&all, &db).unwrap());
    }

    #[test]
    fn disjunction_and_selection() {
        let (cat, db) = rs_db();
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and (r.B = 30 or r.A = 2) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        let vals: Vec<&Value> = out.iter().map(|t| t.get(0)).collect();
        assert_eq!(vals, vec![&Value::int(2), &Value::int(3)]);
    }

    #[test]
    fn union_of_queries() {
        let cat =
            Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["A"])])
                .unwrap();
        let mut db = Database::new();
        db.add_relation(Relation::from_rows(TableSchema::new("R", ["A"]), [[1i64], [2]]).unwrap());
        db.add_relation(Relation::from_rows(TableSchema::new("S", ["A"]), [[2i64], [3]]).unwrap());
        let u = parse_union(
            "{ q(A) | exists r in R [ q.A = r.A ] } union { q(A) | exists s in S [ q.A = s.A ] }",
            &cat,
        )
        .unwrap();
        let out = eval_union(&u, &db).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn inequality_theta_join() {
        let (cat, db) = rs_db();
        // A values with no strictly smaller value in S (Example 12 / Q3):
        // over our data every r.A (1,2,3) has S values 10,20 >= it... so
        // no smaller S value exists for none? S = {10, 20}: 10 < any A? No.
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B < r.A ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 3); // 1, 2, 3 all qualify (10, 20 not smaller)
    }

    #[test]
    fn multiple_defining_equalities_act_as_join() {
        let (cat, db) = rs_db();
        // q.A = r.A and q.A = r.B forces r.A = r.B; no such tuple exists.
        let q = parse_query("{ q(A) | exists r in R [ q.A = r.A and q.A = r.B ] }", &cat).unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn eval_on_empty_database_is_empty() {
        let (cat, _) = rs_db();
        let db = Database::empty_for(&cat);
        let q = parse_query("{ q(A) | exists r in R [ q.A = r.A ] }", &cat).unwrap();
        assert!(eval_query(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn sentence_vs_query_entrypoint_errors() {
        let (cat, db) = rs_db();
        let sentence = parse_query("exists r in R [ r.A = 1 ]", &cat).unwrap();
        assert!(eval_query(&sentence, &db).is_err());
        let query = parse_query("{ q(A) | exists r in R [ q.A = r.A ] }", &cat).unwrap();
        assert!(eval_sentence(&query, &db).is_err());
    }

    #[test]
    fn string_constants_and_order_comparisons() {
        let cat = Catalog::from_schemas([TableSchema::new("B", ["color"])]).unwrap();
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("B", ["color"]),
                // Insert out of lexicographic order so sym ids disagree
                // with string order.
                [["zebra"], ["apple"], ["red"]],
            )
            .unwrap(),
        );
        let eq = parse_query(
            "{ q(color) | exists b in B [ q.color = b.color and b.color = 'red' ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&eq, &db).unwrap();
        assert_eq!(out.len(), 1);
        // Order comparisons resolve to *lexicographic* string order.
        let lt = parse_query(
            "{ q(color) | exists b in B [ q.color = b.color and b.color < 'red' ] }",
            &cat,
        )
        .unwrap();
        let out = db.resolve_relation(&eval_query(&lt, &db).unwrap());
        let colors: Vec<Value> = out.iter().map(|t| t.get(0).clone()).collect();
        assert_eq!(colors, vec![Value::str("apple")]);
    }

    #[test]
    fn join_order_does_not_change_results() {
        // Same query phrased with bindings in both orders; the planner
        // reorders internally, results must match.
        let (cat, db) = rs_db();
        let a = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }",
            &cat,
        )
        .unwrap();
        let b = parse_query(
            "{ q(A) | exists s in S, r in R [ q.A = r.A and r.B = s.B ] }",
            &cat,
        )
        .unwrap();
        assert_eq!(
            eval_query(&a, &db).unwrap().tuples(),
            eval_query(&b, &db).unwrap().tuples()
        );
    }

    #[test]
    fn lowered_plan_is_reusable_and_explainable() {
        let (cat, db) = rs_db();
        let q = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }",
            &cat,
        )
        .unwrap();
        let plan = lower_union(&crate::ast::TrcUnion::new(vec![q.clone()]).unwrap(), &db).unwrap();
        // Executing the same compiled plan twice agrees with direct eval.
        let a = exec::execute(&plan, &db).unwrap();
        let b = exec::execute(&plan, &db).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(a.tuples(), eval_query(&q, &db).unwrap().tuples());
        // The explain tree names the probe strategy.
        let node = exec::explain(&plan);
        fn any_probe(n: &rd_core::exec::ExplainNode) -> bool {
            n.detail.contains("hash probe") || n.children.iter().any(any_probe)
        }
        assert!(any_probe(&node), "{node:?}");
    }
}
