//! Join-aware evaluation of TRC queries over [`rd_core::Database`].
//!
//! Evaluation works on the canonical form (the evaluator canonicalizes
//! internally) and proceeds in two phases:
//!
//! 1. **Compile.** The formula is compiled once per query: every tuple
//!    variable gets a *slot* (so the runtime environment is a flat
//!    `Vec<Option<&Tuple>>`, not a string-keyed map), attribute names are
//!    resolved to column indices, and string constants are interned
//!    against the database — the evaluation loop never touches a heap
//!    string. Each existential block becomes an [`ExistsPlan`]: its
//!    conjuncts are classified, its bindings greedily reordered by
//!    estimated cost ([`rd_core::plan::scan_cost`] — prefer scans with
//!    bound equality keys, then smaller relations), equality predicates
//!    against already-bound terms become **hash-join keys**, and every
//!    other conjunct (filters, negated/quantified subformulas) is
//!    attached to the earliest scan after which its variables are bound.
//! 2. **Execute.** Scans with keys probe lazily-built hash indexes
//!    (shared per `(table, columns)` across the whole evaluation);
//!    unkeyed scans iterate. Output tuples are computed from the defining
//!    equalities `q.A = term`; conjuncts that mention the output head are
//!    deferred and validated with the head bound (which uniformly handles
//!    multiple defining equalities as join constraints).

use crate::ast::{Binding, Formula, Predicate, Term, TrcQuery, TrcUnion};
use crate::canon::canonicalize;
use rd_core::{
    plan, CmpOp, CoreError, CoreResult, Database, Relation, SymbolTable, TableSchema, Tuple, Value,
};
use std::collections::BTreeSet;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Compiled representation
// ---------------------------------------------------------------------

/// A compiled term: a constant (interned) or a column of a slot.
#[derive(Debug, Clone)]
enum CTerm {
    Const(Value),
    Attr { slot: usize, col: usize },
}

/// A compiled comparison.
#[derive(Debug, Clone)]
struct CPred {
    left: CTerm,
    op: CmpOp,
    right: CTerm,
}

/// A compiled formula.
#[derive(Debug)]
enum CFormula {
    And(Vec<CFormula>),
    Or(Vec<CFormula>),
    Not(Box<CFormula>),
    Exists(ExistsPlan),
    Pred(CPred),
}

/// One scan of a planned existential block.
#[derive(Debug)]
struct ScanStep {
    /// The slot this scan binds.
    slot: usize,
    /// Table scanned.
    table: String,
    /// Columns of `table` constrained by equality to bound terms; empty
    /// for a full scan.
    key_cols: Vec<usize>,
    /// The bound terms the key columns must equal (parallel to
    /// `key_cols`).
    key_terms: Vec<CTerm>,
    /// Index-cache id (one per keyed scan; `usize::MAX` for full scans).
    index_id: usize,
    /// Conjuncts whose variables are all bound once this scan binds its
    /// slot — plain predicates and negated/quantified subformulas alike.
    filters: Vec<CFormula>,
}

/// A planned existential block: conjuncts evaluable before any scan, then
/// the ordered scans.
#[derive(Debug)]
struct ExistsPlan {
    pre: Vec<CFormula>,
    steps: Vec<ScanStep>,
}

// ---------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------

struct Compiler<'d> {
    db: &'d Database,
    /// Relation-size statistics driving the greedy scan ordering.
    stats: plan::DbStats,
    /// Lexical scope: (variable, slot), innermost last.
    scope: Vec<(String, usize)>,
    /// Slot → schema of the table (or output head) it ranges over.
    slot_schemas: Vec<TableSchema>,
    /// Variables bound at the current compilation point (enumeration
    /// order, not lexical scope — the output head is in scope but only
    /// bound during deferred validation).
    bound: BTreeSet<String>,
    /// Number of hash-index cache slots handed out.
    n_indexes: usize,
}

impl<'d> Compiler<'d> {
    fn new(db: &'d Database) -> Self {
        Compiler {
            db,
            stats: plan::DbStats::of(db),
            scope: Vec::new(),
            slot_schemas: Vec::new(),
            bound: BTreeSet::new(),
            n_indexes: 0,
        }
    }

    fn push_schema_var(&mut self, var: &str, schema: TableSchema) -> usize {
        let slot = self.slot_schemas.len();
        self.slot_schemas.push(schema);
        self.scope.push((var.to_string(), slot));
        slot
    }

    fn push_binding(&mut self, b: &Binding) -> CoreResult<usize> {
        let schema = self.db.require(&b.table)?.schema().clone();
        Ok(self.push_schema_var(&b.var, schema))
    }

    fn lookup(&self, var: &str) -> Option<usize> {
        self.scope
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|&(_, s)| s)
    }

    fn compile_term(&self, t: &Term) -> CoreResult<CTerm> {
        match t {
            Term::Const(v) => Ok(CTerm::Const(self.db.lookup_value(v))),
            Term::Attr(a) => {
                let slot = self
                    .lookup(&a.var)
                    .ok_or_else(|| CoreError::Invalid(format!("unbound variable '{}'", a.var)))?;
                let schema = &self.slot_schemas[slot];
                let col =
                    schema
                        .attr_index(&a.attr)
                        .ok_or_else(|| CoreError::UnknownAttribute {
                            table: schema.name().to_string(),
                            attribute: a.attr.clone(),
                        })?;
                Ok(CTerm::Attr { slot, col })
            }
        }
    }

    fn compile_pred(&self, p: &Predicate) -> CoreResult<CFormula> {
        Ok(CFormula::Pred(CPred {
            left: self.compile_term(&p.left)?,
            op: p.op,
            right: self.compile_term(&p.right)?,
        }))
    }

    fn compile_formula(&mut self, f: &Formula) -> CoreResult<CFormula> {
        match f {
            Formula::And(fs) => Ok(CFormula::And(
                fs.iter()
                    .map(|s| self.compile_formula(s))
                    .collect::<CoreResult<_>>()?,
            )),
            Formula::Or(fs) => Ok(CFormula::Or(
                fs.iter()
                    .map(|s| self.compile_formula(s))
                    .collect::<CoreResult<_>>()?,
            )),
            Formula::Not(sub) => Ok(CFormula::Not(Box::new(self.compile_formula(sub)?))),
            Formula::Exists(bindings, body) => {
                Ok(CFormula::Exists(self.compile_exists(bindings, body)?))
            }
            Formula::Pred(p) => self.compile_pred(p),
        }
    }

    fn compile_exists(&mut self, bindings: &[Binding], body: &Formula) -> CoreResult<ExistsPlan> {
        let scope_mark = self.scope.len();
        let bound_snapshot = self.bound.clone();
        let mut slots = Vec::with_capacity(bindings.len());
        for b in bindings {
            slots.push(self.push_binding(b)?);
        }
        let plan = self.plan_block(bindings, &slots, &conjuncts(body));
        self.scope.truncate(scope_mark);
        self.bound = bound_snapshot;
        plan
    }

    /// Plans one existential block whose binding slots are already in
    /// scope: greedy scan ordering, key extraction, conjunct attachment.
    fn plan_block(
        &mut self,
        bindings: &[Binding],
        slots: &[usize],
        conjs: &[Formula],
    ) -> CoreResult<ExistsPlan> {
        // Classify conjuncts. Predicates are join/selection candidates;
        // everything else (negation, nested quantifiers, disjunction)
        // waits until its free variables are bound.
        let mut preds: Vec<Option<(Predicate, BTreeSet<String>)>> = Vec::new();
        let mut subs: Vec<Option<(Formula, BTreeSet<String>)>> = Vec::new();
        for f in conjs {
            match f {
                Formula::Pred(p) => {
                    let vars: BTreeSet<String> = p.vars().cloned().collect();
                    preds.push(Some((p.clone(), vars)));
                }
                other => {
                    let free = other.free_vars();
                    subs.push(Some((other.clone(), free)));
                }
            }
        }
        let pre = self.attach_ready(&mut preds, &mut subs)?;
        let mut steps = Vec::new();
        let mut remaining: Vec<usize> = (0..bindings.len()).collect();
        while !remaining.is_empty() {
            // Greedy choice: cheapest next scan under the cost model.
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (k, &bi) in remaining.iter().enumerate() {
                let b = &bindings[bi];
                let keys = preds
                    .iter()
                    .flatten()
                    .filter(|(p, _)| self.key_side(p, &b.var).is_some())
                    .count();
                let cost = plan::scan_cost(self.stats.size(&b.table), keys);
                if cost < best_cost {
                    best_cost = cost;
                    best = k;
                }
            }
            let bi = remaining.remove(best);
            let b = &bindings[bi];
            let schema = self.slot_schemas[slots[bi]].clone();
            // Extract the equality predicates usable as hash-join keys.
            let mut key_cols = Vec::new();
            let mut key_terms = Vec::new();
            for entry in preds.iter_mut() {
                let usable = entry
                    .as_ref()
                    .and_then(|(p, _)| self.key_side(p, &b.var).cloned());
                if let Some(scan_attr) = usable {
                    let (p, _) = entry.take().expect("checked above");
                    let col = schema.attr_index(&scan_attr.attr).ok_or_else(|| {
                        CoreError::UnknownAttribute {
                            table: schema.name().to_string(),
                            attribute: scan_attr.attr.clone(),
                        }
                    })?;
                    let other = if matches!(&p.left, Term::Attr(a) if a.var == b.var && a.attr == scan_attr.attr)
                    {
                        &p.right
                    } else {
                        &p.left
                    };
                    key_cols.push(col);
                    key_terms.push(self.compile_term(other)?);
                }
            }
            self.bound.insert(b.var.clone());
            let filters = self.attach_ready(&mut preds, &mut subs)?;
            let index_id = if key_cols.is_empty() {
                usize::MAX
            } else {
                self.n_indexes += 1;
                self.n_indexes - 1
            };
            steps.push(ScanStep {
                slot: slots[bi],
                table: b.table.clone(),
                key_cols,
                key_terms,
                index_id,
                filters,
            });
        }
        // Anything left references variables outside every scope level;
        // compiling it surfaces the proper "unbound variable" error.
        let mut leftovers = Vec::new();
        for entry in preds.iter_mut() {
            if let Some((p, _)) = entry.take() {
                leftovers.push(self.compile_pred(&p)?);
            }
        }
        for entry in subs.iter_mut() {
            if let Some((f, _)) = entry.take() {
                leftovers.push(self.compile_formula(&f)?);
            }
        }
        let mut plan = ExistsPlan { pre, steps };
        if !leftovers.is_empty() {
            match plan.steps.last_mut() {
                Some(last) => last.filters.extend(leftovers),
                None => plan.pre.extend(leftovers),
            }
        }
        Ok(plan)
    }

    /// Drains and compiles every pending conjunct whose variables are all
    /// bound at the current point.
    #[allow(clippy::type_complexity)]
    fn attach_ready(
        &mut self,
        preds: &mut [Option<(Predicate, BTreeSet<String>)>],
        subs: &mut [Option<(Formula, BTreeSet<String>)>],
    ) -> CoreResult<Vec<CFormula>> {
        let mut out = Vec::new();
        for entry in preds.iter_mut() {
            if entry
                .as_ref()
                .is_some_and(|(_, vars)| vars.iter().all(|v| self.bound.contains(v)))
            {
                let (p, _) = entry.take().expect("checked above");
                out.push(self.compile_pred(&p)?);
            }
        }
        for entry in subs.iter_mut() {
            if entry
                .as_ref()
                .is_some_and(|(_, free)| free.iter().all(|v| self.bound.contains(v)))
            {
                let (f, _) = entry.take().expect("checked above");
                out.push(self.compile_formula(&f)?);
            }
        }
        Ok(out)
    }

    /// If `p` can key a hash probe into the scan of `var` — an equality
    /// with exactly one side an attribute of `var` and the other side
    /// already bound (constant or bound variable) — returns the `var`
    /// side's attribute reference.
    fn key_side<'p>(&self, p: &'p Predicate, var: &str) -> Option<&'p crate::ast::AttrRef> {
        if p.op != CmpOp::Eq {
            return None;
        }
        let bound_term = |t: &Term| match t {
            Term::Const(_) => true,
            Term::Attr(a) => a.var != var && self.bound.contains(&a.var),
        };
        match (&p.left, &p.right) {
            (Term::Attr(a), other) if a.var == var && bound_term(other) => Some(a),
            (other, Term::Attr(a)) if a.var == var && bound_term(other) => Some(a),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Shared evaluation state: the database snapshot plus the lazily-built
/// hash indexes (one cache slot per keyed scan, built on first probe,
/// reused across the whole evaluation).
struct EvalCtx<'d> {
    db: &'d Database,
    symbols: &'d SymbolTable,
    indexes: plan::IndexCache<'d>,
    key_buf: plan::KeyBuf,
}

impl<'d> EvalCtx<'d> {
    fn new(db: &'d Database, n_indexes: usize) -> Self {
        EvalCtx {
            db,
            symbols: db.symbols(),
            indexes: plan::IndexCache::new(n_indexes),
            key_buf: plan::KeyBuf::default(),
        }
    }

    fn index_for(&mut self, step: &ScanStep) -> CoreResult<Rc<plan::Index<'d>>> {
        let db = self.db;
        self.indexes
            .get_or_build(step.index_id, &step.key_cols, || {
                Ok(db.require(&step.table)?.iter())
            })
    }
}

/// The flat runtime environment: slot → bound tuple.
type Slots<'b> = Vec<Option<&'b Tuple>>;

fn term_value<'v>(t: &'v CTerm, slots: &'v Slots<'_>) -> &'v Value {
    match t {
        CTerm::Const(v) => v,
        CTerm::Attr { slot, col } => slots[*slot]
            .expect("compiler attaches terms only after their slot is bound")
            .get(*col),
    }
}

fn eval_cformula<'b, 'd: 'b>(
    f: &CFormula,
    slots: &mut Slots<'b>,
    ctx: &mut EvalCtx<'d>,
) -> CoreResult<bool> {
    match f {
        CFormula::And(fs) => {
            for sub in fs {
                if !eval_cformula(sub, slots, ctx)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        CFormula::Or(fs) => {
            for sub in fs {
                if eval_cformula(sub, slots, ctx)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        CFormula::Not(sub) => Ok(!eval_cformula(sub, slots, ctx)?),
        CFormula::Exists(plan) => {
            for pre in &plan.pre {
                if !eval_cformula(pre, slots, ctx)? {
                    return Ok(false);
                }
            }
            run_steps(plan, 0, slots, ctx, &mut |_, _| Ok(true))
        }
        CFormula::Pred(p) => {
            let l = term_value(&p.left, slots);
            let r = term_value(&p.right, slots);
            Ok(p.op.eval_resolved(l, r, ctx.symbols))
        }
    }
}

/// Runs the scans of `plan` from step `i`, invoking `emit` on every full
/// assignment. `emit` returning `Ok(true)` stops the enumeration (used
/// for existential short-circuits); the stop propagates outward.
fn run_steps<'b, 'd: 'b>(
    plan: &ExistsPlan,
    i: usize,
    slots: &mut Slots<'b>,
    ctx: &mut EvalCtx<'d>,
    emit: &mut dyn FnMut(&mut Slots<'b>, &mut EvalCtx<'d>) -> CoreResult<bool>,
) -> CoreResult<bool> {
    if i == plan.steps.len() {
        return emit(slots, ctx);
    }
    let step = &plan.steps[i];
    let stopped = if step.key_cols.is_empty() {
        let rel = ctx.db.require(&step.table)?;
        let mut stopped = false;
        for t in rel.iter() {
            slots[step.slot] = Some(t);
            if scan_body(plan, i, slots, ctx, emit)? {
                stopped = true;
                break;
            }
        }
        stopped
    } else {
        // Hash probe: resolve the key from bound slots/constants into the
        // reusable buffer and look up the matching bucket.
        let index = ctx.index_for(step)?;
        let bucket = index.get(
            ctx.key_buf
                .fill(step.key_terms.iter().map(|t| term_value(t, slots).clone())),
        );
        let mut stopped = false;
        if let Some(bucket) = bucket {
            for &t in bucket {
                slots[step.slot] = Some(t);
                if scan_body(plan, i, slots, ctx, emit)? {
                    stopped = true;
                    break;
                }
            }
        }
        stopped
    };
    slots[step.slot] = None;
    Ok(stopped)
}

/// Filters of step `i`, then recursion into step `i + 1`.
fn scan_body<'b, 'd: 'b>(
    plan: &ExistsPlan,
    i: usize,
    slots: &mut Slots<'b>,
    ctx: &mut EvalCtx<'d>,
    emit: &mut dyn FnMut(&mut Slots<'b>, &mut EvalCtx<'d>) -> CoreResult<bool>,
) -> CoreResult<bool> {
    for f in &plan.steps[i].filters {
        if !eval_cformula(f, slots, ctx)? {
            return Ok(false);
        }
    }
    run_steps(plan, i + 1, slots, ctx, emit)
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// Evaluates a non-Boolean query, returning its output relation.
pub fn eval_query(q: &TrcQuery, db: &Database) -> CoreResult<Relation> {
    let head = q.output.clone().ok_or_else(|| {
        CoreError::Invalid(
            "eval_query requires an output head; use eval_sentence for Boolean queries".into(),
        )
    })?;
    let canon = canonicalize(q);
    let out_schema = TableSchema::try_new(head.name.clone(), head.attrs.clone())?;
    let mut out = db.fresh_relation(out_schema.clone());

    // Split the canonical root into bindings and conjunct parts.
    let (bindings, parts) = match &canon.formula {
        Formula::Exists(b, body) => (b.clone(), conjuncts(body)),
        other => (Vec::new(), conjuncts(other)),
    };

    // Locate one defining equality per output attribute.
    let mut defs: Vec<Term> = Vec::with_capacity(head.attrs.len());
    for attr in &head.attrs {
        let term = parts
            .iter()
            .find_map(|f| match f {
                Formula::Pred(p) if p.op == CmpOp::Eq => {
                    let is_head = |t: &Term| {
                        matches!(t, Term::Attr(a) if a.var == head.name && &a.attr == attr)
                    };
                    if is_head(&p.left) && !is_head(&p.right) {
                        Some(p.right.clone())
                    } else if is_head(&p.right) && !is_head(&p.left) {
                        Some(p.left.clone())
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .ok_or_else(|| {
                CoreError::Invalid(format!(
                    "output attribute {}.{attr} lacks a defining equality (unsafe query)",
                    head.name
                ))
            })?;
        defs.push(term);
    }

    // Conjuncts mentioning the head cannot constrain the enumeration;
    // they are validated against each candidate tuple instead.
    let mut enumerated = Vec::new();
    let mut deferred_ast = Vec::new();
    for f in &parts {
        if f.free_vars().contains(&head.name) {
            deferred_ast.push(f.clone());
        } else {
            enumerated.push(f.clone());
        }
    }

    let mut c = Compiler::new(db);
    let head_slot = c.push_schema_var(&head.name, out_schema.clone());
    let mut slots_of = Vec::with_capacity(bindings.len());
    for b in &bindings {
        slots_of.push(c.push_binding(b)?);
    }
    let root_plan = c.plan_block(&bindings, &slots_of, &enumerated)?;
    let cdefs: Vec<CTerm> = defs
        .iter()
        .map(|t| c.compile_term(t))
        .collect::<CoreResult<_>>()?;
    c.bound.insert(head.name.clone());
    let deferred: Vec<CFormula> = deferred_ast
        .iter()
        .map(|f| c.compile_formula(f))
        .collect::<CoreResult<_>>()?;

    let n_slots = c.slot_schemas.len();
    let mut ctx = EvalCtx::new(db, c.n_indexes);
    for pre in &root_plan.pre {
        let mut slots: Slots = vec![None; n_slots];
        if !eval_cformula(pre, &mut slots, &mut ctx)? {
            return Ok(out);
        }
    }
    let mut slots: Slots = vec![None; n_slots];
    run_steps(&root_plan, 0, &mut slots, &mut ctx, &mut |slots, ctx| {
        let mut row = Vec::with_capacity(cdefs.len());
        for t in cdefs.iter() {
            row.push(term_value(t, slots).clone());
        }
        let tuple = Tuple(row);
        // Validate the deferred conjuncts with the head bound. The
        // narrower lifetime of `tuple` forces a (cheap, word-copy) clone
        // of the slot vector.
        let mut vslots: Slots = slots.clone();
        vslots[head_slot] = Some(&tuple);
        let mut ok = true;
        for f in &deferred {
            if !eval_cformula(f, &mut vslots, ctx)? {
                ok = false;
                break;
            }
        }
        if ok {
            out.insert(tuple)?;
        }
        Ok(false)
    })?;
    Ok(out)
}

/// Evaluates a Boolean sentence.
pub fn eval_sentence(q: &TrcQuery, db: &Database) -> CoreResult<bool> {
    if q.output.is_some() {
        return Err(CoreError::Invalid(
            "eval_sentence requires a Boolean query; use eval_query".into(),
        ));
    }
    let canon = canonicalize(q);
    let mut c = Compiler::new(db);
    let cf = c.compile_formula(&canon.formula)?;
    let mut ctx = EvalCtx::new(db, c.n_indexes);
    let mut slots: Slots = vec![None; c.slot_schemas.len()];
    eval_cformula(&cf, &mut slots, &mut ctx)
}

/// Evaluates a union of queries (§5): the set union of branch outputs.
pub fn eval_union(u: &TrcUnion, db: &Database) -> CoreResult<Relation> {
    let mut iter = u.branches.iter();
    let first = iter
        .next()
        .ok_or_else(|| CoreError::Invalid("empty union".into()))?;
    let mut result = eval_query(first, db)?;
    for branch in iter {
        let r = eval_query(branch, db)?;
        for t in r.iter() {
            result.insert(t.clone())?;
        }
    }
    Ok(result)
}

/// Flattens a formula into its top-level conjunct list.
fn conjuncts(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::And(fs) => fs.clone(),
        other => vec![other.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_union};
    use rd_core::{Catalog, TableSchema};

    fn rs_db() -> (Catalog, Database) {
        let catalog = Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        (catalog, db)
    }

    #[test]
    fn simple_join() {
        let (cat, db) = rs_db();
        let q = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        let vals: Vec<i64> = out
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn negation_not_in() {
        let (cat, db) = rs_db();
        // Values of A whose B never appears in S.
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B = r.B ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get(0), &Value::int(3));
    }

    #[test]
    fn relational_division() {
        let (cat, db) = rs_db();
        // A values of R co-occurring with ALL S.B values: A=1 (10 and 20).
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get(0), &Value::int(1));
    }

    #[test]
    fn boolean_sentence() {
        let (cat, db) = rs_db();
        let t = parse_query("exists r in R [ r.A = 3 ]", &cat).unwrap();
        assert!(eval_sentence(&t, &db).unwrap());
        let f = parse_query("exists r in R [ r.A = 99 ]", &cat).unwrap();
        assert!(!eval_sentence(&f, &db).unwrap());
        // "every R.B appears in S" is false (30 is missing).
        let all = parse_query(
            "not (exists r in R [ not (exists s in S [ s.B = r.B ]) ])",
            &cat,
        )
        .unwrap();
        assert!(!eval_sentence(&all, &db).unwrap());
    }

    #[test]
    fn disjunction_and_selection() {
        let (cat, db) = rs_db();
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and (r.B = 30 or r.A = 2) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        let vals: Vec<&Value> = out.iter().map(|t| t.get(0)).collect();
        assert_eq!(vals, vec![&Value::int(2), &Value::int(3)]);
    }

    #[test]
    fn union_of_queries() {
        let cat =
            Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["A"])])
                .unwrap();
        let mut db = Database::new();
        db.add_relation(Relation::from_rows(TableSchema::new("R", ["A"]), [[1i64], [2]]).unwrap());
        db.add_relation(Relation::from_rows(TableSchema::new("S", ["A"]), [[2i64], [3]]).unwrap());
        let u = parse_union(
            "{ q(A) | exists r in R [ q.A = r.A ] } union { q(A) | exists s in S [ q.A = s.A ] }",
            &cat,
        )
        .unwrap();
        let out = eval_union(&u, &db).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn inequality_theta_join() {
        let (cat, db) = rs_db();
        // A values with no strictly smaller value in S (Example 12 / Q3):
        // over our data every r.A (1,2,3) has S values 10,20 >= it... so
        // no smaller S value exists for none? S = {10, 20}: 10 < any A? No.
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B < r.A ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 3); // 1, 2, 3 all qualify (10, 20 not smaller)
    }

    #[test]
    fn multiple_defining_equalities_act_as_join() {
        let (cat, db) = rs_db();
        // q.A = r.A and q.A = r.B forces r.A = r.B; no such tuple exists.
        let q = parse_query("{ q(A) | exists r in R [ q.A = r.A and q.A = r.B ] }", &cat).unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn eval_on_empty_database_is_empty() {
        let (cat, _) = rs_db();
        let db = Database::empty_for(&cat);
        let q = parse_query("{ q(A) | exists r in R [ q.A = r.A ] }", &cat).unwrap();
        assert!(eval_query(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn sentence_vs_query_entrypoint_errors() {
        let (cat, db) = rs_db();
        let sentence = parse_query("exists r in R [ r.A = 1 ]", &cat).unwrap();
        assert!(eval_query(&sentence, &db).is_err());
        let query = parse_query("{ q(A) | exists r in R [ q.A = r.A ] }", &cat).unwrap();
        assert!(eval_sentence(&query, &db).is_err());
    }

    #[test]
    fn string_constants_and_order_comparisons() {
        let cat = Catalog::from_schemas([TableSchema::new("B", ["color"])]).unwrap();
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("B", ["color"]),
                // Insert out of lexicographic order so sym ids disagree
                // with string order.
                [["zebra"], ["apple"], ["red"]],
            )
            .unwrap(),
        );
        let eq = parse_query(
            "{ q(color) | exists b in B [ q.color = b.color and b.color = 'red' ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&eq, &db).unwrap();
        assert_eq!(out.len(), 1);
        // Order comparisons resolve to *lexicographic* string order.
        let lt = parse_query(
            "{ q(color) | exists b in B [ q.color = b.color and b.color < 'red' ] }",
            &cat,
        )
        .unwrap();
        let out = db.resolve_relation(&eval_query(&lt, &db).unwrap());
        let colors: Vec<Value> = out.iter().map(|t| t.get(0).clone()).collect();
        assert_eq!(colors, vec![Value::str("apple")]);
    }

    #[test]
    fn join_order_does_not_change_results() {
        // Same query phrased with bindings in both orders; the planner
        // reorders internally, results must match.
        let (cat, db) = rs_db();
        let a = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }",
            &cat,
        )
        .unwrap();
        let b = parse_query(
            "{ q(A) | exists s in S, r in R [ q.A = r.A and r.B = s.B ] }",
            &cat,
        )
        .unwrap();
        assert_eq!(
            eval_query(&a, &db).unwrap().tuples(),
            eval_query(&b, &db).unwrap().tuples()
        );
    }
}
