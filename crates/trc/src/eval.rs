//! Nested-loop evaluation of TRC queries over [`rd_core::Database`].
//!
//! Evaluation works on the canonical form (the evaluator canonicalizes
//! internally): the root is an existential block whose assignments are
//! enumerated by nested loops; output tuples are computed from the
//! defining equalities `q.A = term` and validated by re-evaluating the
//! whole body with the output head bound (which uniformly handles multiple
//! defining equalities as join constraints).

use crate::ast::{Formula, Term, TrcQuery, TrcUnion};
use crate::canon::canonicalize;
use rd_core::{CmpOp, CoreError, CoreResult, Database, Relation, TableSchema, Tuple, Value};
use std::collections::HashMap;

/// A variable assignment during evaluation: variable → (schema, tuple).
type Env<'a> = HashMap<String, (&'a TableSchema, &'a Tuple)>;

/// Evaluates a non-Boolean query, returning its output relation.
pub fn eval_query(q: &TrcQuery, db: &Database) -> CoreResult<Relation> {
    let head = q.output.clone().ok_or_else(|| {
        CoreError::Invalid(
            "eval_query requires an output head; use eval_sentence for Boolean queries".into(),
        )
    })?;
    let canon = canonicalize(q);
    let out_schema = TableSchema::try_new(head.name.clone(), head.attrs.clone())?;
    let mut out = Relation::empty(out_schema.clone());

    // Split the canonical root into bindings and conjunct parts.
    let (bindings, parts) = match &canon.formula {
        Formula::Exists(b, body) => (b.clone(), conjuncts(body)),
        other => (Vec::new(), conjuncts(other)),
    };

    // Locate one defining equality per output attribute.
    let mut defs: Vec<Term> = Vec::with_capacity(head.attrs.len());
    for attr in &head.attrs {
        let term = parts
            .iter()
            .find_map(|f| match f {
                Formula::Pred(p) if p.op == CmpOp::Eq => {
                    let is_head = |t: &Term| {
                        matches!(t, Term::Attr(a) if a.var == head.name && &a.attr == attr)
                    };
                    if is_head(&p.left) && !is_head(&p.right) {
                        Some(p.right.clone())
                    } else if is_head(&p.right) && !is_head(&p.left) {
                        Some(p.left.clone())
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .ok_or_else(|| {
                CoreError::Invalid(format!(
                    "output attribute {}.{attr} lacks a defining equality (unsafe query)",
                    head.name
                ))
            })?;
        defs.push(term);
    }

    // Enumerate root assignments.
    let body = Formula::and(parts);
    let mut env: Env = HashMap::new();
    enumerate(db, &bindings, 0, &mut env, &mut |env| {
        // Compute the candidate output tuple.
        let mut row = Vec::with_capacity(defs.len());
        for term in &defs {
            row.push(resolve(term, env)?);
        }
        let tuple = Tuple(row);
        // Bind the output head and validate the whole body.
        let mut env2 = env.clone();
        env2.insert(head.name.clone(), (&out_schema, &tuple));
        if eval_formula(&body, &env2, db)? {
            out.insert(tuple)?;
        }
        Ok(())
    })?;
    Ok(out)
}

/// Evaluates a Boolean sentence.
pub fn eval_sentence(q: &TrcQuery, db: &Database) -> CoreResult<bool> {
    if q.output.is_some() {
        return Err(CoreError::Invalid(
            "eval_sentence requires a Boolean query; use eval_query".into(),
        ));
    }
    let canon = canonicalize(q);
    let env: Env = HashMap::new();
    eval_formula(&canon.formula, &env, db)
}

/// Evaluates a union of queries (§5): the set union of branch outputs.
pub fn eval_union(u: &TrcUnion, db: &Database) -> CoreResult<Relation> {
    let mut iter = u.branches.iter();
    let first = iter
        .next()
        .ok_or_else(|| CoreError::Invalid("empty union".into()))?;
    let mut result = eval_query(first, db)?;
    for branch in iter {
        let r = eval_query(branch, db)?;
        for t in r.iter() {
            result.insert(t.clone())?;
        }
    }
    Ok(result)
}

/// Flattens a formula into its top-level conjunct list.
fn conjuncts(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::And(fs) => fs.clone(),
        other => vec![other.clone()],
    }
}

/// Enumerates all assignments of `bindings[i..]` over `db`, invoking `k`
/// for each complete assignment.
fn enumerate<'a>(
    db: &'a Database,
    bindings: &[crate::ast::Binding],
    i: usize,
    env: &mut Env<'a>,
    k: &mut dyn FnMut(&Env<'a>) -> CoreResult<()>,
) -> CoreResult<()> {
    if i == bindings.len() {
        return k(env);
    }
    let b = &bindings[i];
    let rel = db.require(&b.table)?;
    let schema = rel.schema();
    for t in rel.iter() {
        env.insert(b.var.clone(), (schema, t));
        enumerate(db, bindings, i + 1, env, k)?;
    }
    env.remove(&b.var);
    Ok(())
}

/// Resolves a term under the environment.
fn resolve(term: &Term, env: &Env) -> CoreResult<Value> {
    match term {
        Term::Const(v) => Ok(v.clone()),
        Term::Attr(a) => {
            let (schema, tuple) = env
                .get(&a.var)
                .ok_or_else(|| CoreError::Invalid(format!("unbound variable '{}'", a.var)))?;
            let idx = schema
                .attr_index(&a.attr)
                .ok_or_else(|| CoreError::UnknownAttribute {
                    table: schema.name().to_string(),
                    attribute: a.attr.clone(),
                })?;
            Ok(tuple.get(idx).clone())
        }
    }
}

/// Evaluates a formula to a truth value under `env`.
fn eval_formula(f: &Formula, env: &Env, db: &Database) -> CoreResult<bool> {
    match f {
        Formula::And(fs) => {
            for sub in fs {
                if !eval_formula(sub, env, db)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for sub in fs {
                if eval_formula(sub, env, db)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Not(sub) => Ok(!eval_formula(sub, env, db)?),
        Formula::Exists(bindings, body) => {
            let mut found = false;
            let mut env2 = env.clone();
            enumerate(db, bindings, 0, &mut env2, &mut |e| {
                if !found && eval_formula(body, e, db)? {
                    found = true;
                }
                Ok(())
            })?;
            Ok(found)
        }
        Formula::Pred(p) => {
            let l = resolve(&p.left, env)?;
            let r = resolve(&p.right, env)?;
            Ok(p.op.eval(&l, &r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_union};
    use rd_core::{Catalog, TableSchema};

    fn rs_db() -> (Catalog, Database) {
        let catalog = Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
        ])
        .unwrap();
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        (catalog, db)
    }

    #[test]
    fn simple_join() {
        let (cat, db) = rs_db();
        let q = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        let vals: Vec<i64> = out
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn negation_not_in() {
        let (cat, db) = rs_db();
        // Values of A whose B never appears in S.
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B = r.B ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get(0), &Value::int(3));
    }

    #[test]
    fn relational_division() {
        let (cat, db) = rs_db();
        // A values of R co-occurring with ALL S.B values: A=1 (10 and 20).
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().get(0), &Value::int(1));
    }

    #[test]
    fn boolean_sentence() {
        let (cat, db) = rs_db();
        let t = parse_query("exists r in R [ r.A = 3 ]", &cat).unwrap();
        assert!(eval_sentence(&t, &db).unwrap());
        let f = parse_query("exists r in R [ r.A = 99 ]", &cat).unwrap();
        assert!(!eval_sentence(&f, &db).unwrap());
        // "every R.B appears in S" is false (30 is missing).
        let all = parse_query(
            "not (exists r in R [ not (exists s in S [ s.B = r.B ]) ])",
            &cat,
        )
        .unwrap();
        assert!(!eval_sentence(&all, &db).unwrap());
    }

    #[test]
    fn disjunction_and_selection() {
        let (cat, db) = rs_db();
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and (r.B = 30 or r.A = 2) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        let vals: Vec<&Value> = out.iter().map(|t| t.get(0)).collect();
        assert_eq!(vals, vec![&Value::int(2), &Value::int(3)]);
    }

    #[test]
    fn union_of_queries() {
        let cat =
            Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["A"])])
                .unwrap();
        let mut db = Database::new();
        db.add_relation(Relation::from_rows(TableSchema::new("R", ["A"]), [[1i64], [2]]).unwrap());
        db.add_relation(Relation::from_rows(TableSchema::new("S", ["A"]), [[2i64], [3]]).unwrap());
        let u = parse_union(
            "{ q(A) | exists r in R [ q.A = r.A ] } union { q(A) | exists s in S [ q.A = s.A ] }",
            &cat,
        )
        .unwrap();
        let out = eval_union(&u, &db).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn inequality_theta_join() {
        let (cat, db) = rs_db();
        // A values with no strictly smaller value in S (Example 12 / Q3):
        // over our data every r.A (1,2,3) has S values 10,20 >= it... so
        // no smaller S value exists for none? S = {10, 20}: 10 < any A? No.
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B < r.A ]) ] }",
            &cat,
        )
        .unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert_eq!(out.len(), 3); // 1, 2, 3 all qualify (10, 20 not smaller)
    }

    #[test]
    fn multiple_defining_equalities_act_as_join() {
        let (cat, db) = rs_db();
        // q.A = r.A and q.A = r.B forces r.A = r.B; no such tuple exists.
        let q = parse_query("{ q(A) | exists r in R [ q.A = r.A and q.A = r.B ] }", &cat).unwrap();
        let out = eval_query(&q, &db).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn eval_on_empty_database_is_empty() {
        let (cat, _) = rs_db();
        let db = Database::empty_for(&cat);
        let q = parse_query("{ q(A) | exists r in R [ q.A = r.A ] }", &cat).unwrap();
        assert!(eval_query(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn sentence_vs_query_entrypoint_errors() {
        let (cat, db) = rs_db();
        let sentence = parse_query("exists r in R [ r.A = 1 ]", &cat).unwrap();
        assert!(eval_query(&sentence, &db).is_err());
        let query = parse_query("{ q(A) | exists r in R [ q.A = r.A ] }", &cat).unwrap();
        assert!(eval_sentence(&query, &db).is_err());
    }
}
