//! Canonical form of TRC queries (§2.3).
//!
//! The paper's canonical representation requires that
//!
//! 1. "every existential quantifier \[is\] pulled out as early as … either …
//!    the start of the query, or directly following a negation operator";
//! 2. negated atomic predicates are folded into the complemented operator
//!    (`¬(r.A = 0)` → `r.A ≠ 0`);
//! 3. only equality conditions mention the result table, and each further
//!    use of an output attribute is replaced by its defining term
//!    (`{q(A) | … q.A = r.A ∧ s.A > q.A}` → `… ∧ s.A > r.A`).
//!
//! Disjunctions (outside TRC\*) are canonicalized branch-wise: quantifiers
//! are never hoisted across an `Or` boundary (that would change the
//! pattern), and double negations are preserved — they are structurally
//! meaningful (Fig. 5's empty partition `q₁`).

use crate::ast::{Binding, Formula, Term, TrcQuery, TrcUnion, Var};
use rd_core::CmpOp;
use std::collections::BTreeSet;

/// Canonicalizes a query (see module docs). The result is logically
/// equivalent and pattern-isomorphic to the input: the multiset and order
/// of table references is preserved.
pub fn canonicalize(q: &TrcQuery) -> TrcQuery {
    let mut q = q.clone();
    let mut used: BTreeSet<Var> = BTreeSet::new();
    if let Some(o) = &q.output {
        used.insert(o.name.clone());
    }
    freshen_vars(&mut q.formula, &mut used);
    let formula = canon_formula(&q.formula);
    let mut out = TrcQuery {
        output: q.output,
        formula,
    };
    substitute_output_uses(&mut out);
    out
}

/// Canonicalizes every branch of a union.
pub fn canonicalize_union(u: &TrcUnion) -> TrcUnion {
    TrcUnion {
        branches: u.branches.iter().map(canonicalize).collect(),
    }
}

/// Alpha-renames so every binding introduces a globally fresh variable.
fn freshen_vars(f: &mut Formula, used: &mut BTreeSet<Var>) {
    match f {
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                freshen_vars(sub, used);
            }
        }
        Formula::Not(sub) => freshen_vars(sub, used),
        Formula::Exists(bindings, body) => {
            for binding in bindings.iter_mut() {
                let v = binding.var.clone();
                if used.contains(&v) {
                    let fresh = fresh_var(&v, used);
                    binding.var = fresh.clone();
                    body.rename_var(&v, &fresh);
                    // Later sibling bindings of the same block cannot bind
                    // `v` again (checked), so renaming the body suffices.
                    used.insert(fresh);
                } else {
                    used.insert(v);
                }
            }
            freshen_vars(body, used);
        }
        Formula::Pred(_) => {}
    }
}

fn fresh_var(base: &str, used: &BTreeSet<Var>) -> Var {
    let mut i = 2usize;
    loop {
        let candidate = format!("{base}_{i}");
        if !used.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

/// Canonical shape: `Exists(bindings, And(parts))` where each part is a
/// predicate, a `Not(canonical)`, or an `Or` of canonical branches;
/// degenerate shapes (no bindings / single part) are simplified.
fn canon_formula(f: &Formula) -> Formula {
    let (bindings, parts) = hoist(f);
    build(bindings, parts)
}

fn build(bindings: Vec<Binding>, parts: Vec<Formula>) -> Formula {
    let body = Formula::and(parts);
    if bindings.is_empty() {
        body
    } else {
        Formula::exists(bindings, body)
    }
}

/// Returns the existential bindings hoistable to this level plus the
/// residual conjunct parts.
fn hoist(f: &Formula) -> (Vec<Binding>, Vec<Formula>) {
    match f {
        Formula::Pred(p) => (Vec::new(), vec![Formula::Pred(p.clone())]),
        Formula::And(fs) => {
            let mut bindings = Vec::new();
            let mut parts = Vec::new();
            for sub in fs {
                let (b, p) = hoist(sub);
                bindings.extend(b);
                parts.extend(p);
            }
            (bindings, parts)
        }
        Formula::Exists(b, body) => {
            let (mut bindings, parts) = hoist(body);
            let mut all = b.clone();
            all.append(&mut bindings);
            (all, parts)
        }
        Formula::Not(sub) => {
            // ¬(pred) folds into the complemented operator (§2.3).
            if let Formula::Pred(p) = sub.as_ref() {
                return (Vec::new(), vec![Formula::Pred(p.negated())]);
            }
            (Vec::new(), vec![Formula::not(canon_formula(sub))])
        }
        Formula::Or(fs) => {
            // Quantifiers stay inside their branch: hoisting across Or
            // would duplicate or merge table references.
            let branches = fs.iter().map(canon_formula).collect();
            (Vec::new(), vec![Formula::Or(branches)])
        }
    }
}

/// Replaces secondary uses of output attributes with their defining term
/// and orients defining predicates as `q.A = term`.
fn substitute_output_uses(q: &mut TrcQuery) {
    let Some(head) = q.output.clone() else {
        return;
    };
    for attr in &head.attrs {
        // Find the first defining equality at the outermost conjunction.
        let Some(def_term) = find_definition(&q.formula, &head.name, attr) else {
            continue;
        };
        replace_uses(&mut q.formula, &head.name, attr, &def_term, true);
    }
}

fn find_definition(f: &Formula, head: &str, attr: &str) -> Option<Term> {
    match f {
        Formula::And(fs) => fs.iter().find_map(|s| find_definition(s, head, attr)),
        Formula::Exists(_, body) => find_definition(body, head, attr),
        Formula::Pred(p) if p.op == CmpOp::Eq => {
            let is_head = |t: &Term| matches!(t, Term::Attr(a) if a.var == head && a.attr == attr);
            if is_head(&p.left) && !is_head(&p.right) {
                Some(p.right.clone())
            } else if is_head(&p.right) && !is_head(&p.left) {
                Some(p.left.clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Rewrites predicates mentioning `head.attr`. The first defining equality
/// is kept (normalized to `q.A = term`); all other occurrences are replaced
/// by `def_term`.
fn replace_uses(f: &mut Formula, head: &str, attr: &str, def_term: &Term, mut keep_first: bool) {
    fn walk(f: &mut Formula, head: &str, attr: &str, def_term: &Term, keep_first: &mut bool) {
        match f {
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    walk(sub, head, attr, def_term, keep_first);
                }
            }
            Formula::Not(sub) => walk(sub, head, attr, def_term, keep_first),
            Formula::Exists(_, body) => walk(body, head, attr, def_term, keep_first),
            Formula::Pred(p) => {
                let is_head =
                    |t: &Term| matches!(t, Term::Attr(a) if a.var == head && a.attr == attr);
                let mentions = is_head(&p.left) || is_head(&p.right);
                if !mentions {
                    return;
                }
                let this_defines =
                    p.op == CmpOp::Eq && (is_head(&p.left) != is_head(&p.right)) && {
                        let other = if is_head(&p.left) { &p.right } else { &p.left };
                        other == def_term
                    };
                if this_defines && *keep_first {
                    // Normalize orientation: q.A on the left.
                    if is_head(&p.right) {
                        *p = p.flipped();
                    }
                    *keep_first = false;
                    return;
                }
                if is_head(&p.left) {
                    p.left = def_term.clone();
                }
                if is_head(&p.right) {
                    p.right = def_term.clone();
                }
            }
        }
    }
    walk(f, head, attr, def_term, &mut keep_first);
}

/// `true` if the formula already has the canonical shape (quantifiers only
/// at the root or directly under a negation; no negated atomic predicates;
/// no nested conjunctions).
pub fn is_canonical(q: &TrcQuery) -> bool {
    fn parts_canonical(parts: &[Formula]) -> bool {
        parts.iter().all(|p| match p {
            Formula::Pred(_) => true,
            Formula::Not(inner) => shape(inner),
            Formula::Or(branches) => branches.iter().all(shape),
            _ => false,
        })
    }
    fn shape(f: &Formula) -> bool {
        match f {
            Formula::Exists(_, body) => match body.as_ref() {
                Formula::And(parts) => parts_canonical(parts),
                single => parts_canonical(std::slice::from_ref(single)),
            },
            Formula::And(parts) => parts_canonical(parts),
            single => parts_canonical(std::slice::from_ref(single)),
        }
    }
    shape(&q.formula)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query_unchecked;
    use crate::printer::to_ascii;

    #[test]
    fn pulls_quantifiers_to_negation_boundary() {
        // ¬(∃r∈R[r.A = 0 ∧ ∃s∈S[s.B = r.B]]) becomes
        // ¬(∃r∈R, s∈S[r.A = 0 ∧ s.B = r.B])   (§2.3's canonical example)
        let q = parse_query_unchecked(
            "not (exists r in R [ r.A = 0 and exists s in S [ s.B = r.B ] ])",
        )
        .unwrap();
        let c = canonicalize(&q);
        assert!(is_canonical(&c));
        assert_eq!(
            to_ascii(&c),
            "not (exists r in R, s in S [r.A = 0 and s.B = r.B])"
        );
    }

    #[test]
    fn folds_negated_predicates() {
        let q = parse_query_unchecked("not (exists r in R [ not (r.A = 0) ])").unwrap();
        let c = canonicalize(&q);
        assert_eq!(to_ascii(&c), "not (exists r in R [r.A != 0])");
    }

    #[test]
    fn preserves_double_negation() {
        let q = parse_query_unchecked("exists r in R [ not (not (exists t in T [ t.A = r.A ])) ]")
            .unwrap();
        let c = canonicalize(&q);
        assert_eq!(
            to_ascii(&c),
            "exists r in R [not (not (exists t in T [t.A = r.A]))]"
        );
    }

    #[test]
    fn canonicalization_preserves_signature() {
        let q = parse_query_unchecked(
            "{ q(A) | exists r in R [ q.A = r.A and exists s in S [ s.B = r.B and \
             not (exists r2 in R [ r2.A = s.B ]) ] ] }",
        )
        .unwrap();
        let c = canonicalize(&q);
        assert_eq!(q.signature(), c.signature());
        assert!(is_canonical(&c));
    }

    #[test]
    fn renames_colliding_variables() {
        // Same variable name `r` in sibling negation scopes is legal TRC;
        // hoisting must not merge them blindly (they stay in separate
        // scopes here, but nested reuse needs renaming).
        let q = parse_query_unchecked(
            "exists r in R [ r.A = 1 and not (exists r2 in R [ r2.A = r.A and exists s in S [ s.B = r2.B ] ]) ]",
        )
        .unwrap();
        let c = canonicalize(&q);
        assert!(is_canonical(&c));
        assert_eq!(c.signature(), vec!["R", "R", "S"]);
    }

    #[test]
    fn substitutes_secondary_output_uses() {
        // {q(A) | ∃r∈R, s∈S [q.A = r.A ∧ s.A > q.A]} — the second use of
        // q.A must become r.A (§2.3). We build the AST directly since the
        // checker rejects the non-canonical input.
        use crate::ast::{OutputSpec, Predicate};
        let f = Formula::exists(
            vec![Binding::new("r", "R"), Binding::new("s", "S")],
            Formula::and(vec![
                Formula::Pred(Predicate::new(
                    Term::attr("q", "A"),
                    CmpOp::Eq,
                    Term::attr("r", "A"),
                )),
                Formula::Pred(Predicate::new(
                    Term::attr("s", "A"),
                    CmpOp::Gt,
                    Term::attr("q", "A"),
                )),
            ]),
        );
        let q = TrcQuery::query(OutputSpec::new("q", ["A"]), f);
        let c = canonicalize(&q);
        assert_eq!(
            to_ascii(&c),
            "{ q(A) | exists r in R, s in S [q.A = r.A and s.A > r.A] }"
        );
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let q = parse_query_unchecked(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
        )
        .unwrap();
        let once = canonicalize(&q);
        let twice = canonicalize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn or_branches_canonicalized_independently() {
        let q = parse_query_unchecked(
            "exists r in R [ (exists s in S [ s.B = r.B ]) or (exists t in T [ t.A = r.A ]) ]",
        )
        .unwrap();
        let c = canonicalize(&q);
        // Quantifiers must not cross the Or.
        assert_eq!(c.signature(), vec!["R", "S", "T"]);
        match &c.formula {
            Formula::Exists(b, body) => {
                assert_eq!(b.len(), 1);
                assert!(matches!(body.as_ref(), Formula::Or(_)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }
}
