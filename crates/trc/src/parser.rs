//! Parser for the ASCII TRC surface syntax.
//!
//! Grammar (whitespace-insensitive; keywords case-insensitive):
//!
//! ```text
//! union    := query { 'union' query }
//! query    := '{' IDENT '(' IDENT {',' IDENT} ')' '|' formula '}'
//!           | formula                                   (Boolean sentence)
//! formula  := disj
//! disj     := conj { 'or' conj }
//! conj     := factor { 'and' factor }
//! factor   := 'not' '(' formula ')'
//!           | 'exists' binding {',' binding} '[' formula ']'
//!           | '(' formula ')'
//!           | predicate
//! binding  := IDENT 'in' IDENT
//! predicate:= term OP term
//! term     := IDENT '.' IDENT | INT | STRING
//! OP       := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//! ```
//!
//! The catalog is consulted only to *resolve unqualified output attributes*
//! — e.g. `{ q(A) | … }` names its columns directly — and is re-validated
//! by [`crate::check`]; parsing itself is schema-independent.

use crate::ast::{Binding, Formula, OutputSpec, Predicate, Term, TrcQuery, TrcUnion};
use rd_core::{Catalog, CmpOp, CoreError, CoreResult, Value};

/// Tokens of the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Op(CmpOp),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Pipe,
    Dot,
    Comma,
    KwExists,
    KwIn,
    KwAnd,
    KwOr,
    KwNot,
    KwUnion,
    KwTrue,
}

fn lex(input: &str) -> CoreResult<Vec<Tok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            '|' => {
                toks.push(Tok::Pipe);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(CoreError::Invalid("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        // '' is an escaped quote
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                toks.push(Tok::Str(s));
            }
            '=' | '!' | '<' | '>' => {
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                if let Some(op) = CmpOp::parse(&two) {
                    toks.push(Tok::Op(op));
                    i += 2;
                } else if let Some(op) = CmpOp::parse(&c.to_string()) {
                    toks.push(Tok::Op(op));
                    i += 1;
                } else {
                    return Err(CoreError::Invalid(format!("unexpected character '{c}'")));
                }
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: i64 = text
                    .parse()
                    .map_err(|_| CoreError::Invalid(format!("bad integer literal '{text}'")))?;
                toks.push(Tok::Int(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                toks.push(match word.to_ascii_lowercase().as_str() {
                    "exists" => Tok::KwExists,
                    "in" => Tok::KwIn,
                    "and" => Tok::KwAnd,
                    "or" => Tok::KwOr,
                    "not" => Tok::KwNot,
                    "union" => Tok::KwUnion,
                    "true" => Tok::KwTrue,
                    _ => Tok::Ident(word),
                });
            }
            other => {
                return Err(CoreError::Invalid(format!(
                    "unexpected character '{other}' in TRC input"
                )))
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> CoreResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| CoreError::Invalid("unexpected end of TRC input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Tok, what: &str) -> CoreResult<()> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(CoreError::Invalid(format!(
                "expected {what}, found {got:?}"
            )))
        }
    }

    fn ident(&mut self, what: &str) -> CoreResult<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(CoreError::Invalid(format!(
                "expected {what}, found {other:?}"
            ))),
        }
    }

    fn parse_union(&mut self) -> CoreResult<TrcUnion> {
        let mut branches = vec![self.parse_query()?];
        while self.peek() == Some(&Tok::KwUnion) {
            self.next()?;
            branches.push(self.parse_query()?);
        }
        TrcUnion::new(branches)
    }

    fn parse_query(&mut self) -> CoreResult<TrcQuery> {
        if self.peek() == Some(&Tok::LBrace) {
            self.next()?;
            let name = self.ident("output table name")?;
            self.expect(&Tok::LParen, "'('")?;
            let mut attrs = vec![self.ident("output attribute")?];
            while self.peek() == Some(&Tok::Comma) {
                self.next()?;
                attrs.push(self.ident("output attribute")?);
            }
            self.expect(&Tok::RParen, "')'")?;
            self.expect(&Tok::Pipe, "'|'")?;
            let formula = self.parse_formula()?;
            self.expect(&Tok::RBrace, "'}'")?;
            Ok(TrcQuery::query(OutputSpec::new(name, attrs), formula))
        } else {
            let formula = self.parse_formula()?;
            Ok(TrcQuery::sentence(formula))
        }
    }

    fn parse_formula(&mut self) -> CoreResult<Formula> {
        let mut parts = vec![self.parse_conj()?];
        while self.peek() == Some(&Tok::KwOr) {
            self.next()?;
            parts.push(self.parse_conj()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Formula::Or(parts)
        })
    }

    fn parse_conj(&mut self) -> CoreResult<Formula> {
        let mut parts = vec![self.parse_factor()?];
        while self.peek() == Some(&Tok::KwAnd) {
            self.next()?;
            parts.push(self.parse_factor()?);
        }
        Ok(Formula::and(parts))
    }

    fn parse_factor(&mut self) -> CoreResult<Formula> {
        match self.peek() {
            Some(Tok::KwNot) => {
                self.next()?;
                self.expect(&Tok::LParen, "'(' after not")?;
                let inner = self.parse_formula()?;
                self.expect(&Tok::RParen, "')' closing not")?;
                Ok(Formula::not(inner))
            }
            Some(Tok::KwExists) => {
                self.next()?;
                let mut bindings = vec![self.parse_binding()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.next()?;
                    bindings.push(self.parse_binding()?);
                }
                self.expect(&Tok::LBracket, "'[' opening exists body")?;
                // An empty body `[ ]` means the constant true.
                let body = if self.peek() == Some(&Tok::RBracket) {
                    Formula::truth()
                } else {
                    self.parse_formula()?
                };
                self.expect(&Tok::RBracket, "']' closing exists body")?;
                Ok(Formula::exists(bindings, body))
            }
            Some(Tok::LParen) => {
                self.next()?;
                let inner = self.parse_formula()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::KwTrue) => {
                self.next()?;
                Ok(Formula::truth())
            }
            _ => {
                let left = self.parse_term()?;
                let op = match self.next()? {
                    Tok::Op(op) => op,
                    other => {
                        return Err(CoreError::Invalid(format!(
                            "expected comparison operator, found {other:?}"
                        )))
                    }
                };
                let right = self.parse_term()?;
                Ok(Formula::Pred(Predicate::new(left, op, right)))
            }
        }
    }

    fn parse_binding(&mut self) -> CoreResult<Binding> {
        let var = self.ident("tuple variable")?;
        self.expect(&Tok::KwIn, "'in'")?;
        let table = self.ident("table name")?;
        Ok(Binding::new(var, table))
    }

    fn parse_term(&mut self) -> CoreResult<Term> {
        match self.next()? {
            Tok::Int(n) => Ok(Term::Const(Value::int(n))),
            Tok::Str(s) => Ok(Term::Const(Value::str(s))),
            Tok::Ident(var) => {
                self.expect(&Tok::Dot, "'.' after tuple variable")?;
                let attr = self.ident("attribute name")?;
                Ok(Term::attr(var, attr))
            }
            other => Err(CoreError::Invalid(format!(
                "expected term, found {other:?}"
            ))),
        }
    }

    fn finish(&self) -> CoreResult<()> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(CoreError::Invalid(format!(
                "trailing tokens after TRC query: {:?}",
                &self.toks[self.pos..]
            )))
        }
    }
}

/// Parses a single TRC query or Boolean sentence and validates it against
/// `catalog` (well-formedness, safety, guard analysis is separate — see
/// [`crate::check`]).
pub fn parse_query(input: &str, catalog: &Catalog) -> CoreResult<TrcQuery> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let q = p.parse_query()?;
    p.finish()?;
    crate::check::check_query(&q, catalog)?;
    Ok(q)
}

/// Parses a union of TRC queries (`{…} union {…}`), validating each branch.
pub fn parse_union(input: &str, catalog: &Catalog) -> CoreResult<TrcUnion> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let u = p.parse_union()?;
    p.finish()?;
    for q in &u.branches {
        crate::check::check_query(q, catalog)?;
    }
    Ok(u)
}

/// Parses without catalog validation. Useful for tests of the checker
/// itself and for queries over dissociated (not-yet-registered) schemas.
pub fn parse_query_unchecked(input: &str) -> CoreResult<TrcQuery> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let q = p.parse_query()?;
    p.finish()?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::TableSchema;

    fn rs_catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
        ])
        .unwrap()
    }

    #[test]
    fn parses_division() {
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
            &rs_catalog(),
        )
        .unwrap();
        assert_eq!(q.signature(), vec!["R", "S", "R"]);
        assert_eq!(q.formula.negation_depth(), 2);
    }

    #[test]
    fn parses_sentence_without_head() {
        let q = parse_query("exists r in R [ r.A = 1 ]", &rs_catalog()).unwrap();
        assert!(q.is_sentence());
    }

    #[test]
    fn parses_disjunction_and_string_literals() {
        let cat = Catalog::from_schemas([TableSchema::new("Boat", ["bid", "color"])]).unwrap();
        let q = parse_query(
            "exists b in Boat [ b.color = 'red' or b.color = 'blue' ]",
            &cat,
        )
        .unwrap();
        assert!(q.formula.contains_or());
    }

    #[test]
    fn parses_union() {
        let cat =
            Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["A"])])
                .unwrap();
        let u = parse_union(
            "{ q(A) | exists r in R [ q.A = r.A ] } union { q(A) | exists s in S [ q.A = s.A ] }",
            &cat,
        )
        .unwrap();
        assert_eq!(u.branches.len(), 2);
        assert_eq!(u.signature(), vec!["R", "S"]);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let cat = rs_catalog();
        assert!(parse_query("{ q(A) | ", &cat).is_err());
        assert!(parse_query("{ q() | exists r in R [ q.A = r.A ] }", &cat).is_err());
        assert!(parse_query("exists r in R [ r.A & 1 ]", &cat).is_err());
        assert!(parse_query("exists r in R [ r.A = 1 ] garbage", &cat).is_err());
    }

    #[test]
    fn lexes_quoted_strings_with_escapes() {
        let cat = Catalog::from_schemas([TableSchema::new("T", ["N"])]).unwrap();
        let q = parse_query("exists t in T [ t.N = 'o''brien' ]", &cat).unwrap();
        let mut found = false;
        q.formula.visit_predicates(&mut |p| {
            if let Term::Const(Value::Str(s)) = &p.right {
                assert_eq!(s, "o'brien");
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn empty_exists_body_is_truth() {
        let cat = rs_catalog();
        let q = parse_query("exists r in R [ ]", &cat).unwrap();
        match &q.formula {
            Formula::Exists(_, body) => assert_eq!(**body, Formula::truth()),
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn operators_all_spellings() {
        let cat = rs_catalog();
        for op in ["=", "!=", "<>", "<", "<=", ">", ">="] {
            let q = parse_query(&format!("exists r in R [ r.A {op} 1 ]"), &cat).unwrap();
            assert!(!q.signature().is_empty());
        }
    }
}
