//! Printers for TRC queries.
//!
//! [`to_ascii`] emits the parseable surface syntax (round-trips through
//! [`crate::parser::parse_query_unchecked`]); [`to_unicode`] emits the
//! paper's notation (`∃r ∈ R[…]`, `∧`, `¬`).

use crate::ast::{Formula, TrcQuery, TrcUnion};
use std::fmt;

/// Rendering style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Style {
    Ascii,
    Unicode,
}

/// Renders the ASCII surface syntax.
pub fn to_ascii(q: &TrcQuery) -> String {
    render_query(q, Style::Ascii)
}

/// Renders the paper's Unicode notation.
pub fn to_unicode(q: &TrcQuery) -> String {
    render_query(q, Style::Unicode)
}

/// Renders a union (ASCII).
pub fn union_to_ascii(u: &TrcUnion) -> String {
    u.branches
        .iter()
        .map(to_ascii)
        .collect::<Vec<_>>()
        .join(" union ")
}

/// Renders a union (Unicode, `∪` separated).
pub fn union_to_unicode(u: &TrcUnion) -> String {
    u.branches
        .iter()
        .map(to_unicode)
        .collect::<Vec<_>>()
        .join(" ∪ ")
}

fn render_query(q: &TrcQuery, style: Style) -> String {
    match &q.output {
        Some(head) => format!(
            "{{ {}({}) | {} }}",
            head.name,
            head.attrs.join(", "),
            render(&q.formula, style)
        ),
        None => render(&q.formula, style),
    }
}

fn render(f: &Formula, style: Style) -> String {
    match f {
        Formula::And(fs) => {
            if fs.is_empty() {
                return "true".to_string();
            }
            let sep = match style {
                Style::Ascii => " and ",
                Style::Unicode => " ∧ ",
            };
            fs.iter()
                .map(|sub| maybe_paren(sub, style))
                .collect::<Vec<_>>()
                .join(sep)
        }
        Formula::Or(fs) => {
            let sep = match style {
                Style::Ascii => " or ",
                Style::Unicode => " ∨ ",
            };
            let body = fs
                .iter()
                .map(|sub| maybe_paren_or(sub, style))
                .collect::<Vec<_>>()
                .join(sep);
            body
        }
        Formula::Not(sub) => match style {
            Style::Ascii => format!("not ({})", render(sub, style)),
            Style::Unicode => format!("¬({})", render(sub, style)),
        },
        Formula::Exists(bindings, body) => {
            let bs = bindings
                .iter()
                .map(|b| match style {
                    Style::Ascii => format!("{} in {}", b.var, b.table),
                    Style::Unicode => format!("∃{} ∈ {}", b.var, b.table),
                })
                .collect::<Vec<_>>()
                .join(", ");
            match style {
                Style::Ascii => format!("exists {bs} [{}]", render(body, style)),
                Style::Unicode => format!("{bs} [{}]", render(body, style)),
            }
        }
        Formula::Pred(p) => match style {
            Style::Ascii => p.to_string(),
            Style::Unicode => format!("{} {} {}", p.left, p.op.unicode(), p.right),
        },
    }
}

/// Conjunction operands that are disjunctions need parentheses to
/// round-trip with the parser's precedence (and binds tighter than or).
fn maybe_paren(f: &Formula, style: Style) -> String {
    match f {
        Formula::Or(_) => format!("({})", render(f, style)),
        _ => render(f, style),
    }
}

fn maybe_paren_or(f: &Formula, style: Style) -> String {
    match f {
        // `a or b and c` parses as `a or (b and c)`; conjunction operands
        // inside Or are unambiguous, but parenthesize nested Or for clarity.
        Formula::Or(_) => format!("({})", render(f, style)),
        _ => render(f, style),
    }
}

impl fmt::Display for TrcQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_ascii(self))
    }
}

impl fmt::Display for TrcUnion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&union_to_ascii(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query_unchecked, parse_union};
    use rd_core::{Catalog, TableSchema};

    #[test]
    fn ascii_roundtrips_through_parser() {
        let inputs = [
            "{ q(A) | exists r in R [q.A = r.A and not (exists s in S [s.B = r.B])] }",
            "not (exists r in R [r.A != 0])",
            "exists r in R [r.A = 1 or r.B = 2]",
            "{ q(A, D) | exists r1 in R, r2 in R, s1 in S [q.A = r1.A and q.D = r2.C] }",
        ];
        for text in inputs {
            let q = parse_query_unchecked(text).unwrap();
            let printed = to_ascii(&q);
            let q2 = parse_query_unchecked(&printed).unwrap();
            assert_eq!(q, q2, "round-trip failed for {text}");
        }
    }

    #[test]
    fn unicode_uses_paper_notation() {
        let q = parse_query_unchecked(
            "{ q(A) | exists r in R [q.A = r.A and not (exists s in S [s.B != r.B])] }",
        )
        .unwrap();
        let u = to_unicode(&q);
        assert!(u.contains("∃r ∈ R"));
        assert!(u.contains('∧'));
        assert!(u.contains("¬("));
        assert!(u.contains('≠'));
    }

    #[test]
    fn union_printer_roundtrips() {
        let cat =
            Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["A"])])
                .unwrap();
        let text =
            "{ q(A) | exists r in R [q.A = r.A] } union { q(A) | exists s in S [q.A = s.A] }";
        let u = parse_union(text, &cat).unwrap();
        let printed = union_to_ascii(&u);
        let u2 = parse_union(&printed, &cat).unwrap();
        assert_eq!(u, u2);
        assert!(union_to_unicode(&u).contains('∪'));
    }

    #[test]
    fn truth_renders() {
        let q = parse_query_unchecked("exists r in R [ ]").unwrap();
        assert_eq!(to_ascii(&q), "exists r in R [true]");
    }
}
