//! # rd-ra — Relational Algebra, the fragment RA\*, and the antijoin
//!
//! Implements the paper's algebraic language (§2.2): the basic operators
//! `× σ ⋈꜀ π − ρ`, plus `∪` (outside the fragment) and the antijoin `⊲`
//! of Appendix G.1 (Theorem 21). We use the **named perspective**: every
//! expression has an inferred schema (an ordered list of attribute names),
//! the product requires disjoint names (use `ρ`), and difference/union
//! require identical schemas.
//!
//! ```
//! use rd_ra::{parse, RaExpr};
//! use rd_core::{Catalog, TableSchema, Database, Relation};
//!
//! let catalog = Catalog::from_schemas([
//!     TableSchema::new("R", ["A", "B"]),
//!     TableSchema::new("S", ["B"]),
//! ]).unwrap();
//! // π_A R − π_A((π_A R × S) − R)   (relational division, eq. 15)
//! let e = parse("pi[A](R) - pi[A]((pi[A](R) x S) - R)", &catalog).unwrap();
//! assert_eq!(e.schema(&catalog).unwrap(), vec!["A"]);
//! assert_eq!(e.signature(), vec!["R", "R", "S", "R"]);
//! ```

pub mod ast;
pub mod check;
pub mod eval;
pub mod parser;
pub mod printer;

pub use ast::{Condition, JoinCond, RaExpr, RaTerm};
pub use check::{is_ra_star, is_ra_star_antijoin};
pub use eval::{eval, lower, lower_with};
pub use parser::parse;
pub use printer::{to_ascii, to_unicode};
