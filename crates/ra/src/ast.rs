//! Relational algebra expressions and schema inference.

use rd_core::{Catalog, CmpOp, CoreError, CoreResult, Value};
use std::fmt;

/// One side of a selection condition: an attribute of the input schema or
/// a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaTerm {
    /// Attribute by name.
    Attr(String),
    /// Constant value.
    Const(Value),
}

impl RaTerm {
    /// Attribute constructor.
    pub fn attr(name: impl Into<String>) -> Self {
        RaTerm::Attr(name.into())
    }

    /// Constant constructor.
    pub fn value(v: impl Into<Value>) -> Self {
        RaTerm::Const(v.into())
    }
}

impl fmt::Display for RaTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaTerm::Attr(a) => write!(f, "{a}"),
            RaTerm::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A selection condition.
///
/// RA\* (Def. 2) restricts selections to conjunctions of *simple*
/// conditions `X θ Y`; full RA additionally allows disjunction (§2.2's
/// example uses `σ_{A=D ∨ A=C}`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Condition {
    /// A simple comparison `X θ Y`.
    Cmp(RaTerm, CmpOp, RaTerm),
    /// Conjunction.
    And(Vec<Condition>),
    /// Disjunction (outside RA\*).
    Or(Vec<Condition>),
}

impl Condition {
    /// Simple comparison constructor.
    pub fn cmp(left: RaTerm, op: CmpOp, right: RaTerm) -> Self {
        Condition::Cmp(left, op, right)
    }

    /// Equality between two attributes.
    pub fn eq_attr(left: impl Into<String>, right: impl Into<String>) -> Self {
        Condition::Cmp(RaTerm::attr(left), CmpOp::Eq, RaTerm::attr(right))
    }

    /// `true` if no disjunction occurs anywhere in the condition.
    pub fn is_conjunctive(&self) -> bool {
        match self {
            Condition::Cmp(..) => true,
            Condition::And(cs) => cs.iter().all(Condition::is_conjunctive),
            Condition::Or(_) => false,
        }
    }

    /// All attribute names referenced.
    pub fn attrs(&self) -> Vec<&str> {
        fn walk<'a>(c: &'a Condition, out: &mut Vec<&'a str>) {
            match c {
                Condition::Cmp(l, _, r) => {
                    if let RaTerm::Attr(a) = l {
                        out.push(a);
                    }
                    if let RaTerm::Attr(a) = r {
                        out.push(a);
                    }
                }
                Condition::And(cs) | Condition::Or(cs) => {
                    for c in cs {
                        walk(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Cmp(l, op, r) => write!(f, "{l}{op}{r}"),
            Condition::And(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "{}", parts.join(" and "))
            }
            Condition::Or(cs) => {
                let parts: Vec<String> = cs
                    .iter()
                    .map(|c| match c {
                        Condition::And(_) => format!("({c})"),
                        _ => c.to_string(),
                    })
                    .collect();
                write!(f, "{}", parts.join(" or "))
            }
        }
    }
}

/// A θ-join / antijoin condition: a conjunction of `leftAttr θ rightAttr`
/// atoms, where the left attribute resolves in the left operand's schema
/// and the right attribute in the right operand's (this removes the
/// ambiguity of identically-named attributes on both sides).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinCond(pub Vec<(String, CmpOp, String)>);

impl JoinCond {
    /// Single equality `l = r`.
    pub fn eq(l: impl Into<String>, r: impl Into<String>) -> Self {
        JoinCond(vec![(l.into(), CmpOp::Eq, r.into())])
    }
}

impl fmt::Display for JoinCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .0
            .iter()
            .map(|(l, op, r)| format!("{l}{op}{r}"))
            .collect();
        write!(f, "{}", parts.join(" and "))
    }
}

/// A relational algebra expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaExpr {
    /// A base table reference.
    Table(String),
    /// Projection `π_{attrs}(e)`.
    Project(Vec<String>, Box<RaExpr>),
    /// Selection `σ_c(e)`.
    Select(Condition, Box<RaExpr>),
    /// Cartesian product `l × r` (schemas must be disjoint).
    Product(Box<RaExpr>, Box<RaExpr>),
    /// θ-join `l ⋈_c r` = `σ_c(l × r)` with side-resolved condition.
    Join(JoinCond, Box<RaExpr>, Box<RaExpr>),
    /// Natural join `l ⋈ r` on identically-named attributes.
    NaturalJoin(Box<RaExpr>, Box<RaExpr>),
    /// Rename `ρ_{a→b,…}(e)`.
    Rename(Vec<(String, String)>, Box<RaExpr>),
    /// Difference `l − r` (identical schemas).
    Diff(Box<RaExpr>, Box<RaExpr>),
    /// Union `l ∪ r` (identical schemas; outside RA\*).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Antijoin `l ⊲_c r`: tuples of `l` with no joining tuple in `r`
    /// (Appendix G.1). An empty condition is the natural antijoin.
    Antijoin(JoinCond, Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// Base-table reference.
    pub fn table(name: impl Into<String>) -> Self {
        RaExpr::Table(name.into())
    }

    /// Projection helper.
    pub fn project<S: Into<String>, I: IntoIterator<Item = S>>(attrs: I, e: RaExpr) -> Self {
        RaExpr::Project(attrs.into_iter().map(Into::into).collect(), Box::new(e))
    }

    /// Selection helper.
    pub fn select(cond: Condition, e: RaExpr) -> Self {
        RaExpr::Select(cond, Box::new(e))
    }

    /// Product helper.
    pub fn product(l: RaExpr, r: RaExpr) -> Self {
        RaExpr::Product(Box::new(l), Box::new(r))
    }

    /// Difference helper.
    pub fn diff(l: RaExpr, r: RaExpr) -> Self {
        RaExpr::Diff(Box::new(l), Box::new(r))
    }

    /// Union helper.
    pub fn union(l: RaExpr, r: RaExpr) -> Self {
        RaExpr::Union(Box::new(l), Box::new(r))
    }

    /// Rename helper.
    pub fn rename<S: Into<String>, T: Into<String>, I: IntoIterator<Item = (S, T)>>(
        renames: I,
        e: RaExpr,
    ) -> Self {
        RaExpr::Rename(
            renames
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
            Box::new(e),
        )
    }

    /// Natural-join helper.
    pub fn natural_join(l: RaExpr, r: RaExpr) -> Self {
        RaExpr::NaturalJoin(Box::new(l), Box::new(r))
    }

    /// θ-join helper.
    pub fn join(cond: JoinCond, l: RaExpr, r: RaExpr) -> Self {
        RaExpr::Join(cond, Box::new(l), Box::new(r))
    }

    /// Antijoin helper.
    pub fn antijoin(cond: JoinCond, l: RaExpr, r: RaExpr) -> Self {
        RaExpr::Antijoin(cond, Box::new(l), Box::new(r))
    }

    /// The *signature* of the expression (Def. 9): its table references in
    /// left-to-right syntactic order.
    pub fn signature(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit_tables(&mut |t| out.push(t.to_string()));
        out
    }

    /// Visits base-table references left to right.
    pub fn visit_tables<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            RaExpr::Table(t) => f(t),
            RaExpr::Project(_, e) | RaExpr::Select(_, e) | RaExpr::Rename(_, e) => {
                e.visit_tables(f)
            }
            RaExpr::Product(l, r)
            | RaExpr::Join(_, l, r)
            | RaExpr::NaturalJoin(l, r)
            | RaExpr::Diff(l, r)
            | RaExpr::Union(l, r)
            | RaExpr::Antijoin(_, l, r) => {
                l.visit_tables(f);
                r.visit_tables(f);
            }
        }
    }

    /// Renames base-table references (dissociation support). Renames the
    /// `index`-th reference (0-based, left-to-right) to `to`; returns true
    /// if the index existed.
    pub fn rename_table_ref(&mut self, index: usize, to: &str) -> bool {
        fn walk(e: &mut RaExpr, index: usize, to: &str, seen: &mut usize) -> bool {
            match e {
                RaExpr::Table(t) => {
                    if *seen == index {
                        *t = to.to_string();
                        *seen += 1;
                        true
                    } else {
                        *seen += 1;
                        false
                    }
                }
                RaExpr::Project(_, inner) | RaExpr::Select(_, inner) | RaExpr::Rename(_, inner) => {
                    walk(inner, index, to, seen)
                }
                RaExpr::Product(l, r)
                | RaExpr::Join(_, l, r)
                | RaExpr::NaturalJoin(l, r)
                | RaExpr::Diff(l, r)
                | RaExpr::Union(l, r)
                | RaExpr::Antijoin(_, l, r) => walk(l, index, to, seen) || walk(r, index, to, seen),
            }
        }
        walk(self, index, to, &mut 0)
    }

    /// Infers the output schema (ordered attribute names), validating the
    /// expression against `catalog`:
    /// * projections/selections/conditions reference existing attributes;
    /// * products require disjoint schemas;
    /// * difference and union require identical schemas;
    /// * renames must be injective and reference existing attributes.
    pub fn schema(&self, catalog: &Catalog) -> CoreResult<Vec<String>> {
        match self {
            RaExpr::Table(t) => Ok(catalog.require(t)?.attrs().to_vec()),
            RaExpr::Project(attrs, e) => {
                let inner = e.schema(catalog)?;
                for a in attrs {
                    if !inner.contains(a) {
                        return Err(CoreError::Invalid(format!(
                            "projection attribute '{a}' not in input schema {inner:?}"
                        )));
                    }
                }
                let mut seen = Vec::new();
                for a in attrs {
                    if seen.contains(a) {
                        return Err(CoreError::Invalid(format!(
                            "duplicate projection attribute '{a}'"
                        )));
                    }
                    seen.push(a.clone());
                }
                Ok(attrs.clone())
            }
            RaExpr::Select(cond, e) => {
                let inner = e.schema(catalog)?;
                for a in cond.attrs() {
                    if !inner.iter().any(|x| x == a) {
                        return Err(CoreError::Invalid(format!(
                            "selection attribute '{a}' not in input schema {inner:?}"
                        )));
                    }
                }
                Ok(inner)
            }
            RaExpr::Product(l, r) => {
                let ls = l.schema(catalog)?;
                let rs = r.schema(catalog)?;
                for a in &rs {
                    if ls.contains(a) {
                        return Err(CoreError::Invalid(format!(
                            "product schemas overlap on '{a}' — use rename (ρ)"
                        )));
                    }
                }
                Ok(ls.into_iter().chain(rs).collect())
            }
            RaExpr::Join(cond, l, r) => {
                let ls = l.schema(catalog)?;
                let rs = r.schema(catalog)?;
                for (la, _, ra) in &cond.0 {
                    if !ls.contains(la) {
                        return Err(CoreError::Invalid(format!(
                            "join attribute '{la}' not in left schema {ls:?}"
                        )));
                    }
                    if !rs.contains(ra) {
                        return Err(CoreError::Invalid(format!(
                            "join attribute '{ra}' not in right schema {rs:?}"
                        )));
                    }
                }
                for a in &rs {
                    if ls.contains(a) {
                        return Err(CoreError::Invalid(format!(
                            "theta-join schemas overlap on '{a}' — use rename (ρ)"
                        )));
                    }
                }
                Ok(ls.into_iter().chain(rs).collect())
            }
            RaExpr::NaturalJoin(l, r) => {
                let ls = l.schema(catalog)?;
                let rs = r.schema(catalog)?;
                let mut out = ls.clone();
                out.extend(rs.into_iter().filter(|a| !ls.contains(a)));
                Ok(out)
            }
            RaExpr::Rename(renames, e) => {
                let mut inner = e.schema(catalog)?;
                for (from, to) in renames {
                    let idx = inner.iter().position(|a| a == from).ok_or_else(|| {
                        CoreError::Invalid(format!("rename source '{from}' not in schema"))
                    })?;
                    if inner.contains(to) {
                        return Err(CoreError::Invalid(format!(
                            "rename target '{to}' already in schema"
                        )));
                    }
                    inner[idx] = to.clone();
                }
                Ok(inner)
            }
            RaExpr::Diff(l, r) | RaExpr::Union(l, r) => {
                let ls = l.schema(catalog)?;
                let rs = r.schema(catalog)?;
                if ls != rs {
                    return Err(CoreError::Invalid(format!(
                        "difference/union require identical schemas, got {ls:?} vs {rs:?}"
                    )));
                }
                Ok(ls)
            }
            RaExpr::Antijoin(cond, l, r) => {
                let ls = l.schema(catalog)?;
                let rs = r.schema(catalog)?;
                if cond.0.is_empty() {
                    // Natural antijoin: join on all shared names.
                    if !rs.iter().any(|a| ls.contains(a)) {
                        return Err(CoreError::Invalid(
                            "natural antijoin requires at least one shared attribute".into(),
                        ));
                    }
                } else {
                    for (la, _, ra) in &cond.0 {
                        if !ls.contains(la) {
                            return Err(CoreError::Invalid(format!(
                                "antijoin attribute '{la}' not in left schema {ls:?}"
                            )));
                        }
                        if !rs.contains(ra) {
                            return Err(CoreError::Invalid(format!(
                                "antijoin attribute '{ra}' not in right schema {rs:?}"
                            )));
                        }
                    }
                }
                Ok(ls)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::TableSchema;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
            TableSchema::new("T", ["A"]),
        ])
        .unwrap()
    }

    #[test]
    fn division_schema_and_signature() {
        // π_A R − π_A((π_A R × S) − R)   (eq. 15)
        let e = RaExpr::diff(
            RaExpr::project(["A"], RaExpr::table("R")),
            RaExpr::project(
                ["A"],
                RaExpr::diff(
                    RaExpr::product(
                        RaExpr::project(["A"], RaExpr::table("R")),
                        RaExpr::table("S"),
                    ),
                    RaExpr::table("R"),
                ),
            ),
        );
        assert_eq!(e.schema(&catalog()).unwrap(), vec!["A"]);
        assert_eq!(e.signature(), vec!["R", "R", "S", "R"]);
    }

    #[test]
    fn product_requires_disjoint_schemas() {
        let e = RaExpr::product(RaExpr::table("R"), RaExpr::table("R"));
        assert!(e.schema(&catalog()).is_err());
        let e = RaExpr::product(
            RaExpr::table("R"),
            RaExpr::rename([("A", "A2"), ("B", "B2")], RaExpr::table("R")),
        );
        assert_eq!(e.schema(&catalog()).unwrap(), vec!["A", "B", "A2", "B2"]);
    }

    #[test]
    fn diff_requires_same_schema() {
        let e = RaExpr::diff(RaExpr::table("R"), RaExpr::table("S"));
        assert!(e.schema(&catalog()).is_err());
    }

    #[test]
    fn natural_join_merges_shared() {
        let e = RaExpr::natural_join(RaExpr::table("R"), RaExpr::table("S"));
        assert_eq!(e.schema(&catalog()).unwrap(), vec!["A", "B"]);
    }

    #[test]
    fn antijoin_schema_is_left() {
        let e = RaExpr::antijoin(
            JoinCond::eq("B", "B"),
            RaExpr::table("R"),
            RaExpr::table("S"),
        );
        assert_eq!(e.schema(&catalog()).unwrap(), vec!["A", "B"]);
        let natural = RaExpr::antijoin(JoinCond(vec![]), RaExpr::table("R"), RaExpr::table("S"));
        assert_eq!(natural.schema(&catalog()).unwrap(), vec!["A", "B"]);
    }

    #[test]
    fn rename_validation() {
        assert!(RaExpr::rename([("Z", "Y")], RaExpr::table("R"))
            .schema(&catalog())
            .is_err());
        assert!(RaExpr::rename([("A", "B")], RaExpr::table("R"))
            .schema(&catalog())
            .is_err());
    }

    #[test]
    fn projection_validation() {
        assert!(RaExpr::project(["Z"], RaExpr::table("R"))
            .schema(&catalog())
            .is_err());
        assert!(RaExpr::project(["A", "A"], RaExpr::table("R"))
            .schema(&catalog())
            .is_err());
    }

    #[test]
    fn rename_table_ref_targets_by_index() {
        let mut e = RaExpr::diff(
            RaExpr::project(["A"], RaExpr::table("R")),
            RaExpr::project(["A"], RaExpr::table("R")),
        );
        assert!(e.rename_table_ref(1, "R_2"));
        assert_eq!(e.signature(), vec!["R", "R_2"]);
        assert!(!e.rename_table_ref(5, "X"));
    }

    #[test]
    fn condition_helpers() {
        let c = Condition::Or(vec![
            Condition::eq_attr("A", "D"),
            Condition::eq_attr("A", "C"),
        ]);
        assert!(!c.is_conjunctive());
        assert_eq!(c.attrs(), vec!["A", "D", "A", "C"]);
        assert_eq!(c.to_string(), "A=D or A=C");
    }
}
