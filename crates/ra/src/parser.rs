//! Parser for the ASCII RA surface syntax.
//!
//! ```text
//! expr    := term { ('-' | 'union') term }
//! term    := factor { ('x' | 'join' ['[' jcond ']'] | 'antijoin' ['[' jcond ']']) factor }
//! factor  := 'pi' '[' attrs ']' '(' expr ')'
//!          | 'sigma' '[' cond ']' '(' expr ')'
//!          | 'rho' '[' renames ']' '(' expr ')'
//!          | '(' expr ')'
//!          | IDENT
//! cond    := disj; disj := conj {'or' conj}; conj := cmp {'and' cmp}
//! cmp     := operand OP operand;  operand := IDENT | INT | STRING
//! jcond   := IDENT OP IDENT { 'and' IDENT OP IDENT }
//! renames := IDENT '->' IDENT {',' IDENT '->' IDENT}
//! ```

use crate::ast::{Condition, JoinCond, RaExpr, RaTerm};
use rd_core::{Catalog, CmpOp, CoreError, CoreResult, Value};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Op(CmpOp),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Minus,
    Arrow,
    KwPi,
    KwSigma,
    KwRho,
    KwX,
    KwJoin,
    KwAntijoin,
    KwUnion,
    KwAnd,
    KwOr,
}

fn lex(input: &str) -> CoreResult<Vec<Tok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '-' => {
                if i + 1 < chars.len() && chars[i + 1] == '>' {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1].is_ascii_digit() {
                    // negative literal
                    let start = i;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    toks.push(Tok::Int(text.parse().map_err(|_| {
                        CoreError::Invalid(format!("bad integer '{text}'"))
                    })?));
                } else {
                    toks.push(Tok::Minus);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(CoreError::Invalid("unterminated string".into()));
                }
                i += 1;
                toks.push(Tok::Str(s));
            }
            '=' | '!' | '<' | '>' => {
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                if let Some(op) = CmpOp::parse(&two) {
                    toks.push(Tok::Op(op));
                    i += 2;
                } else if let Some(op) = CmpOp::parse(&c.to_string()) {
                    toks.push(Tok::Op(op));
                    i += 1;
                } else {
                    return Err(CoreError::Invalid(format!("unexpected char '{c}'")));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok::Int(text.parse().map_err(|_| {
                    CoreError::Invalid(format!("bad integer '{text}'"))
                })?));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                toks.push(match word.to_ascii_lowercase().as_str() {
                    "pi" => Tok::KwPi,
                    "sigma" => Tok::KwSigma,
                    "rho" => Tok::KwRho,
                    "x" => Tok::KwX,
                    "join" => Tok::KwJoin,
                    "antijoin" => Tok::KwAntijoin,
                    "union" => Tok::KwUnion,
                    "and" => Tok::KwAnd,
                    "or" => Tok::KwOr,
                    _ => Tok::Ident(word),
                });
            }
            other => {
                return Err(CoreError::Invalid(format!(
                    "unexpected character '{other}' in RA input"
                )))
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> CoreResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| CoreError::Invalid("unexpected end of RA input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Tok, what: &str) -> CoreResult<()> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(CoreError::Invalid(format!(
                "expected {what}, found {got:?}"
            )))
        }
    }

    fn ident(&mut self, what: &str) -> CoreResult<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(CoreError::Invalid(format!(
                "expected {what}, found {other:?}"
            ))),
        }
    }

    fn expr(&mut self) -> CoreResult<RaExpr> {
        let mut left = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Minus) => {
                    self.next()?;
                    let right = self.term()?;
                    left = RaExpr::diff(left, right);
                }
                Some(Tok::KwUnion) => {
                    self.next()?;
                    let right = self.term()?;
                    left = RaExpr::union(left, right);
                }
                _ => return Ok(left),
            }
        }
    }

    fn term(&mut self) -> CoreResult<RaExpr> {
        let mut left = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::KwX) => {
                    self.next()?;
                    let right = self.factor()?;
                    left = RaExpr::product(left, right);
                }
                Some(Tok::KwJoin) => {
                    self.next()?;
                    if self.peek() == Some(&Tok::LBracket) {
                        let cond = self.join_cond()?;
                        let right = self.factor()?;
                        left = RaExpr::join(cond, left, right);
                    } else {
                        let right = self.factor()?;
                        left = RaExpr::natural_join(left, right);
                    }
                }
                Some(Tok::KwAntijoin) => {
                    self.next()?;
                    if self.peek() == Some(&Tok::LBracket) {
                        let cond = self.join_cond()?;
                        let right = self.factor()?;
                        left = RaExpr::antijoin(cond, left, right);
                    } else {
                        let right = self.factor()?;
                        left = RaExpr::antijoin(JoinCond(vec![]), left, right);
                    }
                }
                _ => return Ok(left),
            }
        }
    }

    fn factor(&mut self) -> CoreResult<RaExpr> {
        match self.next()? {
            Tok::KwPi => {
                self.expect(&Tok::LBracket, "'['")?;
                let mut attrs = vec![self.ident("attribute")?];
                while self.peek() == Some(&Tok::Comma) {
                    self.next()?;
                    attrs.push(self.ident("attribute")?);
                }
                self.expect(&Tok::RBracket, "']'")?;
                self.expect(&Tok::LParen, "'('")?;
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(RaExpr::Project(attrs, Box::new(inner)))
            }
            Tok::KwSigma => {
                self.expect(&Tok::LBracket, "'['")?;
                let cond = self.condition()?;
                self.expect(&Tok::RBracket, "']'")?;
                self.expect(&Tok::LParen, "'('")?;
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(RaExpr::select(cond, inner))
            }
            Tok::KwRho => {
                self.expect(&Tok::LBracket, "'['")?;
                let mut renames = Vec::new();
                loop {
                    let from = self.ident("rename source")?;
                    self.expect(&Tok::Arrow, "'->'")?;
                    let to = self.ident("rename target")?;
                    renames.push((from, to));
                    if self.peek() == Some(&Tok::Comma) {
                        self.next()?;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RBracket, "']'")?;
                self.expect(&Tok::LParen, "'('")?;
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(RaExpr::Rename(renames, Box::new(inner)))
            }
            Tok::LParen => {
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Tok::Ident(name) => Ok(RaExpr::Table(name)),
            other => Err(CoreError::Invalid(format!(
                "expected RA factor, found {other:?}"
            ))),
        }
    }

    fn join_cond(&mut self) -> CoreResult<JoinCond> {
        self.expect(&Tok::LBracket, "'['")?;
        let mut items = Vec::new();
        loop {
            let l = self.ident("join attribute")?;
            let op = match self.next()? {
                Tok::Op(op) => op,
                other => {
                    return Err(CoreError::Invalid(format!(
                        "expected comparison in join condition, found {other:?}"
                    )))
                }
            };
            let r = self.ident("join attribute")?;
            items.push((l, op, r));
            if self.peek() == Some(&Tok::KwAnd) {
                self.next()?;
            } else {
                break;
            }
        }
        self.expect(&Tok::RBracket, "']'")?;
        Ok(JoinCond(items))
    }

    fn condition(&mut self) -> CoreResult<Condition> {
        let mut parts = vec![self.conj()?];
        while self.peek() == Some(&Tok::KwOr) {
            self.next()?;
            parts.push(self.conj()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Condition::Or(parts)
        })
    }

    fn conj(&mut self) -> CoreResult<Condition> {
        let mut parts = vec![self.cmp()?];
        while self.peek() == Some(&Tok::KwAnd) {
            self.next()?;
            parts.push(self.cmp()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Condition::And(parts)
        })
    }

    fn cmp(&mut self) -> CoreResult<Condition> {
        if self.peek() == Some(&Tok::LParen) {
            self.next()?;
            let inner = self.condition()?;
            self.expect(&Tok::RParen, "')'")?;
            return Ok(inner);
        }
        let l = self.operand()?;
        let op = match self.next()? {
            Tok::Op(op) => op,
            other => {
                return Err(CoreError::Invalid(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let r = self.operand()?;
        Ok(Condition::Cmp(l, op, r))
    }

    fn operand(&mut self) -> CoreResult<RaTerm> {
        match self.next()? {
            Tok::Ident(a) => Ok(RaTerm::Attr(a)),
            Tok::Int(n) => Ok(RaTerm::Const(Value::int(n))),
            Tok::Str(s) => Ok(RaTerm::Const(Value::str(s))),
            other => Err(CoreError::Invalid(format!(
                "expected condition operand, found {other:?}"
            ))),
        }
    }
}

/// Parses an RA expression and validates its schema against `catalog`.
pub fn parse(input: &str, catalog: &Catalog) -> CoreResult<RaExpr> {
    let e = parse_unchecked(input)?;
    e.schema(catalog)?;
    Ok(e)
}

/// Parses without schema validation.
pub fn parse_unchecked(input: &str) -> CoreResult<RaExpr> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(CoreError::Invalid(format!(
            "trailing tokens after RA expression: {:?}",
            &p.toks[p.pos..]
        )));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::to_ascii;
    use rd_core::TableSchema;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
            TableSchema::new("T", ["A"]),
        ])
        .unwrap()
    }

    #[test]
    fn parses_division() {
        let e = parse("pi[A](R) - pi[A]((pi[A](R) x S) - R)", &catalog()).unwrap();
        assert_eq!(e.signature(), vec!["R", "R", "S", "R"]);
    }

    #[test]
    fn roundtrips_through_printer() {
        let inputs = [
            "pi[A](R) - pi[A]((pi[A](R) x S) - R)",
            "sigma[B>5](R) join[A=A2] rho[A->A2](T)",
            "R antijoin[B=B] S",
            "R antijoin S",
            "pi[B](R) union S",
            "sigma[A=1 or B=2](R)",
        ];
        for text in inputs {
            let e = parse_unchecked(text).unwrap();
            let printed = to_ascii(&e);
            let e2 = parse_unchecked(&printed).unwrap();
            assert_eq!(e, e2, "round-trip failed for {text}: printed {printed}");
        }
    }

    #[test]
    fn validates_schema() {
        assert!(parse("pi[Z](R)", &catalog()).is_err());
        assert!(parse("R x R", &catalog()).is_err());
        assert!(parse("R - S", &catalog()).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_unchecked("pi[A](R").is_err());
        assert!(parse_unchecked("R ??? S").is_err());
        assert!(parse_unchecked("R - ").is_err());
    }

    #[test]
    fn parses_string_constants_in_selections() {
        let cat = Catalog::from_schemas([TableSchema::new("Boat", ["bid", "color"])]).unwrap();
        let e = parse("sigma[color='red'](Boat)", &cat).unwrap();
        assert_eq!(to_ascii(&e), "sigma[color='red'](Boat)");
    }
}
