//! Fragment membership checks for RA expressions.

use crate::ast::RaExpr;

/// `true` if the expression lies in RA\* (Definition 2): no union operator
/// and all selection conditions are conjunctions of simple predicates.
/// The derived operators θ-join and natural join are permitted (they are
/// definable from `× σ`), as is the rename `ρ` required by the named
/// perspective; the antijoin is **not** (see [`is_ra_star_antijoin`]).
pub fn is_ra_star(e: &RaExpr) -> bool {
    match e {
        RaExpr::Table(_) => true,
        RaExpr::Project(_, inner) | RaExpr::Rename(_, inner) => is_ra_star(inner),
        RaExpr::Select(cond, inner) => cond.is_conjunctive() && is_ra_star(inner),
        RaExpr::Product(l, r)
        | RaExpr::Join(_, l, r)
        | RaExpr::NaturalJoin(l, r)
        | RaExpr::Diff(l, r) => is_ra_star(l) && is_ra_star(r),
        RaExpr::Union(..) | RaExpr::Antijoin(..) => false,
    }
}

/// `true` if the expression lies in RA\*⊲ (Appendix G.1): RA\* extended
/// with the antijoin operator, where antijoin conditions are conjunctions
/// of *equality* predicates (the paper's definition; see also Example 21's
/// remark that "antijoins are only defined for equality conditions").
pub fn is_ra_star_antijoin(e: &RaExpr) -> bool {
    match e {
        RaExpr::Table(_) => true,
        RaExpr::Project(_, inner) | RaExpr::Rename(_, inner) => is_ra_star_antijoin(inner),
        RaExpr::Select(cond, inner) => cond.is_conjunctive() && is_ra_star_antijoin(inner),
        RaExpr::Product(l, r)
        | RaExpr::Join(_, l, r)
        | RaExpr::NaturalJoin(l, r)
        | RaExpr::Diff(l, r) => is_ra_star_antijoin(l) && is_ra_star_antijoin(r),
        RaExpr::Antijoin(cond, l, r) => {
            cond.0.iter().all(|(_, op, _)| *op == rd_core::CmpOp::Eq)
                && is_ra_star_antijoin(l)
                && is_ra_star_antijoin(r)
        }
        RaExpr::Union(..) => false,
    }
}

/// Counts the operators in an expression (used by the bounded enumerator
/// in `rd-pattern` and by benchmarks).
pub fn operator_count(e: &RaExpr) -> usize {
    match e {
        RaExpr::Table(_) => 0,
        RaExpr::Project(_, inner) | RaExpr::Select(_, inner) | RaExpr::Rename(_, inner) => {
            1 + operator_count(inner)
        }
        RaExpr::Product(l, r)
        | RaExpr::Join(_, l, r)
        | RaExpr::NaturalJoin(l, r)
        | RaExpr::Diff(l, r)
        | RaExpr::Union(l, r)
        | RaExpr::Antijoin(_, l, r) => 1 + operator_count(l) + operator_count(r),
    }
}

/// `true` if the condition tree of every selection is conjunctive (helper
/// mirroring [`crate::ast::Condition::is_conjunctive`] over whole expressions).
pub fn selections_conjunctive(e: &RaExpr) -> bool {
    match e {
        RaExpr::Table(_) => true,
        RaExpr::Select(cond, inner) => cond.is_conjunctive() && selections_conjunctive(inner),
        RaExpr::Project(_, inner) | RaExpr::Rename(_, inner) => selections_conjunctive(inner),
        RaExpr::Product(l, r)
        | RaExpr::Join(_, l, r)
        | RaExpr::NaturalJoin(l, r)
        | RaExpr::Diff(l, r)
        | RaExpr::Union(l, r)
        | RaExpr::Antijoin(_, l, r) => selections_conjunctive(l) && selections_conjunctive(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{JoinCond, RaTerm};
    use rd_core::CmpOp;

    #[test]
    fn division_is_ra_star() {
        let e = crate::parser::parse_unchecked("pi[A](R) - pi[A]((pi[A](R) x S) - R)").unwrap();
        assert!(is_ra_star(&e));
        assert!(is_ra_star_antijoin(&e));
        assert_eq!(operator_count(&e), 6);
    }

    #[test]
    fn union_excluded_from_both_fragments() {
        let e = crate::parser::parse_unchecked("pi[B](R) union S").unwrap();
        assert!(!is_ra_star(&e));
        assert!(!is_ra_star_antijoin(&e));
    }

    #[test]
    fn disjunctive_selection_excluded() {
        let e = crate::parser::parse_unchecked("sigma[A=1 or B=2](R)").unwrap();
        assert!(!is_ra_star(&e));
        assert!(!is_ra_star_antijoin(&e));
        assert!(!selections_conjunctive(&e));
    }

    #[test]
    fn antijoin_only_in_extended_fragment() {
        let e = crate::parser::parse_unchecked("R antijoin[B=B] S").unwrap();
        assert!(!is_ra_star(&e));
        assert!(is_ra_star_antijoin(&e));
    }

    #[test]
    fn inequality_antijoin_excluded_even_from_extension() {
        let e = RaExpr::antijoin(
            JoinCond(vec![("A".into(), CmpOp::Lt, "B".into())]),
            RaExpr::table("R"),
            RaExpr::table("S"),
        );
        assert!(!is_ra_star_antijoin(&e));
        let _ = RaTerm::attr("A"); // silence unused-import lint in minimal builds
    }
}
