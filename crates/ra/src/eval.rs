//! RA evaluation as a *lowering* onto the shared plan IR
//! ([`rd_core::exec`]).
//!
//! The expression tree compiles once into an [`exec::OpNode`] operator
//! tree: attribute names are resolved to column indices against the
//! statically inferred per-node layout, string constants are interned
//! against the database, and `Rename` disappears entirely (it only
//! renames the compile-time layout). The shared executor then runs the
//! tree with set semantics — `Join`, `NaturalJoin`, and `Antijoin` hash
//! the right operand on their equality columns and probe it per left
//! tuple, checking any residual (non-equality) conditions on the
//! matching bucket only; selections compare interned ids, never heap
//! strings.

use crate::ast::{Condition, RaExpr, RaTerm};
use rd_core::exec::{self, OpNode, Plan};
use rd_core::{CmpOp, CoreError, CoreResult, Database, TableSchema, Tuple};
use std::collections::BTreeSet;

/// An intermediate (or final) evaluation result: attribute names plus the
/// tuple set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaResult {
    /// Ordered attribute names of the result.
    pub attrs: Vec<String>,
    /// The tuples.
    pub tuples: BTreeSet<Tuple>,
}

fn attr_index(attrs: &[String], name: &str) -> CoreResult<usize> {
    attrs
        .iter()
        .position(|a| a == name)
        .ok_or_else(|| CoreError::Invalid(format!("attribute '{name}' not in {attrs:?}")))
}

fn compile_cond(cond: &Condition, attrs: &[String], db: &Database) -> exec::Cond {
    match cond {
        Condition::Cmp(l, op, r) => {
            exec::Cond::Cmp(compile_term(l, attrs, db), *op, compile_term(r, attrs, db))
        }
        Condition::And(cs) => {
            exec::Cond::And(cs.iter().map(|c| compile_cond(c, attrs, db)).collect())
        }
        Condition::Or(cs) => {
            exec::Cond::Or(cs.iter().map(|c| compile_cond(c, attrs, db)).collect())
        }
    }
}

fn compile_term(term: &RaTerm, attrs: &[String], db: &Database) -> exec::CTerm {
    match term {
        RaTerm::Const(v) => exec::CTerm::Const(db.lookup_value(v)),
        RaTerm::Attr(a) => exec::CTerm::Col(
            attrs
                .iter()
                .position(|x| x == a)
                .expect("validated by schema inference"),
        ),
    }
}

/// Evaluates `expr` over `db`. The catalog is taken from the database
/// itself, so every referenced table must exist in `db`.
pub fn eval(expr: &RaExpr, db: &Database) -> CoreResult<RaResult> {
    let (node, attrs) = compile(expr, db)?;
    let tuples = exec::run_ops(&node, db)?;
    Ok(RaResult { attrs, tuples })
}

/// Lowers `expr` to a complete compiled [`Plan`] whose output schema is
/// the conventional `q(attrs…)`.
pub fn lower(expr: &RaExpr, db: &Database) -> CoreResult<Plan> {
    let (root, attrs) = compile(expr, db)?;
    Ok(Plan::Ops {
        root,
        out: TableSchema::new("q", attrs),
    })
}

/// Compiles the expression tree: validates schemas up front (for clear
/// error messages), then resolves every attribute reference to a column
/// index against the statically known per-node layout.
fn compile(expr: &RaExpr, db: &Database) -> CoreResult<(OpNode, Vec<String>)> {
    let catalog = db.catalog();
    expr.schema(&catalog)?;
    compile_inner(expr, db)
}

fn compile_inner(expr: &RaExpr, db: &Database) -> CoreResult<(OpNode, Vec<String>)> {
    match expr {
        RaExpr::Table(t) => {
            let rel = db.require(t)?;
            Ok((OpNode::Table(t.clone()), rel.schema().attrs().to_vec()))
        }
        RaExpr::Project(attrs, e) => {
            let (input, inner) = compile_inner(e, db)?;
            let cols: Vec<usize> = attrs
                .iter()
                .map(|a| attr_index(&inner, a))
                .collect::<CoreResult<_>>()?;
            Ok((
                OpNode::Project {
                    cols,
                    input: Box::new(input),
                },
                attrs.clone(),
            ))
        }
        RaExpr::Select(cond, e) => {
            let (input, inner) = compile_inner(e, db)?;
            let compiled = compile_cond(cond, &inner, db);
            Ok((
                OpNode::Select {
                    cond: compiled,
                    input: Box::new(input),
                },
                inner,
            ))
        }
        RaExpr::Product(l, r) => {
            let (lo, ls) = compile_inner(l, db)?;
            let (ro, rs) = compile_inner(r, db)?;
            let mut attrs = ls;
            attrs.extend(rs);
            Ok((OpNode::Product(Box::new(lo), Box::new(ro)), attrs))
        }
        RaExpr::Join(cond, l, r) => {
            let (lo, ls) = compile_inner(l, db)?;
            let (ro, rs) = compile_inner(r, db)?;
            let checks: Vec<(usize, CmpOp, usize)> = cond
                .0
                .iter()
                .map(|(la, op, ra)| Ok((attr_index(&ls, la)?, *op, attr_index(&rs, ra)?)))
                .collect::<CoreResult<_>>()?;
            let mut attrs = ls;
            attrs.extend(rs);
            Ok((
                OpNode::Join {
                    checks,
                    left: Box::new(lo),
                    right: Box::new(ro),
                },
                attrs,
            ))
        }
        RaExpr::NaturalJoin(l, r) => {
            let (lo, ls) = compile_inner(l, db)?;
            let (ro, rs) = compile_inner(r, db)?;
            let shared: Vec<(usize, usize)> = rs
                .iter()
                .enumerate()
                .filter_map(|(ri, a)| ls.iter().position(|x| x == a).map(|li| (li, ri)))
                .collect();
            let keep_right: Vec<usize> = (0..rs.len())
                .filter(|ri| !shared.iter().any(|(_, r2)| r2 == ri))
                .collect();
            let mut attrs = ls.clone();
            attrs.extend(keep_right.iter().map(|&ri| rs[ri].clone()));
            let checks: Vec<(usize, CmpOp, usize)> =
                shared.iter().map(|&(li, ri)| (li, CmpOp::Eq, ri)).collect();
            Ok((
                OpNode::NaturalJoin {
                    checks,
                    keep_right,
                    left: Box::new(lo),
                    right: Box::new(ro),
                },
                attrs,
            ))
        }
        RaExpr::Rename(renames, e) => {
            // Pure compile-time: renames touch the layout, not the data.
            let (input, mut attrs) = compile_inner(e, db)?;
            for (from, to) in renames {
                let idx = attr_index(&attrs, from)?;
                attrs[idx] = to.clone();
            }
            Ok((input, attrs))
        }
        RaExpr::Diff(l, r) => {
            let (lo, ls) = compile_inner(l, db)?;
            let (ro, _) = compile_inner(r, db)?;
            Ok((OpNode::Diff(Box::new(lo), Box::new(ro)), ls))
        }
        RaExpr::Union(l, r) => {
            let (lo, ls) = compile_inner(l, db)?;
            let (ro, _) = compile_inner(r, db)?;
            Ok((OpNode::Union(Box::new(lo), Box::new(ro)), ls))
        }
        RaExpr::Antijoin(cond, l, r) => {
            let (lo, ls) = compile_inner(l, db)?;
            let (ro, rs) = compile_inner(r, db)?;
            let checks: Vec<(usize, CmpOp, usize)> = if cond.0.is_empty() {
                // Natural antijoin: equality on all shared attribute names.
                rs.iter()
                    .enumerate()
                    .filter_map(|(ri, a)| {
                        ls.iter().position(|x| x == a).map(|li| (li, CmpOp::Eq, ri))
                    })
                    .collect()
            } else {
                cond.0
                    .iter()
                    .map(|(la, op, ra)| Ok((attr_index(&ls, la)?, *op, attr_index(&rs, ra)?)))
                    .collect::<CoreResult<_>>()?
            };
            Ok((
                OpNode::Antijoin {
                    checks,
                    left: Box::new(lo),
                    right: Box::new(ro),
                },
                ls,
            ))
        }
    }
}

/// Convenience: evaluates an antijoin-free division query used in tests.
pub use self::eval as eval_expr;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::JoinCond;
    use rd_core::{Relation, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db
    }

    fn ints(r: &RaResult) -> Vec<i64> {
        r.tuples
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!("expected int"),
            })
            .collect()
    }

    #[test]
    fn division_via_basic_operators() {
        // π_A R − π_A((π_A R × S) − R): A values paired with ALL S.B values.
        let e = RaExpr::diff(
            RaExpr::project(["A"], RaExpr::table("R")),
            RaExpr::project(
                ["A"],
                RaExpr::diff(
                    RaExpr::product(
                        RaExpr::project(["A"], RaExpr::table("R")),
                        RaExpr::table("S"),
                    ),
                    RaExpr::table("R"),
                ),
            ),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn division_via_antijoins() {
        // π_A R ⊲ π_A((π_A R × S) ⊲ R)   (Example 17)
        let inner = RaExpr::project(
            ["A"],
            RaExpr::antijoin(
                JoinCond(vec![]),
                RaExpr::product(
                    RaExpr::project(["A"], RaExpr::table("R")),
                    RaExpr::table("S"),
                ),
                RaExpr::table("R"),
            ),
        );
        let e = RaExpr::antijoin(
            JoinCond(vec![]),
            RaExpr::project(["A"], RaExpr::table("R")),
            inner,
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn simple_antijoin_matches_not_exists() {
        // R ⊲_{B=B} S = tuples of R whose B is not in S.
        let e = RaExpr::antijoin(
            JoinCond::eq("B", "B"),
            RaExpr::table("R"),
            RaExpr::table("S"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 1);
        assert_eq!(out.tuples.iter().next().unwrap(), &Tuple::new([3i64, 30]));
    }

    #[test]
    fn select_with_disjunction() {
        let e = RaExpr::select(
            Condition::Or(vec![
                Condition::Cmp(RaTerm::attr("B"), CmpOp::Eq, RaTerm::value(30)),
                Condition::Cmp(RaTerm::attr("A"), CmpOp::Eq, RaTerm::value(2)),
            ]),
            RaExpr::table("R"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 2);
    }

    #[test]
    fn natural_join_and_theta_join_agree_on_equality() {
        let nj = RaExpr::natural_join(RaExpr::table("R"), RaExpr::table("S"));
        let tj = RaExpr::project(
            ["A", "B"],
            RaExpr::join(
                JoinCond::eq("B", "B2"),
                RaExpr::table("R"),
                RaExpr::rename([("B", "B2")], RaExpr::table("S")),
            ),
        );
        let a = eval(&nj, &db()).unwrap();
        let b = eval(&tj, &db()).unwrap();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.tuples.len(), 3);
    }

    #[test]
    fn union_dedups() {
        let e = RaExpr::union(
            RaExpr::project(["B"], RaExpr::table("R")),
            RaExpr::table("S"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![10, 20, 30]);
    }

    #[test]
    fn projection_dedups_under_set_semantics() {
        let e = RaExpr::project(["B"], RaExpr::table("R"));
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 3); // 10, 20, 30
    }

    #[test]
    fn theta_join_with_inequality() {
        // Pairs (A, B2) with R.B > S.B2.
        let e = RaExpr::join(
            JoinCond(vec![("B".into(), CmpOp::Gt, "B2".into())]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        // R.B values 10,10,20,30 vs S 10,20: pairs: 20>10, 30>10, 30>20.
        assert_eq!(out.tuples.len(), 3);
    }

    #[test]
    fn mixed_eq_and_inequality_join_uses_residual() {
        // B = B2 && A > B2 — the equality keys the hash, the inequality
        // filters the bucket. Over our data: (B, B2) matches on 10, 10 and
        // 20, 20; A > B2 never holds (A ∈ 1..3), so the join is empty.
        let e = RaExpr::join(
            JoinCond(vec![
                ("B".into(), CmpOp::Eq, "B2".into()),
                ("A".into(), CmpOp::Gt, "B2".into()),
            ]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        assert!(out.tuples.is_empty());
        // Flip the inequality: every hash match qualifies (A < B2).
        let e = RaExpr::join(
            JoinCond(vec![
                ("B".into(), CmpOp::Eq, "B2".into()),
                ("A".into(), CmpOp::Lt, "B2".into()),
            ]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 3);
    }

    #[test]
    fn string_selection_and_order_comparison() {
        let mut d = Database::new();
        d.add_relation(
            Relation::from_rows(
                TableSchema::new("Boat", ["bid", "color"]),
                [
                    vec![Value::int(1), Value::str("zebra")],
                    vec![Value::int(2), Value::str("apple")],
                    vec![Value::int(3), Value::str("red")],
                ],
            )
            .unwrap(),
        );
        let eq = RaExpr::select(
            Condition::Cmp(RaTerm::attr("color"), CmpOp::Eq, RaTerm::value("red")),
            RaExpr::table("Boat"),
        );
        assert_eq!(ints(&eval(&eq, &d).unwrap()), vec![3]);
        // Lexicographic, not id, order: only 'apple' < 'red'.
        let lt = RaExpr::select(
            Condition::Cmp(RaTerm::attr("color"), CmpOp::Lt, RaTerm::value("red")),
            RaExpr::table("Boat"),
        );
        assert_eq!(ints(&eval(&lt, &d).unwrap()), vec![2]);
    }

    #[test]
    fn eval_missing_table_errors() {
        let e = RaExpr::table("Nope");
        assert!(eval(&e, &db()).is_err());
    }

    #[test]
    fn lowered_plan_executes_like_eval() {
        let d = db();
        let e = RaExpr::project(
            ["A"],
            RaExpr::natural_join(RaExpr::table("R"), RaExpr::table("S")),
        );
        let plan = lower(&e, &d).unwrap();
        let rel = exec::execute(&plan, &d).unwrap();
        let direct = eval(&e, &d).unwrap();
        assert_eq!(rel.tuples(), &direct.tuples);
        assert_eq!(rel.schema().attrs(), ["A"]);
    }
}
