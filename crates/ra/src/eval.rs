//! Evaluation of RA expressions over a database (set semantics).
//!
//! Joins are *join-aware* rather than nested-loop: `Join`, `NaturalJoin`,
//! and `Antijoin` hash the right operand on their equality columns
//! ([`rd_core::plan::build_index`]) and probe it per left tuple, checking
//! any residual (non-equality) conditions on the matching bucket only.
//! Selection conditions are compiled once per node — attribute names
//! resolved to column indices, string constants interned against the
//! database — so the per-tuple loop compares ids, never heap strings.

use crate::ast::{Condition, RaExpr, RaTerm};
use rd_core::{plan, CmpOp, CoreError, CoreResult, Database, SymbolTable, Tuple, Value};
use std::collections::{BTreeSet, HashSet};

/// An intermediate (or final) evaluation result: attribute names plus the
/// tuple set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaResult {
    /// Ordered attribute names of the result.
    pub attrs: Vec<String>,
    /// The tuples.
    pub tuples: BTreeSet<Tuple>,
}

impl RaResult {
    fn attr_index(&self, name: &str) -> CoreResult<usize> {
        self.attrs.iter().position(|a| a == name).ok_or_else(|| {
            CoreError::Invalid(format!("attribute '{name}' not in {:?}", self.attrs))
        })
    }
}

/// A selection condition compiled against a fixed attribute layout.
enum CCond {
    Cmp(CTerm, CmpOp, CTerm),
    And(Vec<CCond>),
    Or(Vec<CCond>),
}

enum CTerm {
    Const(Value),
    Col(usize),
}

fn compile_cond(cond: &Condition, attrs: &[String], db: &Database) -> CCond {
    match cond {
        Condition::Cmp(l, op, r) => {
            CCond::Cmp(compile_term(l, attrs, db), *op, compile_term(r, attrs, db))
        }
        Condition::And(cs) => CCond::And(cs.iter().map(|c| compile_cond(c, attrs, db)).collect()),
        Condition::Or(cs) => CCond::Or(cs.iter().map(|c| compile_cond(c, attrs, db)).collect()),
    }
}

fn compile_term(term: &RaTerm, attrs: &[String], db: &Database) -> CTerm {
    match term {
        RaTerm::Const(v) => CTerm::Const(db.lookup_value(v)),
        RaTerm::Attr(a) => CTerm::Col(
            attrs
                .iter()
                .position(|x| x == a)
                .expect("validated by schema inference"),
        ),
    }
}

fn eval_ccond(cond: &CCond, tuple: &Tuple, symbols: &SymbolTable) -> bool {
    match cond {
        CCond::Cmp(l, op, r) => {
            let lv = match l {
                CTerm::Const(v) => v,
                CTerm::Col(i) => tuple.get(*i),
            };
            let rv = match r {
                CTerm::Const(v) => v,
                CTerm::Col(i) => tuple.get(*i),
            };
            op.eval_resolved(lv, rv, symbols)
        }
        CCond::And(cs) => cs.iter().all(|c| eval_ccond(c, tuple, symbols)),
        CCond::Or(cs) => cs.iter().any(|c| eval_ccond(c, tuple, symbols)),
    }
}

/// Evaluates `expr` over `db`. The catalog is taken from the database
/// itself, so every referenced table must exist in `db`.
pub fn eval(expr: &RaExpr, db: &Database) -> CoreResult<RaResult> {
    let catalog = db.catalog();
    // Validate schemas up front for clear error messages.
    expr.schema(&catalog)?;
    eval_inner(expr, db)
}

/// Splits theta-join checks into hashable equalities and a residual, then
/// probes `rv` per left tuple. `joiner` receives each matching pair.
fn hash_join_pairs<'t>(
    lv: &'t RaResult,
    rv: &'t RaResult,
    checks: &[(usize, CmpOp, usize)],
    symbols: &SymbolTable,
    mut joiner: impl FnMut(&'t Tuple, &'t Tuple),
) {
    let eq: Vec<&(usize, CmpOp, usize)> = checks
        .iter()
        .filter(|(_, op, _)| *op == CmpOp::Eq)
        .collect();
    let residual: Vec<&(usize, CmpOp, usize)> = checks
        .iter()
        .filter(|(_, op, _)| *op != CmpOp::Eq)
        .collect();
    if eq.is_empty() {
        // No equality to key on: nested loop.
        for lt in &lv.tuples {
            for rt in &rv.tuples {
                if checks
                    .iter()
                    .all(|(li, op, ri)| op.eval_resolved(lt.get(*li), rt.get(*ri), symbols))
                {
                    joiner(lt, rt);
                }
            }
        }
        return;
    }
    let right_cols: Vec<usize> = eq.iter().map(|(_, _, ri)| *ri).collect();
    let left_cols: Vec<usize> = eq.iter().map(|(li, _, _)| *li).collect();
    let index = plan::build_index(rv.tuples.iter(), &right_cols);
    let mut key: Vec<Value> = Vec::with_capacity(left_cols.len());
    for lt in &lv.tuples {
        key.clear();
        key.extend(left_cols.iter().map(|&c| lt.get(c).clone()));
        if let Some(bucket) = index.get(key.as_slice()) {
            for &rt in bucket {
                if residual
                    .iter()
                    .all(|(li, op, ri)| op.eval_resolved(lt.get(*li), rt.get(*ri), symbols))
                {
                    joiner(lt, rt);
                }
            }
        }
    }
}

fn eval_inner(expr: &RaExpr, db: &Database) -> CoreResult<RaResult> {
    let symbols = db.symbols();
    match expr {
        RaExpr::Table(t) => {
            let rel = db.require(t)?;
            Ok(RaResult {
                attrs: rel.schema().attrs().to_vec(),
                tuples: rel.tuples().clone(),
            })
        }
        RaExpr::Project(attrs, e) => {
            let inner = eval_inner(e, db)?;
            let idx: Vec<usize> = attrs
                .iter()
                .map(|a| inner.attr_index(a))
                .collect::<CoreResult<_>>()?;
            Ok(RaResult {
                attrs: attrs.clone(),
                tuples: inner.tuples.iter().map(|t| t.project(&idx)).collect(),
            })
        }
        RaExpr::Select(cond, e) => {
            let inner = eval_inner(e, db)?;
            let compiled = compile_cond(cond, &inner.attrs, db);
            let tuples = inner
                .tuples
                .iter()
                .filter(|t| eval_ccond(&compiled, t, symbols))
                .cloned()
                .collect();
            Ok(RaResult {
                attrs: inner.attrs,
                tuples,
            })
        }
        RaExpr::Product(l, r) => {
            let lv = eval_inner(l, db)?;
            let rv = eval_inner(r, db)?;
            let mut attrs = lv.attrs.clone();
            attrs.extend(rv.attrs.clone());
            let mut tuples = BTreeSet::new();
            for lt in &lv.tuples {
                for rt in &rv.tuples {
                    tuples.insert(lt.concat(rt));
                }
            }
            Ok(RaResult { attrs, tuples })
        }
        RaExpr::Join(cond, l, r) => {
            let lv = eval_inner(l, db)?;
            let rv = eval_inner(r, db)?;
            let mut attrs = lv.attrs.clone();
            attrs.extend(rv.attrs.clone());
            let checks: Vec<(usize, CmpOp, usize)> = cond
                .0
                .iter()
                .map(|(la, op, ra)| Ok((lv.attr_index(la)?, *op, rv.attr_index(ra)?)))
                .collect::<CoreResult<_>>()?;
            let mut tuples = BTreeSet::new();
            hash_join_pairs(&lv, &rv, &checks, symbols, |lt, rt| {
                tuples.insert(lt.concat(rt));
            });
            Ok(RaResult { attrs, tuples })
        }
        RaExpr::NaturalJoin(l, r) => {
            let lv = eval_inner(l, db)?;
            let rv = eval_inner(r, db)?;
            let shared: Vec<(usize, usize)> = rv
                .attrs
                .iter()
                .enumerate()
                .filter_map(|(ri, a)| lv.attrs.iter().position(|x| x == a).map(|li| (li, ri)))
                .collect();
            let keep_right: Vec<usize> = (0..rv.attrs.len())
                .filter(|ri| !shared.iter().any(|(_, r2)| r2 == ri))
                .collect();
            let mut attrs = lv.attrs.clone();
            attrs.extend(keep_right.iter().map(|&ri| rv.attrs[ri].clone()));
            let checks: Vec<(usize, CmpOp, usize)> =
                shared.iter().map(|&(li, ri)| (li, CmpOp::Eq, ri)).collect();
            let mut tuples = BTreeSet::new();
            hash_join_pairs(&lv, &rv, &checks, symbols, |lt, rt| {
                let mut row = lt.0.clone();
                row.extend(keep_right.iter().map(|&ri| rt.get(ri).clone()));
                tuples.insert(Tuple(row));
            });
            Ok(RaResult { attrs, tuples })
        }
        RaExpr::Rename(renames, e) => {
            let mut inner = eval_inner(e, db)?;
            for (from, to) in renames {
                let idx = inner.attr_index(from)?;
                inner.attrs[idx] = to.clone();
            }
            Ok(inner)
        }
        RaExpr::Diff(l, r) => {
            let lv = eval_inner(l, db)?;
            let rv = eval_inner(r, db)?;
            let tuples = lv.tuples.difference(&rv.tuples).cloned().collect();
            Ok(RaResult {
                attrs: lv.attrs,
                tuples,
            })
        }
        RaExpr::Union(l, r) => {
            let lv = eval_inner(l, db)?;
            let rv = eval_inner(r, db)?;
            let tuples = lv.tuples.union(&rv.tuples).cloned().collect();
            Ok(RaResult {
                attrs: lv.attrs,
                tuples,
            })
        }
        RaExpr::Antijoin(cond, l, r) => {
            let lv = eval_inner(l, db)?;
            let rv = eval_inner(r, db)?;
            let checks: Vec<(usize, CmpOp, usize)> = if cond.0.is_empty() {
                // Natural antijoin: equality on all shared attribute names.
                rv.attrs
                    .iter()
                    .enumerate()
                    .filter_map(|(ri, a)| {
                        lv.attrs
                            .iter()
                            .position(|x| x == a)
                            .map(|li| (li, CmpOp::Eq, ri))
                    })
                    .collect()
            } else {
                cond.0
                    .iter()
                    .map(|(la, op, ra)| Ok((lv.attr_index(la)?, *op, rv.attr_index(ra)?)))
                    .collect::<CoreResult<_>>()?
            };
            // The antijoin is the join's complement: collect the left
            // tuples with at least one qualifying pair (same keyed path
            // as Join/NaturalJoin), keep the rest.
            let mut matched: HashSet<&Tuple> = HashSet::new();
            hash_join_pairs(&lv, &rv, &checks, symbols, |lt, _| {
                matched.insert(lt);
            });
            let tuples = lv
                .tuples
                .iter()
                .filter(|lt| !matched.contains(*lt))
                .cloned()
                .collect();
            Ok(RaResult {
                attrs: lv.attrs,
                tuples,
            })
        }
    }
}

/// Convenience: evaluates an antijoin-free division query used in tests.
pub use self::eval as eval_expr;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::JoinCond;
    use rd_core::{Relation, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db
    }

    fn ints(r: &RaResult) -> Vec<i64> {
        r.tuples
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!("expected int"),
            })
            .collect()
    }

    #[test]
    fn division_via_basic_operators() {
        // π_A R − π_A((π_A R × S) − R): A values paired with ALL S.B values.
        let e = RaExpr::diff(
            RaExpr::project(["A"], RaExpr::table("R")),
            RaExpr::project(
                ["A"],
                RaExpr::diff(
                    RaExpr::product(
                        RaExpr::project(["A"], RaExpr::table("R")),
                        RaExpr::table("S"),
                    ),
                    RaExpr::table("R"),
                ),
            ),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn division_via_antijoins() {
        // π_A R ⊲ π_A((π_A R × S) ⊲ R)   (Example 17)
        let inner = RaExpr::project(
            ["A"],
            RaExpr::antijoin(
                JoinCond(vec![]),
                RaExpr::product(
                    RaExpr::project(["A"], RaExpr::table("R")),
                    RaExpr::table("S"),
                ),
                RaExpr::table("R"),
            ),
        );
        let e = RaExpr::antijoin(
            JoinCond(vec![]),
            RaExpr::project(["A"], RaExpr::table("R")),
            inner,
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn simple_antijoin_matches_not_exists() {
        // R ⊲_{B=B} S = tuples of R whose B is not in S.
        let e = RaExpr::antijoin(
            JoinCond::eq("B", "B"),
            RaExpr::table("R"),
            RaExpr::table("S"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 1);
        assert_eq!(out.tuples.iter().next().unwrap(), &Tuple::new([3i64, 30]));
    }

    #[test]
    fn select_with_disjunction() {
        let e = RaExpr::select(
            Condition::Or(vec![
                Condition::Cmp(RaTerm::attr("B"), CmpOp::Eq, RaTerm::value(30)),
                Condition::Cmp(RaTerm::attr("A"), CmpOp::Eq, RaTerm::value(2)),
            ]),
            RaExpr::table("R"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 2);
    }

    #[test]
    fn natural_join_and_theta_join_agree_on_equality() {
        let nj = RaExpr::natural_join(RaExpr::table("R"), RaExpr::table("S"));
        let tj = RaExpr::project(
            ["A", "B"],
            RaExpr::join(
                JoinCond::eq("B", "B2"),
                RaExpr::table("R"),
                RaExpr::rename([("B", "B2")], RaExpr::table("S")),
            ),
        );
        let a = eval(&nj, &db()).unwrap();
        let b = eval(&tj, &db()).unwrap();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.tuples.len(), 3);
    }

    #[test]
    fn union_dedups() {
        let e = RaExpr::union(
            RaExpr::project(["B"], RaExpr::table("R")),
            RaExpr::table("S"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![10, 20, 30]);
    }

    #[test]
    fn projection_dedups_under_set_semantics() {
        let e = RaExpr::project(["B"], RaExpr::table("R"));
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 3); // 10, 20, 30
    }

    #[test]
    fn theta_join_with_inequality() {
        // Pairs (A, B2) with R.B > S.B2.
        let e = RaExpr::join(
            JoinCond(vec![("B".into(), CmpOp::Gt, "B2".into())]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        // R.B values 10,10,20,30 vs S 10,20: pairs: 20>10, 30>10, 30>20.
        assert_eq!(out.tuples.len(), 3);
    }

    #[test]
    fn mixed_eq_and_inequality_join_uses_residual() {
        // B = B2 && A > B2 — the equality keys the hash, the inequality
        // filters the bucket. Over our data: (B, B2) matches on 10, 10 and
        // 20, 20; A > B2 never holds (A ∈ 1..3), so the join is empty.
        let e = RaExpr::join(
            JoinCond(vec![
                ("B".into(), CmpOp::Eq, "B2".into()),
                ("A".into(), CmpOp::Gt, "B2".into()),
            ]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        assert!(out.tuples.is_empty());
        // Flip the inequality: every hash match qualifies (A < B2).
        let e = RaExpr::join(
            JoinCond(vec![
                ("B".into(), CmpOp::Eq, "B2".into()),
                ("A".into(), CmpOp::Lt, "B2".into()),
            ]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 3);
    }

    #[test]
    fn string_selection_and_order_comparison() {
        let mut d = Database::new();
        d.add_relation(
            Relation::from_rows(
                TableSchema::new("Boat", ["bid", "color"]),
                [
                    vec![Value::int(1), Value::str("zebra")],
                    vec![Value::int(2), Value::str("apple")],
                    vec![Value::int(3), Value::str("red")],
                ],
            )
            .unwrap(),
        );
        let eq = RaExpr::select(
            Condition::Cmp(RaTerm::attr("color"), CmpOp::Eq, RaTerm::value("red")),
            RaExpr::table("Boat"),
        );
        assert_eq!(ints(&eval(&eq, &d).unwrap()), vec![3]);
        // Lexicographic, not id, order: only 'apple' < 'red'.
        let lt = RaExpr::select(
            Condition::Cmp(RaTerm::attr("color"), CmpOp::Lt, RaTerm::value("red")),
            RaExpr::table("Boat"),
        );
        assert_eq!(ints(&eval(&lt, &d).unwrap()), vec![2]);
    }

    #[test]
    fn eval_missing_table_errors() {
        let e = RaExpr::table("Nope");
        assert!(eval(&e, &db()).is_err());
    }
}
