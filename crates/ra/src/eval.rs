//! RA evaluation as a *lowering* onto the shared plan IR
//! ([`rd_core::exec`]).
//!
//! The expression tree compiles once into an [`exec::OpNode`] operator
//! tree: attribute names are resolved to column indices against the
//! statically inferred per-node layout, string constants are interned
//! against the database, and `Rename` disappears entirely (it only
//! renames the compile-time layout). The shared executor then runs the
//! tree with set semantics — `Join`, `NaturalJoin`, and `Antijoin` hash
//! the right operand on their equality columns and probe it per left
//! tuple, checking any residual (non-equality) conditions on the
//! matching bucket only; selections compare interned ids, never heap
//! strings.

use crate::ast::{Condition, RaExpr, RaTerm};
use rd_core::exec::{self, OpNode, Plan};
use rd_core::plan::{DbStats, OrderStrategy, PlanHints, PlannerOpts};
use rd_core::{CmpOp, CoreError, CoreResult, Database, TableSchema, Tuple};
use std::collections::BTreeSet;

/// An intermediate (or final) evaluation result: attribute names plus the
/// tuple set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaResult {
    /// Ordered attribute names of the result.
    pub attrs: Vec<String>,
    /// The tuples.
    pub tuples: BTreeSet<Tuple>,
}

fn attr_index(attrs: &[String], name: &str) -> CoreResult<usize> {
    attrs
        .iter()
        .position(|a| a == name)
        .ok_or_else(|| CoreError::Invalid(format!("attribute '{name}' not in {attrs:?}")))
}

fn compile_cond(cond: &Condition, attrs: &[String], db: &Database) -> exec::Cond {
    match cond {
        Condition::Cmp(l, op, r) => {
            exec::Cond::Cmp(compile_term(l, attrs, db), *op, compile_term(r, attrs, db))
        }
        Condition::And(cs) => {
            exec::Cond::And(cs.iter().map(|c| compile_cond(c, attrs, db)).collect())
        }
        Condition::Or(cs) => {
            exec::Cond::Or(cs.iter().map(|c| compile_cond(c, attrs, db)).collect())
        }
    }
}

fn compile_term(term: &RaTerm, attrs: &[String], db: &Database) -> exec::CTerm {
    match term {
        RaTerm::Const(v) => exec::CTerm::Const(db.lookup_value(v)),
        RaTerm::Attr(a) => exec::CTerm::Col(
            attrs
                .iter()
                .position(|x| x == a)
                .expect("validated by schema inference"),
        ),
    }
}

/// Evaluates `expr` over `db`. The catalog is taken from the database
/// itself, so every referenced table must exist in `db`.
pub fn eval(expr: &RaExpr, db: &Database) -> CoreResult<RaResult> {
    let (node, attrs) = compile(expr, db)?;
    let tuples = exec::run_ops(&node, db)?;
    Ok(RaResult { attrs, tuples })
}

/// Lowers `expr` to a complete compiled [`Plan`] whose output schema is
/// the conventional `q(attrs…)`.
pub fn lower(expr: &RaExpr, db: &Database) -> CoreResult<Plan> {
    lower_with(expr, db, &PlannerOpts::default(), &PlanHints::default())
}

/// Like [`lower`], but with explicit planner options and cardinality
/// hints (actual row counts fed back from prior executions).
pub fn lower_with(
    expr: &RaExpr,
    db: &Database,
    opts: &PlannerOpts,
    hints: &PlanHints,
) -> CoreResult<Plan> {
    let (root, attrs) = compile_with(expr, db, opts, hints)?;
    Ok(Plan::Ops {
        root,
        out: TableSchema::new("q", attrs),
    })
}

/// Compiles the expression tree: validates schemas up front (for clear
/// error messages), then resolves every attribute reference to a column
/// index against the statically known per-node layout.
fn compile(expr: &RaExpr, db: &Database) -> CoreResult<(OpNode, Vec<String>)> {
    compile_with(expr, db, &PlannerOpts::default(), &PlanHints::default())
}

fn compile_with(
    expr: &RaExpr,
    db: &Database,
    opts: &PlannerOpts,
    hints: &PlanHints,
) -> CoreResult<(OpNode, Vec<String>)> {
    let catalog = db.catalog();
    expr.schema(&catalog)?;
    let mut stats = DbStats::of(db);
    stats.apply_hints(hints);
    let cx = Cx {
        db,
        stats,
        cost: opts.strategy == OrderStrategy::CostDp,
    };
    compile_inner(expr, &cx)
}

/// Compile context: the database (for interning and schema lookup) plus
/// the statistics snapshot driving build-side selection.
struct Cx<'a> {
    db: &'a Database,
    stats: DbStats,
    /// `false` under [`OrderStrategy::Greedy`]: joins keep their written
    /// operand order, preserving the legacy baseline for differential
    /// tests.
    cost: bool,
}

/// Resolves `attr` in `expr`'s output down to a base-table column, seeing
/// through projections, selections, and renames. `None` when the attr
/// sits above a join/product/union (its provenance is ambiguous there for
/// our purposes — the per-table sketches stop applying cleanly).
fn resolve_col(expr: &RaExpr, attr: &str, db: &Database) -> Option<(String, usize)> {
    match expr {
        RaExpr::Table(t) => {
            let rel = db.require(t).ok()?;
            let col = rel.schema().attrs().iter().position(|a| a == attr)?;
            Some((t.clone(), col))
        }
        RaExpr::Select(_, e) | RaExpr::Project(_, e) => resolve_col(e, attr, db),
        RaExpr::Rename(renames, e) => {
            // Map the post-rename name back to the pre-rename one.
            let orig = renames
                .iter()
                .find(|(_, to)| to == attr)
                .map(|(from, _)| from.as_str())
                .unwrap_or(attr);
            resolve_col(e, orig, db)
        }
        _ => None,
    }
}

/// Estimated selectivity of a compiled-form condition against `input`.
fn cond_selectivity(cond: &Condition, input: &RaExpr, cx: &Cx) -> f64 {
    match cond {
        Condition::Cmp(l, op, r) => {
            // Attr-vs-const comparisons consult the column statistics of
            // the underlying base table when the attr resolves to one.
            let resolved = match (l, r) {
                (RaTerm::Attr(a), RaTerm::Const(v)) => Some((a, *op, v)),
                (RaTerm::Const(v), RaTerm::Attr(a)) => Some((a, op.flipped(), v)),
                _ => None,
            };
            match resolved {
                Some((a, op, v)) => match resolve_col(input, a, cx.db) {
                    Some((table, col)) => cx.stats.cmp_selectivity(&table, col, op, v),
                    None => match op {
                        CmpOp::Eq => 0.1,
                        CmpOp::Ne => 0.9,
                        _ => 1.0 / 3.0,
                    },
                },
                // Attr-vs-attr (or const-vs-const) within one row.
                None => match op {
                    CmpOp::Eq => 0.1,
                    CmpOp::Ne => 0.9,
                    _ => 1.0 / 3.0,
                },
            }
        }
        Condition::And(cs) => cs.iter().map(|c| cond_selectivity(c, input, cx)).product(),
        Condition::Or(cs) => cs
            .iter()
            .map(|c| cond_selectivity(c, input, cx))
            .sum::<f64>()
            .min(1.0),
    }
}

/// Estimated output cardinality of `expr`. Base tables read real sizes
/// (respecting hint overrides); joins use the System-R style
/// `|L|·|R| / max(V(L.a), V(R.b))` over the first equality pair when the
/// columns resolve to base tables, else the containment bound `min(L, R)`.
fn est_rows(expr: &RaExpr, cx: &Cx) -> f64 {
    match expr {
        RaExpr::Table(t) => cx.stats.size(t) as f64,
        RaExpr::Project(_, e) | RaExpr::Rename(_, e) => est_rows(e, cx),
        RaExpr::Select(cond, e) => est_rows(e, cx) * cond_selectivity(cond, e, cx),
        RaExpr::Product(l, r) => est_rows(l, cx) * est_rows(r, cx),
        RaExpr::Join(cond, l, r) => {
            let (el, er) = (est_rows(l, cx), est_rows(r, cx));
            let eq = cond
                .0
                .iter()
                .find(|(_, op, _)| *op == CmpOp::Eq)
                .map(|(la, _, ra)| (la, ra));
            match eq {
                Some((la, ra)) => {
                    let v = join_key_distinct(l, la, el, cx).max(join_key_distinct(r, ra, er, cx));
                    el * er / v.max(1.0)
                }
                None if cond.0.is_empty() => el * er,
                None => el * er / 3.0,
            }
        }
        RaExpr::NaturalJoin(l, r) => {
            let (el, er) = (est_rows(l, cx), est_rows(r, cx));
            // Equality on shared attrs: containment bound without having
            // to enumerate them here.
            (el * er / el.max(er).max(1.0)).max(el.min(er).min(1.0))
        }
        RaExpr::Diff(l, _) => est_rows(l, cx),
        RaExpr::Union(l, r) => est_rows(l, cx) + est_rows(r, cx),
        RaExpr::Antijoin(_, l, _) => est_rows(l, cx) * 0.5,
    }
}

/// Distinct count of a join-key attribute, falling back to the child's
/// own cardinality (every row distinct) when the column doesn't resolve
/// to a base table.
fn join_key_distinct(child: &RaExpr, attr: &str, child_rows: f64, cx: &Cx) -> f64 {
    match resolve_col(child, attr, cx.db) {
        Some((table, col)) => cx.stats.distinct(&table, col),
        None => child_rows,
    }
}

fn compile_inner(expr: &RaExpr, cx: &Cx) -> CoreResult<(OpNode, Vec<String>)> {
    let db = cx.db;
    match expr {
        RaExpr::Table(t) => {
            let rel = db.require(t)?;
            Ok((OpNode::Table(t.clone()), rel.schema().attrs().to_vec()))
        }
        RaExpr::Project(attrs, e) => {
            let (input, inner) = compile_inner(e, cx)?;
            let cols: Vec<usize> = attrs
                .iter()
                .map(|a| attr_index(&inner, a))
                .collect::<CoreResult<_>>()?;
            Ok((
                OpNode::Project {
                    cols,
                    input: Box::new(input),
                },
                attrs.clone(),
            ))
        }
        RaExpr::Select(cond, e) => {
            let (input, inner) = compile_inner(e, cx)?;
            let compiled = compile_cond(cond, &inner, db);
            Ok((
                OpNode::Select {
                    cond: compiled,
                    input: Box::new(input),
                },
                inner,
            ))
        }
        RaExpr::Product(l, r) => {
            let (lo, ls) = compile_inner(l, cx)?;
            let (ro, rs) = compile_inner(r, cx)?;
            let mut attrs = ls;
            attrs.extend(rs);
            Ok((OpNode::Product(Box::new(lo), Box::new(ro)), attrs))
        }
        RaExpr::Join(cond, l, r) => {
            // The executor hashes the RIGHT operand and probes per left
            // tuple; build the hash on the estimated-smaller side. A
            // swapped join emits columns in (rs, ls) order, so wrap it in
            // a permuting Project restoring the written (ls, rs) layout.
            let swap = cx.cost && est_rows(r, cx) > est_rows(l, cx);
            let (lo, ls) = compile_inner(l, cx)?;
            let (ro, rs) = compile_inner(r, cx)?;
            let mut attrs = ls.clone();
            attrs.extend(rs.clone());
            if swap {
                let checks: Vec<(usize, CmpOp, usize)> = cond
                    .0
                    .iter()
                    .map(|(la, op, ra)| {
                        Ok((attr_index(&rs, ra)?, op.flipped(), attr_index(&ls, la)?))
                    })
                    .collect::<CoreResult<_>>()?;
                let cols: Vec<usize> = (rs.len()..rs.len() + ls.len()).chain(0..rs.len()).collect();
                Ok((
                    OpNode::Project {
                        cols,
                        input: Box::new(OpNode::Join {
                            checks,
                            left: Box::new(ro),
                            right: Box::new(lo),
                        }),
                    },
                    attrs,
                ))
            } else {
                let checks: Vec<(usize, CmpOp, usize)> = cond
                    .0
                    .iter()
                    .map(|(la, op, ra)| Ok((attr_index(&ls, la)?, *op, attr_index(&rs, ra)?)))
                    .collect::<CoreResult<_>>()?;
                Ok((
                    OpNode::Join {
                        checks,
                        left: Box::new(lo),
                        right: Box::new(ro),
                    },
                    attrs,
                ))
            }
        }
        RaExpr::NaturalJoin(l, r) => {
            // Same build-side selection as Join. A swapped node keeps the
            // shared attrs from the written-left side (equal values by
            // definition of the join, but sitting in probe-side columns),
            // so projecting by name restores the conventional layout.
            let swap = cx.cost && est_rows(r, cx) > est_rows(l, cx);
            let (lo, ls) = compile_inner(l, cx)?;
            let (ro, rs) = compile_inner(r, cx)?;
            // `po/ps` is the probe (node-left) operand, `bo/bs` the
            // hash-build (node-right) operand.
            let (po, ps, bo, bs) = if swap {
                (ro, rs, lo, ls.clone())
            } else {
                (lo, ls.clone(), ro, rs)
            };
            let shared: Vec<(usize, usize)> = bs
                .iter()
                .enumerate()
                .filter_map(|(bi, a)| ps.iter().position(|x| x == a).map(|pi| (pi, bi)))
                .collect();
            let keep_right: Vec<usize> = (0..bs.len())
                .filter(|bi| !shared.iter().any(|(_, b2)| b2 == bi))
                .collect();
            let mut node_attrs = ps.clone();
            node_attrs.extend(keep_right.iter().map(|&bi| bs[bi].clone()));
            let checks: Vec<(usize, CmpOp, usize)> =
                shared.iter().map(|&(pi, bi)| (pi, CmpOp::Eq, bi)).collect();
            let node = OpNode::NaturalJoin {
                checks,
                keep_right,
                left: Box::new(po),
                right: Box::new(bo),
            };
            if swap {
                // Conventional layout: written-left attrs, then the
                // written-right attrs absent from the left. Every name
                // occurs exactly once in `node_attrs` (it's the same
                // attr union), so by-name projection is well-defined.
                let mut attrs = ls.clone();
                attrs.extend(ps.iter().filter(|a| !ls.contains(a)).cloned());
                let cols: Vec<usize> = attrs
                    .iter()
                    .map(|a| attr_index(&node_attrs, a))
                    .collect::<CoreResult<_>>()?;
                Ok((
                    OpNode::Project {
                        cols,
                        input: Box::new(node),
                    },
                    attrs,
                ))
            } else {
                Ok((node, node_attrs))
            }
        }
        RaExpr::Rename(renames, e) => {
            // Pure compile-time: renames touch the layout, not the data.
            let (input, mut attrs) = compile_inner(e, cx)?;
            for (from, to) in renames {
                let idx = attr_index(&attrs, from)?;
                attrs[idx] = to.clone();
            }
            Ok((input, attrs))
        }
        RaExpr::Diff(l, r) => {
            let (lo, ls) = compile_inner(l, cx)?;
            let (ro, _) = compile_inner(r, cx)?;
            Ok((OpNode::Diff(Box::new(lo), Box::new(ro)), ls))
        }
        RaExpr::Union(l, r) => {
            let (lo, ls) = compile_inner(l, cx)?;
            let (ro, _) = compile_inner(r, cx)?;
            Ok((OpNode::Union(Box::new(lo), Box::new(ro)), ls))
        }
        RaExpr::Antijoin(cond, l, r) => {
            let (lo, ls) = compile_inner(l, cx)?;
            let (ro, rs) = compile_inner(r, cx)?;
            let checks: Vec<(usize, CmpOp, usize)> = if cond.0.is_empty() {
                // Natural antijoin: equality on all shared attribute names.
                rs.iter()
                    .enumerate()
                    .filter_map(|(ri, a)| {
                        ls.iter().position(|x| x == a).map(|li| (li, CmpOp::Eq, ri))
                    })
                    .collect()
            } else {
                cond.0
                    .iter()
                    .map(|(la, op, ra)| Ok((attr_index(&ls, la)?, *op, attr_index(&rs, ra)?)))
                    .collect::<CoreResult<_>>()?
            };
            Ok((
                OpNode::Antijoin {
                    checks,
                    left: Box::new(lo),
                    right: Box::new(ro),
                },
                ls,
            ))
        }
    }
}

/// Convenience: evaluates an antijoin-free division query used in tests.
pub use self::eval as eval_expr;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::JoinCond;
    use rd_core::{Relation, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db
    }

    fn ints(r: &RaResult) -> Vec<i64> {
        r.tuples
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!("expected int"),
            })
            .collect()
    }

    #[test]
    fn division_via_basic_operators() {
        // π_A R − π_A((π_A R × S) − R): A values paired with ALL S.B values.
        let e = RaExpr::diff(
            RaExpr::project(["A"], RaExpr::table("R")),
            RaExpr::project(
                ["A"],
                RaExpr::diff(
                    RaExpr::product(
                        RaExpr::project(["A"], RaExpr::table("R")),
                        RaExpr::table("S"),
                    ),
                    RaExpr::table("R"),
                ),
            ),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn division_via_antijoins() {
        // π_A R ⊲ π_A((π_A R × S) ⊲ R)   (Example 17)
        let inner = RaExpr::project(
            ["A"],
            RaExpr::antijoin(
                JoinCond(vec![]),
                RaExpr::product(
                    RaExpr::project(["A"], RaExpr::table("R")),
                    RaExpr::table("S"),
                ),
                RaExpr::table("R"),
            ),
        );
        let e = RaExpr::antijoin(
            JoinCond(vec![]),
            RaExpr::project(["A"], RaExpr::table("R")),
            inner,
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn simple_antijoin_matches_not_exists() {
        // R ⊲_{B=B} S = tuples of R whose B is not in S.
        let e = RaExpr::antijoin(
            JoinCond::eq("B", "B"),
            RaExpr::table("R"),
            RaExpr::table("S"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 1);
        assert_eq!(out.tuples.iter().next().unwrap(), &Tuple::new([3i64, 30]));
    }

    #[test]
    fn select_with_disjunction() {
        let e = RaExpr::select(
            Condition::Or(vec![
                Condition::Cmp(RaTerm::attr("B"), CmpOp::Eq, RaTerm::value(30)),
                Condition::Cmp(RaTerm::attr("A"), CmpOp::Eq, RaTerm::value(2)),
            ]),
            RaExpr::table("R"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 2);
    }

    #[test]
    fn natural_join_and_theta_join_agree_on_equality() {
        let nj = RaExpr::natural_join(RaExpr::table("R"), RaExpr::table("S"));
        let tj = RaExpr::project(
            ["A", "B"],
            RaExpr::join(
                JoinCond::eq("B", "B2"),
                RaExpr::table("R"),
                RaExpr::rename([("B", "B2")], RaExpr::table("S")),
            ),
        );
        let a = eval(&nj, &db()).unwrap();
        let b = eval(&tj, &db()).unwrap();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.tuples.len(), 3);
    }

    #[test]
    fn union_dedups() {
        let e = RaExpr::union(
            RaExpr::project(["B"], RaExpr::table("R")),
            RaExpr::table("S"),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(ints(&out), vec![10, 20, 30]);
    }

    #[test]
    fn projection_dedups_under_set_semantics() {
        let e = RaExpr::project(["B"], RaExpr::table("R"));
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 3); // 10, 20, 30
    }

    #[test]
    fn theta_join_with_inequality() {
        // Pairs (A, B2) with R.B > S.B2.
        let e = RaExpr::join(
            JoinCond(vec![("B".into(), CmpOp::Gt, "B2".into())]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        // R.B values 10,10,20,30 vs S 10,20: pairs: 20>10, 30>10, 30>20.
        assert_eq!(out.tuples.len(), 3);
    }

    #[test]
    fn mixed_eq_and_inequality_join_uses_residual() {
        // B = B2 && A > B2 — the equality keys the hash, the inequality
        // filters the bucket. Over our data: (B, B2) matches on 10, 10 and
        // 20, 20; A > B2 never holds (A ∈ 1..3), so the join is empty.
        let e = RaExpr::join(
            JoinCond(vec![
                ("B".into(), CmpOp::Eq, "B2".into()),
                ("A".into(), CmpOp::Gt, "B2".into()),
            ]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        assert!(out.tuples.is_empty());
        // Flip the inequality: every hash match qualifies (A < B2).
        let e = RaExpr::join(
            JoinCond(vec![
                ("B".into(), CmpOp::Eq, "B2".into()),
                ("A".into(), CmpOp::Lt, "B2".into()),
            ]),
            RaExpr::table("R"),
            RaExpr::rename([("B", "B2")], RaExpr::table("S")),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.tuples.len(), 3);
    }

    #[test]
    fn string_selection_and_order_comparison() {
        let mut d = Database::new();
        d.add_relation(
            Relation::from_rows(
                TableSchema::new("Boat", ["bid", "color"]),
                [
                    vec![Value::int(1), Value::str("zebra")],
                    vec![Value::int(2), Value::str("apple")],
                    vec![Value::int(3), Value::str("red")],
                ],
            )
            .unwrap(),
        );
        let eq = RaExpr::select(
            Condition::Cmp(RaTerm::attr("color"), CmpOp::Eq, RaTerm::value("red")),
            RaExpr::table("Boat"),
        );
        assert_eq!(ints(&eval(&eq, &d).unwrap()), vec![3]);
        // Lexicographic, not id, order: only 'apple' < 'red'.
        let lt = RaExpr::select(
            Condition::Cmp(RaTerm::attr("color"), CmpOp::Lt, RaTerm::value("red")),
            RaExpr::table("Boat"),
        );
        assert_eq!(ints(&eval(&lt, &d).unwrap()), vec![2]);
    }

    #[test]
    fn eval_missing_table_errors() {
        let e = RaExpr::table("Nope");
        assert!(eval(&e, &db()).is_err());
    }

    #[test]
    fn join_builds_hash_on_smaller_side() {
        // R has 4 rows, Big has 40: the executor hashes its RIGHT child,
        // so `R ⋈ Big` should compile with Big probed and R built — i.e.
        // the children swapped and a permuting Project on top.
        let mut d = db();
        d.add_relation(
            Relation::from_rows(
                TableSchema::new("Big", ["C", "D"]),
                (0..40i64).map(|i| [i, i % 7]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        let e = RaExpr::join(
            JoinCond(vec![("A".into(), CmpOp::Lt, "C".into())]),
            RaExpr::table("R"),
            RaExpr::table("Big"),
        );
        let plan = lower(&e, &d).unwrap();
        let Plan::Ops { root, out } = &plan else {
            panic!("expected ops plan")
        };
        match root {
            OpNode::Project { cols, input } => {
                // Big contributes 2 cols, R 2: restored order [2, 3, 0, 1].
                assert_eq!(cols, &[2, 3, 0, 1]);
                match input.as_ref() {
                    OpNode::Join {
                        checks,
                        left,
                        right,
                    } => {
                        assert_eq!(**left, OpNode::Table("Big".into()));
                        assert_eq!(**right, OpNode::Table("R".into()));
                        // A < C flips to C > A with Big's cols on the left.
                        assert_eq!(checks, &[(0, CmpOp::Gt, 0)]);
                    }
                    other => panic!("expected join under project, got {other:?}"),
                }
            }
            other => panic!("expected swapped join wrapped in project, got {other:?}"),
        }
        assert_eq!(out.attrs(), ["A", "B", "C", "D"]);
        // Semantics unchanged: matches the greedy (unswapped) lowering.
        let swapped = exec::run_ops(root, &d).unwrap();
        let baseline = lower_with(
            &e,
            &d,
            &PlannerOpts {
                strategy: OrderStrategy::Greedy,
                ..PlannerOpts::default()
            },
            &PlanHints::default(),
        )
        .unwrap();
        let Plan::Ops {
            root: base_root, ..
        } = &baseline
        else {
            panic!("expected ops plan")
        };
        assert!(matches!(base_root, OpNode::Join { .. }));
        assert_eq!(swapped, exec::run_ops(base_root, &d).unwrap());
    }

    #[test]
    fn natural_join_swap_preserves_layout_and_rows() {
        let mut d = db();
        // BigS(B, E): 30 rows sharing attr B with R.
        d.add_relation(
            Relation::from_rows(
                TableSchema::new("BigS", ["B", "E"]),
                (0..30i64).map(|i| [10 * (i % 4), i]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        let e = RaExpr::natural_join(RaExpr::table("R"), RaExpr::table("BigS"));
        let plan = lower(&e, &d).unwrap();
        let Plan::Ops { root, out } = &plan else {
            panic!("expected ops plan")
        };
        assert!(
            matches!(root, OpNode::Project { .. }),
            "larger right child should swap and re-project, got {root:?}"
        );
        assert_eq!(out.attrs(), ["A", "B", "E"]);
        let cost = exec::run_ops(root, &d).unwrap();
        let greedy = lower_with(
            &e,
            &d,
            &PlannerOpts {
                strategy: OrderStrategy::Greedy,
                ..PlannerOpts::default()
            },
            &PlanHints::default(),
        )
        .unwrap();
        let Plan::Ops {
            root: base_root,
            out: base_out,
        } = &greedy
        else {
            panic!("expected ops plan")
        };
        assert_eq!(base_out.attrs(), ["A", "B", "E"]);
        assert_eq!(cost, exec::run_ops(base_root, &d).unwrap());
        assert!(!cost.is_empty());
    }

    #[test]
    fn hints_steer_build_side_selection() {
        // Claim R is huge via feedback hints: now the written order is
        // already optimal (build on right S) and no swap happens... but
        // S is smaller than R anyway. Instead override S upward so the
        // swap triggers where real sizes would not.
        let d = db();
        let e = RaExpr::natural_join(RaExpr::table("R"), RaExpr::table("S"));
        // Real sizes: R=4, S=2 — right already smaller, no swap.
        let plain = lower(&e, &d).unwrap();
        let Plan::Ops { root, .. } = &plain else {
            panic!()
        };
        assert!(matches!(root, OpNode::NaturalJoin { .. }));
        // Hint S up to 1000 rows: swap kicks in.
        let mut hints = PlanHints::default();
        hints.set("S", 1000);
        let hinted = lower_with(&e, &d, &PlannerOpts::default(), &hints).unwrap();
        let Plan::Ops { root, .. } = &hinted else {
            panic!()
        };
        assert!(matches!(root, OpNode::Project { .. }));
    }

    #[test]
    fn lowered_plan_executes_like_eval() {
        let d = db();
        let e = RaExpr::project(
            ["A"],
            RaExpr::natural_join(RaExpr::table("R"), RaExpr::table("S")),
        );
        let plan = lower(&e, &d).unwrap();
        let rel = exec::execute(&plan, &d).unwrap();
        let direct = eval(&e, &d).unwrap();
        assert_eq!(rel.tuples(), &direct.tuples);
        assert_eq!(rel.schema().attrs(), ["A"]);
    }
}
