//! Printers for RA expressions: a parseable ASCII form and the paper's
//! Unicode operator notation.

use crate::ast::RaExpr;
use std::fmt;

/// ASCII rendering; round-trips through [`crate::parser::parse`].
pub fn to_ascii(e: &RaExpr) -> String {
    render(e, false)
}

/// Unicode rendering with `π σ ρ × ⋈ − ∪ ⊲`.
pub fn to_unicode(e: &RaExpr) -> String {
    render(e, true)
}

fn atom(e: &RaExpr, uni: bool) -> String {
    match e {
        RaExpr::Table(_) | RaExpr::Project(..) | RaExpr::Select(..) | RaExpr::Rename(..) => {
            render(e, uni)
        }
        _ => format!("({})", render(e, uni)),
    }
}

fn render(e: &RaExpr, uni: bool) -> String {
    match e {
        RaExpr::Table(t) => t.clone(),
        RaExpr::Project(attrs, inner) => {
            let op = if uni { "π" } else { "pi" };
            format!("{op}[{}]({})", attrs.join(", "), render(inner, uni))
        }
        RaExpr::Select(cond, inner) => {
            let op = if uni { "σ" } else { "sigma" };
            format!("{op}[{cond}]({})", render(inner, uni))
        }
        RaExpr::Rename(renames, inner) => {
            let op = if uni { "ρ" } else { "rho" };
            let rs: Vec<String> = renames
                .iter()
                .map(|(a, b)| {
                    if uni {
                        format!("{a}→{b}")
                    } else {
                        format!("{a}->{b}")
                    }
                })
                .collect();
            format!("{op}[{}]({})", rs.join(", "), render(inner, uni))
        }
        RaExpr::Product(l, r) => {
            let op = if uni { "×" } else { "x" };
            format!("{} {op} {}", atom(l, uni), atom(r, uni))
        }
        RaExpr::Join(cond, l, r) => {
            let op = if uni { "⋈" } else { "join" };
            format!("{} {op}[{cond}] {}", atom(l, uni), atom(r, uni))
        }
        RaExpr::NaturalJoin(l, r) => {
            let op = if uni { "⋈" } else { "join" };
            format!("{} {op} {}", atom(l, uni), atom(r, uni))
        }
        RaExpr::Diff(l, r) => format!("{} - {}", atom(l, uni), atom(r, uni)),
        RaExpr::Union(l, r) => {
            let op = if uni { "∪" } else { "union" };
            format!("{} {op} {}", atom(l, uni), atom(r, uni))
        }
        RaExpr::Antijoin(cond, l, r) => {
            let op = if uni { "⊲" } else { "antijoin" };
            if cond.0.is_empty() {
                format!("{} {op} {}", atom(l, uni), atom(r, uni))
            } else {
                format!("{} {op}[{cond}] {}", atom(l, uni), atom(r, uni))
            }
        }
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_ascii(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{JoinCond, RaExpr};

    #[test]
    fn renders_division_ascii_and_unicode() {
        let e = RaExpr::diff(
            RaExpr::project(["A"], RaExpr::table("R")),
            RaExpr::project(
                ["A"],
                RaExpr::diff(
                    RaExpr::product(
                        RaExpr::project(["A"], RaExpr::table("R")),
                        RaExpr::table("S"),
                    ),
                    RaExpr::table("R"),
                ),
            ),
        );
        assert_eq!(to_ascii(&e), "pi[A](R) - pi[A]((pi[A](R) x S) - R)");
        assert_eq!(to_unicode(&e), "π[A](R) - π[A]((π[A](R) × S) - R)");
    }

    #[test]
    fn renders_antijoin() {
        let e = RaExpr::antijoin(
            JoinCond::eq("B", "B"),
            RaExpr::table("R"),
            RaExpr::table("S"),
        );
        assert_eq!(to_ascii(&e), "R antijoin[B=B] S");
        assert_eq!(to_unicode(&e), "R ⊲[B=B] S");
        let nat = RaExpr::antijoin(JoinCond(vec![]), RaExpr::table("R"), RaExpr::table("S"));
        assert_eq!(to_ascii(&nat), "R antijoin S");
    }
}
