//! # rd-store — durable storage for the query service
//!
//! The engine serves immutable per-epoch snapshots; this crate is what
//! makes those epochs *durable*. A data directory holds exactly two
//! kinds of files:
//!
//! * **`snapshot-<seq>.fix`** — a point-in-time copy of the whole
//!   database in the workspace's fixture text format
//!   ([`rd_engine::render_fixture`]), written to a temp file, fsync'd,
//!   and atomically renamed into place. A reader never observes a
//!   half-written snapshot.
//! * **`wal-<seq>.log`** — the append-only write-ahead log of every
//!   mutation applied *after* snapshot `seq`. Each record is framed as
//!   `[u32 payload length][u64 FNV-1a checksum][payload]`; appends are
//!   flushed and fsync'd before the caller acknowledges the mutation.
//!
//! [`Store::open`] recovers by loading the newest snapshot and replaying
//! the matching WAL tail. A torn final record — short header, short
//! payload, checksum mismatch, or undecodable payload — is *truncated*,
//! not treated as an error: a crash mid-append loses only the mutation
//! that was never acknowledged, never a prefix record and never the
//! whole log. [`Store::checkpoint`] folds the WAL into a fresh snapshot
//! and rotates to an empty log whose first record is a
//! [`WalRecord::Checkpoint`] marker; superseded files are then retired.
//!
//! Values in WAL records use the edge (`Int`/`Str`) representation, so
//! the log is self-contained: symbol-table ids never reach disk.

use rd_core::trace::Histogram;
use rd_core::{CoreError, CoreResult, Database, TableSchema, Tuple, Value};
use rd_engine::{parse_fixture, render_fixture};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Bytes of a frame header: `u32` payload length + `u64` checksum.
const FRAME_HEADER: usize = 12;

/// One durable mutation record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Rows inserted into a table (edge representation, batched).
    Insert {
        /// Target table.
        table: String,
        /// The inserted rows.
        rows: Vec<Tuple>,
    },
    /// Rows deleted from a table.
    Delete {
        /// Target table.
        table: String,
        /// The deleted rows.
        rows: Vec<Tuple>,
    },
    /// A new (empty) table.
    CreateTable {
        /// The created table's schema.
        schema: TableSchema,
    },
    /// Marker written as the first record of a rotated WAL, tying the
    /// log to the snapshot it extends. No database effect on replay.
    Checkpoint {
        /// The snapshot sequence number this log extends.
        seq: u64,
    },
}

impl WalRecord {
    /// Encodes the record payload (no frame). Errors if a value is in
    /// the interned (`Sym`) representation — the WAL must stay
    /// self-contained, so callers resolve values at the edge first.
    pub fn encode(&self) -> CoreResult<Vec<u8>> {
        let mut buf = Vec::new();
        match self {
            WalRecord::Insert { table, rows } => {
                buf.push(1);
                put_str(&mut buf, table);
                put_rows(&mut buf, rows)?;
            }
            WalRecord::Delete { table, rows } => {
                buf.push(2);
                put_str(&mut buf, table);
                put_rows(&mut buf, rows)?;
            }
            WalRecord::CreateTable { schema } => {
                buf.push(3);
                put_str(&mut buf, schema.name());
                put_u32(&mut buf, schema.attrs().len() as u32);
                for attr in schema.attrs() {
                    put_str(&mut buf, attr);
                }
            }
            WalRecord::Checkpoint { seq } => {
                buf.push(4);
                put_u64(&mut buf, *seq);
            }
        }
        Ok(buf)
    }

    /// Encodes the record as a complete checksummed frame, ready to
    /// append to a WAL.
    pub fn encode_frame(&self) -> CoreResult<Vec<u8>> {
        let payload = self.encode()?;
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, fnv1a64(&payload));
        frame.extend_from_slice(&payload);
        Ok(frame)
    }

    /// Decodes one record from a full payload; `None` on any malformed
    /// byte (recovery treats that as a torn tail).
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let rec = match r.u8()? {
            1 => WalRecord::Insert {
                table: r.string()?,
                rows: r.rows()?,
            },
            2 => WalRecord::Delete {
                table: r.string()?,
                rows: r.rows()?,
            },
            3 => {
                let name = r.string()?;
                let n = r.u32()? as usize;
                if n > payload.len() {
                    return None;
                }
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    attrs.push(r.string()?);
                }
                WalRecord::CreateTable {
                    schema: TableSchema::new(name, attrs),
                }
            }
            4 => WalRecord::Checkpoint { seq: r.u64()? },
            _ => return None,
        };
        // The whole payload must be consumed: trailing bytes mean the
        // length field and the content disagree.
        (r.pos == payload.len()).then_some(rec)
    }
}

/// Applies one record to a database (Checkpoint markers are no-ops).
/// Returns how many rows actually changed.
pub fn apply_record(db: &mut Database, rec: &WalRecord) -> CoreResult<usize> {
    match rec {
        WalRecord::Insert { table, rows } => db.insert_rows(table, rows),
        WalRecord::Delete { table, rows } => db.delete_rows(table, rows),
        WalRecord::CreateTable { schema } => {
            db.create_table(schema.clone())?;
            Ok(0)
        }
        WalRecord::Checkpoint { .. } => Ok(0),
    }
}

/// Decodes a WAL byte stream into its complete records plus the byte
/// length of the valid prefix. Decoding stops at the first torn or
/// corrupt frame; everything after it is garbage by definition (the
/// log is append-only, so nothing valid can follow a bad frame).
pub fn decode_stream(buf: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
        let Some(end) = pos
            .checked_add(FRAME_HEADER)
            .and_then(|p| p.checked_add(len))
        else {
            break;
        };
        if end > buf.len() {
            break;
        }
        let payload = &buf[pos + FRAME_HEADER..end];
        if fnv1a64(payload) != sum {
            break;
        }
        let Some(rec) = WalRecord::decode(payload) else {
            break;
        };
        records.push(rec);
        pos = end;
    }
    (records, pos)
}

/// The durable-storage front door: owns the data directory, the open
/// WAL handle, and the checkpoint sequence.
pub struct Store {
    dir: PathBuf,
    seq: u64,
    wal: File,
    wal_records: u64,
    sync: bool,
    /// WAL append (buffered write) latency, microseconds per record.
    wal_append: Histogram,
    /// WAL fsync latency, microseconds per record (empty with
    /// [`Store::set_sync`] off).
    wal_fsync: Histogram,
}

impl Store {
    /// Opens (or creates) a data directory and recovers its database:
    /// newest snapshot + WAL tail replay, truncating a torn final
    /// record. A fresh directory recovers to an empty database.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<(Database, Store)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut seq = 0u64;
        let mut db = Database::new();
        let mut snapshots = list_seqs(&dir, "snapshot-", ".fix")?;
        snapshots.sort_unstable_by(|a, b| b.cmp(a));
        for n in snapshots {
            let text = fs::read_to_string(dir.join(snapshot_name(n)))?;
            match parse_fixture(&text) {
                Ok(loaded) => {
                    db = loaded;
                    seq = n;
                    break;
                }
                // Snapshots are written atomically, so an unparsable one
                // is outside interference; fall back to the next-newest.
                Err(_) => continue,
            }
        }
        let wal_path = dir.join(wal_name(seq));
        let mut wal_records = 0u64;
        if wal_path.exists() {
            let buf = fs::read(&wal_path)?;
            let (records, valid_len) = decode_stream(&buf);
            if valid_len < buf.len() {
                let f = OpenOptions::new().write(true).open(&wal_path)?;
                f.set_len(valid_len as u64)?;
                f.sync_data()?;
            }
            for rec in &records {
                apply_record(&mut db, rec).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("WAL record does not apply: {e}"),
                    )
                })?;
                if !matches!(rec, WalRecord::Checkpoint { .. }) {
                    wal_records += 1;
                }
            }
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        Ok((
            db,
            Store {
                dir,
                seq,
                wal,
                wal_records,
                sync: true,
                wal_append: Histogram::new(),
                wal_fsync: Histogram::new(),
            },
        ))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current checkpoint sequence (0 before the first checkpoint).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Mutation records in the current WAL (the replay cost of the next
    /// recovery — the input to a checkpoint policy).
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }

    /// `true` if nothing was ever written here: a brand-new directory a
    /// caller may want to seed with an initial database.
    pub fn is_fresh(&self) -> bool {
        self.seq == 0 && self.wal_records == 0
    }

    /// Disables the per-append fsync (tests exercising many tiny logs);
    /// leave enabled anywhere durability matters.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Appends one mutation record to the WAL, flushed (and fsync'd
    /// unless disabled) before returning — the caller may acknowledge
    /// the mutation once this returns `Ok`.
    pub fn log(&mut self, rec: &WalRecord) -> io::Result<()> {
        let frame = rec
            .encode_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let start = Instant::now();
        self.wal.write_all(&frame)?;
        self.wal_append
            .record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        if self.sync {
            let start = Instant::now();
            self.wal.sync_data()?;
            self.wal_fsync
                .record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
        self.wal_records += 1;
        Ok(())
    }

    /// WAL append (buffered write) latency histogram.
    pub fn wal_append_histogram(&self) -> &Histogram {
        &self.wal_append
    }

    /// WAL fsync latency histogram (one entry per synced record).
    pub fn wal_fsync_histogram(&self) -> &Histogram {
        &self.wal_fsync
    }

    /// Writes a point-in-time snapshot of `db` (fsync, then atomic
    /// rename), rotates to a fresh WAL opened with a checkpoint marker,
    /// and retires the superseded snapshot and log. Returns the new
    /// sequence number.
    pub fn checkpoint(&mut self, db: &Database) -> io::Result<u64> {
        let next = self.seq + 1;
        let tmp = self.dir.join(format!("snapshot-{next:020}.fix.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(render_fixture(db).as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(snapshot_name(next)))?;
        let mut new_wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.dir.join(wal_name(next)))?;
        let marker = WalRecord::Checkpoint { seq: next }
            .encode_frame()
            .expect("checkpoint markers carry no values");
        new_wal.write_all(&marker)?;
        new_wal.sync_data()?;
        sync_dir(&self.dir)?;
        let old_seq = self.seq;
        self.wal = new_wal;
        self.seq = next;
        self.wal_records = 0;
        // Retirement is best-effort: recovery always prefers the newest
        // snapshot, so a leftover older pair is only wasted space.
        let _ = fs::remove_file(self.dir.join(wal_name(old_seq)));
        if old_seq > 0 {
            let _ = fs::remove_file(self.dir.join(snapshot_name(old_seq)));
        }
        Ok(next)
    }
}

fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq:020}.fix")
}

fn wal_name(seq: u64) -> String {
    format!("wal-{seq:020}.log")
}

/// Sequence numbers of directory entries shaped `<prefix><seq><suffix>`.
fn list_seqs(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(middle) = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(suffix))
        {
            if let Ok(n) = middle.parse::<u64>() {
                seqs.push(n);
            }
        }
    }
    Ok(seqs)
}

/// Fsyncs a directory so a rename/create inside it is durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) -> CoreResult<()> {
    match v {
        Value::Int(i) => {
            buf.push(0);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(1);
            put_str(buf, s);
        }
        Value::Sym(_) => {
            return Err(CoreError::Invalid(
                "interned symbol in WAL record; resolve values at the edge first".into(),
            ))
        }
    }
    Ok(())
}

fn put_rows(buf: &mut Vec<u8>, rows: &[Tuple]) -> CoreResult<()> {
    put_u32(buf, rows.len() as u32);
    for row in rows {
        put_u32(buf, row.arity() as u32);
        for v in row.iter() {
            put_value(buf, v)?;
        }
    }
    Ok(())
}

/// A bounds-checked payload reader; every accessor answers `None` past
/// the end, which recovery maps to "torn record".
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            0 => Some(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            1 => Some(Value::Str(self.string()?)),
            _ => None,
        }
    }

    fn rows(&mut self) -> Option<Vec<Tuple>> {
        let n = self.u32()? as usize;
        // A length claiming more rows than there are bytes is corrupt;
        // reject before reserving.
        if n > self.buf.len() {
            return None;
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let arity = self.u32()? as usize;
            if arity > self.buf.len() {
                return None;
            }
            let mut vals = Vec::with_capacity(arity);
            for _ in 0..arity {
                vals.push(self.value()?);
            }
            rows.push(Tuple(vals));
        }
        Some(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::Relation;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rd-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                schema: TableSchema::new("Boat", ["bid", "color"]),
            },
            WalRecord::Insert {
                table: "Boat".into(),
                rows: vec![
                    Tuple::new(vec![Value::int(101), Value::str("red")]),
                    Tuple::new(vec![Value::int(102), Value::str("green")]),
                ],
            },
            WalRecord::Delete {
                table: "Boat".into(),
                rows: vec![Tuple::new(vec![Value::int(101), Value::str("red")])],
            },
            WalRecord::Checkpoint { seq: 7 },
        ]
    }

    #[test]
    fn records_roundtrip_through_frames() {
        for rec in sample_records() {
            let frame = rec.encode_frame().unwrap();
            let (decoded, len) = decode_stream(&frame);
            assert_eq!(len, frame.len());
            assert_eq!(decoded, vec![rec]);
        }
    }

    #[test]
    fn interned_values_are_rejected_at_encode() {
        let rec = WalRecord::Insert {
            table: "T".into(),
            rows: vec![Tuple(vec![Value::Sym(3)])],
        };
        assert!(rec.encode().is_err());
    }

    #[test]
    fn decode_stream_stops_at_first_bad_frame() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for rec in &recs {
            buf.extend_from_slice(&rec.encode_frame().unwrap());
        }
        let good_len = buf.len();
        // Append a frame whose checksum lies.
        let mut bad = recs[1].encode_frame().unwrap();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        buf.extend_from_slice(&bad);
        let (decoded, len) = decode_stream(&buf);
        assert_eq!(decoded, recs);
        assert_eq!(len, good_len);
    }

    #[test]
    fn open_checkpoint_reopen_roundtrips() {
        let dir = tmpdir("roundtrip");
        let (mut db, mut store) = Store::open(&dir).unwrap();
        assert!(store.is_fresh());
        assert!(db.is_empty());
        for rec in &sample_records()[..3] {
            apply_record(&mut db, rec).unwrap();
            store.log(rec).unwrap();
        }
        assert_eq!(store.wal_records(), 3);
        // Recovery from WAL alone.
        let (recovered, _) = Store::open(&dir).unwrap();
        assert_eq!(recovered, db);
        // Checkpoint folds the log into a snapshot and rotates.
        assert_eq!(store.checkpoint(&db).unwrap(), 1);
        assert_eq!(store.wal_records(), 0);
        let (recovered, store2) = Store::open(&dir).unwrap();
        assert_eq!(recovered, db);
        assert_eq!(store2.seq(), 1);
        assert!(!store2.is_fresh());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let (mut db, mut store) = Store::open(&dir).unwrap();
        let recs = sample_records();
        for rec in &recs[..2] {
            apply_record(&mut db, rec).unwrap();
            store.log(rec).unwrap();
        }
        drop(store);
        // Tear the final record at every byte boundary: recovery must
        // always yield the one-record prefix.
        let wal = dir.join(wal_name(0));
        let full = fs::read(&wal).unwrap();
        let first_len = recs[0].encode_frame().unwrap().len();
        for cut in first_len..full.len() {
            fs::write(&wal, &full[..cut]).unwrap();
            let (recovered, store) = Store::open(&dir).unwrap();
            let mut expect = Database::new();
            apply_record(&mut expect, &recs[0]).unwrap();
            assert_eq!(recovered, expect, "cut at {cut}");
            assert_eq!(store.wal_records(), 1);
            // The torn bytes are gone from disk too.
            assert_eq!(fs::read(&wal).unwrap().len(), first_len, "cut at {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_wal_tail_recovers_both() {
        let dir = tmpdir("tail");
        let (mut db, mut store) = Store::open(&dir).unwrap();
        let mut base = Relation::empty(TableSchema::new("R", ["a"]));
        base.insert_values([Value::int(1)]).unwrap();
        db.add_relation(base);
        store.checkpoint(&db).unwrap();
        let tail = WalRecord::Insert {
            table: "R".into(),
            rows: vec![Tuple::new(vec![Value::int(2)])],
        };
        apply_record(&mut db, &tail).unwrap();
        store.log(&tail).unwrap();
        drop(store);
        let (recovered, store) = Store::open(&dir).unwrap();
        assert_eq!(recovered, db);
        assert_eq!(store.seq(), 1);
        assert_eq!(store.wal_records(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
