//! Crash-recovery property: for a random mutation sequence, truncating
//! the WAL at *every* byte boundary of the final record recovers exactly
//! the acknowledged prefix — the torn tail is dropped, never a panic,
//! never a phantom tuple, never a lost earlier record.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rd_core::{Database, TableSchema, Tuple, Value};
use rd_store::{apply_record, Store, WalRecord};
use std::fs;
use std::path::PathBuf;

fn tmpdir(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rd-store-prop-{}-{seed}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn random_value(rng: &mut StdRng) -> Value {
    if rng.random_bool(0.5) {
        Value::int(rng.random_range(0i64..5))
    } else {
        Value::str(["red", "green", "blue"][rng.random_range(0usize..3)])
    }
}

fn random_rows(rng: &mut StdRng, arity: usize) -> Vec<Tuple> {
    let n = rng.random_range(1usize..4);
    (0..n)
        .map(|_| Tuple((0..arity).map(|_| random_value(rng)).collect()))
        .collect()
}

/// A seed-derived mutation sequence: two tables, then a mix of inserts
/// and deletes against them.
fn random_mutations(seed: u64) -> Vec<WalRecord> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57A6_E001);
    let tables = [("R", 1usize), ("S", 2usize)];
    let mut recs: Vec<WalRecord> = tables
        .iter()
        .map(|(name, arity)| WalRecord::CreateTable {
            schema: TableSchema::new(
                *name,
                (0..*arity).map(|i| format!("a{i}")).collect::<Vec<_>>(),
            ),
        })
        .collect();
    for _ in 0..rng.random_range(3usize..9) {
        let (table, arity) = tables[rng.random_range(0usize..tables.len())];
        let rows = random_rows(&mut rng, arity);
        recs.push(if rng.random_bool(0.7) {
            WalRecord::Insert {
                table: table.into(),
                rows,
            }
        } else {
            WalRecord::Delete {
                table: table.into(),
                rows,
            }
        });
    }
    recs
}

fn replayed(recs: &[WalRecord]) -> Database {
    let mut db = Database::new();
    for rec in recs {
        apply_record(&mut db, rec).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Torn-tail truncation: recovery after a cut anywhere inside the
    /// final record yields exactly the database of the preceding
    /// records.
    #[test]
    fn torn_wal_recovery_yields_exact_prefix(seed in 0u64..10_000) {
        let dir = tmpdir(seed);
        let recs = random_mutations(seed);
        {
            let (mut db, mut store) = Store::open(&dir).unwrap();
            for rec in &recs {
                apply_record(&mut db, rec).unwrap();
                store.log(rec).unwrap();
            }
        }
        let wal = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with("wal-"))
            .unwrap();
        let full = fs::read(&wal).unwrap();

        // Intact log: every record comes back.
        let (recovered, _) = Store::open(&dir).unwrap();
        prop_assert_eq!(&recovered, &replayed(&recs));

        // Byte length of everything before the final record.
        let last_start: usize = recs[..recs.len() - 1]
            .iter()
            .map(|r| r.encode_frame().unwrap().len())
            .sum();
        let prefix_db = replayed(&recs[..recs.len() - 1]);
        for cut in last_start..full.len() {
            fs::write(&wal, &full[..cut]).unwrap();
            let (recovered, store) = Store::open(&dir).unwrap();
            prop_assert_eq!(&recovered, &prefix_db, "cut at byte {}", cut);
            // The torn bytes were truncated away on disk.
            prop_assert_eq!(fs::read(&wal).unwrap().len(), last_start, "cut at byte {}", cut);
            drop(store);
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
