//! E2–E4 — regenerates Fig. 12 (§6.2): the controlled user study's speed,
//! learning, and accuracy results over the simulated participant pool.

use rd_study::{analyze, run_study, SimConfig};

fn main() {
    let cfg = SimConfig::default();
    let data = run_study(&cfg);
    println!("=========================================================");
    println!(" Fig. 12 — controlled user study (simulated participants)");
    println!("=========================================================\n");
    println!(
        "Recruitment funnel: {} submissions, {} rejected (<50% accuracy), {} accepted",
        data.submissions,
        data.rejected,
        data.participants.len()
    );
    println!("(paper: 120 submissions, 58 approved, first 25 per group kept)\n");
    let report = analyze(&data);
    print!("{}", report.render());
    println!("\nPaper reference values:");
    println!(
        "  Result 1: SQL 13.61 [12.37, 16.43], RD 10.11 [8.38, 11.26], ratio 0.70 [0.63, 0.77]"
    );
    println!("  Result 2: SQL H1 19.3 -> H2 12.3 (ratio 0.70 [0.51, 0.79]);");
    println!("            RD  H1 10.7 -> H2  7.8 (ratio 0.71 [0.63, 0.79])");
    println!("  Result 3: RD 92%, SQL 72%, difference 21% [13%, 29%]");
    assert!(report.speed_ratio.hi < 1.0, "speed CI must exclude 1.0");
    assert!(report.accuracy_diff.lo > 0.0, "accuracy CI must exclude 0");
    println!("\nShape checks passed: RD faster (CI < 1.0) and more accurate (CI > 0).");
}
