//! E1 — regenerates Fig. 10 (§6.1): fraction of 59 textbook queries with
//! pattern-isomorphic representations per language, plus the per-book
//! breakdown of Appendix N.

fn main() {
    let fig = rd_textbook::fig10_counts();
    println!("==========================================================");
    println!(" Fig. 10 — textbook corpus analysis (59 queries, 5 books)");
    println!("==========================================================\n");
    print!("{}", fig.render());
    println!("\nPaper reference: RD 56 (95%), non-disjunctive 53 (90%), QueryVis 53 (90%),");
    println!("                 QBE 49 (83%), RA 48 (81%), Datalog 47 (80%)\n");
    println!("Per-book breakdown (total | RD, ND, QueryVis, QBE, RA, Datalog):");
    for (book, total, c) in &fig.per_book {
        println!(
            "  {:<24} {:>2} | {:>2} {:>2} {:>2} {:>2} {:>2} {:>2}",
            book, total, c[0], c[1], c[2], c[3], c[4], c[5]
        );
    }
    assert_eq!(
        (
            fig.relational_diagrams,
            fig.nondisjunctive,
            fig.queryvis,
            fig.qbe,
            fig.ra,
            fig.datalog
        ),
        (56, 53, 53, 49, 48, 47),
        "Fig. 10 counts drifted from the paper"
    );
    println!("\nAll six counts match the paper exactly.");
}
