//! E6 — regenerates the exploratory reanalysis of Appendix O.4
//! (Figs. 33–38): participants with accuracy above 90%.

use rd_study::analysis::{analyze, filter_by_accuracy};
use rd_study::{run_study, SimConfig};

fn main() {
    let data = run_study(&SimConfig::default());
    let full = analyze(&data);
    let subset = filter_by_accuracy(&data, 0.90);
    let filtered = analyze(&subset);
    println!("==============================================================");
    println!(" Figs. 33-38 — exploratory >90%-accuracy subset (Appendix O.4)");
    println!("==============================================================\n");
    println!("subset size: n = {} of {}\n", filtered.n, full.n);
    println!(
        "speed (full sample):    SQL {}  RD {}  ratio {}",
        full.time_sql.fmt(1),
        full.time_rd.fmt(1),
        full.speed_ratio.fmt(2)
    );
    println!(
        "speed (>90% subset):    SQL {}  RD {}  ratio {}",
        filtered.time_sql.fmt(1),
        filtered.time_rd.fmt(1),
        filtered.speed_ratio.fmt(2)
    );
    println!(
        "\naccuracy diff (full):   {}",
        filtered_pct(&full.accuracy_diff)
    );
    println!(
        "accuracy diff (subset): {}",
        filtered_pct(&filtered.accuracy_diff)
    );
    println!("\nPaper reference: subset n = 27; speed ratio 0.69 (vs 0.70 full);");
    println!("much smaller accuracy difference (2%) in the subset.");
    assert!(
        filtered.speed_ratio.hi < 1.0,
        "speed effect persists in subset"
    );
    assert!(filtered.accuracy_diff.value < full.accuracy_diff.value);
    println!("\nShape checks passed: speed effect persists, accuracy gap shrinks.");
}

fn filtered_pct(e: &rd_study::stats::Estimate) -> String {
    format!(
        "{:.0}% [{:.0}%, {:.0}%]",
        e.value * 100.0,
        e.lo * 100.0,
        e.hi * 100.0
    )
}
