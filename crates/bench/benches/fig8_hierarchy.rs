//! E7 — regenerates Fig. 8 / Theorem 14: the representation hierarchy
//! RA* ⊊rep Datalog* ⊊rep TRC* ≡rep SQL* ≡rep RD*, with the positive
//! directions demonstrated on witness queries and the two separations
//! verified by bounded enumeration (Lemmas 19 and 20).

use rd_pattern::equiv::EquivOptions;
use rd_pattern::hierarchy::{positive_directions, verify_lemma19, verify_lemma20, Lemma19Bounds};

fn main() {
    println!("==========================================================");
    println!(" Fig. 8 — representation hierarchy (Theorem 14)");
    println!("==========================================================\n");
    println!("Positive directions (pattern-preserving translations):");
    for row in positive_directions(&EquivOptions::default()) {
        println!(
            "  [{}] {:<22} — {}",
            if row.holds { "ok" } else { "FAIL" },
            row.direction,
            row.evidence
        );
        assert!(row.holds);
    }
    println!("\nSeparations (bounded enumerate-and-refute):");
    let l19 = verify_lemma19(Lemma19Bounds::default());
    println!(
        "  Lemma 19 (RA* !>=rep Datalog*): {} candidate RA* expressions with",
        l19.candidates
    );
    println!(
        "    signature (R, S); {} refuted by counterexample; {} unrefuted",
        l19.refuted,
        l19.unrefuted.len()
    );
    assert!(l19.holds(), "unrefuted: {:?}", l19.unrefuted);
    let l20 = verify_lemma20();
    println!(
        "  Lemma 20 (Datalog* !>=rep TRC*): {} candidate Datalog* programs over",
        l20.candidates
    );
    println!(
        "    (T, R, S); {} refuted by counterexample; {} unrefuted",
        l20.refuted,
        l20.unrefuted.len()
    );
    assert!(l20.holds(), "unrefuted: {:?}", l20.unrefuted);
    println!("\nResulting hierarchy:  RA*  <rep  Datalog*  <rep  TRC*  ==rep  SQL*  ==rep  RD*");
}
