//! E5 — regenerates Table 1 / Fig. 32 (Appendix O.3): per-pattern median
//! times and RD/SQL ratios with BCa CIs.

use rd_study::{analyze, run_study, SimConfig};

fn main() {
    let report = analyze(&run_study(&SimConfig::default()));
    println!("==============================================================");
    println!(" Table 1 / Fig. 32 — per-pattern medians and ratios (Result 4)");
    println!("==============================================================\n");
    println!("pattern   RD median               SQL median              ratio RD/SQL");
    for row in &report.per_pattern {
        println!(
            "{:<9} {:<23} {:<23} {}",
            row.pattern,
            row.rd.fmt(2),
            row.sql.fmt(2),
            row.ratio.fmt(2)
        );
        assert!(
            row.ratio.hi < 1.0,
            "per-pattern ratio CI must stay below 1.0"
        );
    }
    println!("\nPaper reference (Table 1): P1 .64 [.49,.78], P2 .83 [.70,.97],");
    println!("                           P3 .66 [.53,.77], P4 .71 [.60,.86]");
    println!("\nAll four ratio CIs fall below 1.00, as in the paper.");
}
