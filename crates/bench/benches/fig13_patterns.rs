//! E8 — regenerates Fig. 13 / Example 10: three logically-equivalent
//! Datalog programs with three different patterns, their RA forms (where
//! they exist), and the pattern-isomorphism matrix.

use rd_core::{Catalog, TableSchema};
use rd_pattern::{pattern_isomorphic, AnyQuery, EquivOptions};

fn main() {
    let catalog = Catalog::from_schemas([
        TableSchema::new("R", ["A", "B"]),
        TableSchema::new("S", ["B"]),
    ])
    .unwrap();
    let programs = [
        (
            "13a",
            "I(x, y) :- R(x, _), S(y).\nQ(x, y) :- R(x, y), not I(x, y).",
        ),
        (
            "13d",
            "I(y) :- R(_, y), not S(y).\nQ(x, y) :- R(x, y), I(y).",
        ),
        ("13g", "Q(x, y) :- R(x, y), not S(y)."),
    ];
    let ra_forms = [
        ("13b", Some("R - (pi[A](R) x S)")),
        ("13e", Some("R join (pi[B](R) - S)")),
        ("13h", None::<&str>),
    ];
    println!("==========================================================");
    println!(" Fig. 13 — three patterns for R(A,B) minus-semijoin S(B)");
    println!("==========================================================\n");
    let mut queries = Vec::new();
    for ((id, dl), (ra_id, ra)) in programs.iter().zip(&ra_forms) {
        let p = rd_datalog::parse_program(dl, &catalog).unwrap();
        println!("Datalog ({id}):\n{p}");
        match ra {
            Some(text) => {
                let e = rd_ra::parse(text, &catalog).unwrap();
                println!("RA      ({ra_id}): {e}");
                let v = pattern_isomorphic(
                    &AnyQuery::Datalog(p.clone()),
                    &AnyQuery::Ra(e),
                    &catalog,
                    &EquivOptions::default(),
                );
                println!(
                    "         pattern-isomorphic to the Datalog form: {}",
                    v.is_isomorphic()
                );
                assert!(v.is_isomorphic());
            }
            None => {
                println!("RA      ({ra_id}): (none — not expressible with 2 references, Lemma 19)")
            }
        }
        // Relational Diagram via the pattern-preserving Datalog -> TRC path.
        let trc = rd_translate::datalog_to_trc(&p, &catalog).unwrap();
        let d = rd_diagram::from_trc(&trc, &catalog).unwrap();
        println!(
            "Diagram : {} tables, {} joins, {} partitions\n",
            d.signature().len(),
            d.cells[0].joins.len(),
            d.cells[0].root.partition_count()
        );
        queries.push(AnyQuery::Datalog(p));
    }
    println!("Pairwise pattern isomorphism (logically equivalent throughout):");
    for i in 0..queries.len() {
        for j in (i + 1)..queries.len() {
            let v =
                pattern_isomorphic(&queries[i], &queries[j], &catalog, &EquivOptions::default());
            println!(
                "  {} vs {}: {}",
                programs[i].0,
                programs[j].0,
                if v.is_isomorphic() {
                    "same pattern"
                } else {
                    "different patterns"
                }
            );
            assert!(!v.is_isomorphic(), "the three Fig. 13 patterns must differ");
        }
    }
    println!("\nAs in the paper: all three are logically equivalent yet pairwise");
    println!("pattern-distinct, and 13g has no 2-reference RA form.");
}
