//! E11 — Criterion micro-benchmarks for the engine itself: parsing,
//! canonicalization, translation, diagram round-trip, evaluation, and
//! pattern-isomorphism checking.
//!
//! Setting `RD_BENCH_SMOKE=1` runs only the evaluation, plan-cache,
//! and delta-mutation benches with a single sample — CI's cheap "the
//! benches still run" check.

use criterion::{criterion_group, criterion_main, Criterion};
use rd_core::{Catalog, DbGenerator, TableSchema, Value};
use std::hint::black_box;

/// `true` in CI smoke mode: evaluation benches only, one sample.
fn smoke() -> bool {
    std::env::var_os("RD_BENCH_SMOKE").is_some()
}

fn config() -> Criterion {
    Criterion::default().sample_size(if smoke() { 1 } else { 20 })
}

const DIVISION: &str = "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
                        not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }";

fn catalog() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("R", ["A", "B"]),
        TableSchema::new("S", ["B"]),
    ])
    .unwrap()
}

fn bench_parse(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let cat = catalog();
    c.bench_function("parse_trc_division", |b| {
        b.iter(|| rd_trc::parse_query(black_box(DIVISION), &cat).unwrap())
    });
    let sql = "SELECT DISTINCT R.A FROM R WHERE NOT EXISTS (SELECT * FROM S WHERE NOT EXISTS \
               (SELECT * FROM R AS R2 WHERE R2.B = S.B AND R2.A = R.A))";
    c.bench_function("parse_sql_division", |b| {
        b.iter(|| rd_sql::parse_sql_unchecked(black_box(sql)).unwrap())
    });
}

fn bench_translate(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let cat = catalog();
    let q = rd_trc::parse_query(DIVISION, &cat).unwrap();
    c.bench_function("canonicalize_trc", |b| {
        b.iter(|| rd_trc::canonicalize(black_box(&q)))
    });
    c.bench_function("trc_to_datalog", |b| {
        b.iter(|| rd_translate::trc_to_datalog(black_box(&q), &cat).unwrap())
    });
    let p = rd_translate::trc_to_datalog(&q, &cat).unwrap();
    c.bench_function("datalog_to_ra", |b| {
        b.iter(|| rd_translate::datalog_to_ra(black_box(&p), &cat).unwrap())
    });
    c.bench_function("trc_to_sql", |b| {
        b.iter(|| rd_sql::trc_to_sql(black_box(&q)).unwrap())
    });
}

fn bench_diagram(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let cat = catalog();
    let q = rd_trc::parse_query(DIVISION, &cat).unwrap();
    c.bench_function("trc_to_diagram_and_back", |b| {
        b.iter(|| {
            let d = rd_diagram::from_trc(black_box(&q), &cat).unwrap();
            rd_diagram::to_trc(&d, &cat).unwrap()
        })
    });
    let d = rd_diagram::from_trc(&q, &cat).unwrap();
    c.bench_function("diagram_to_dot", |b| {
        b.iter(|| rd_diagram::to_dot(black_box(&d)))
    });
    c.bench_function("diagram_to_svg", |b| {
        b.iter(|| rd_diagram::to_svg(black_box(&d)))
    });
}

fn bench_eval(c: &mut Criterion) {
    let cat = catalog();
    let q = rd_trc::parse_query(DIVISION, &cat).unwrap();
    let mut gen = DbGenerator::with_int_domain(cat.clone(), 8, 30, 5);
    let db = gen.next_db();
    c.bench_function("eval_trc_division_30rows", |b| {
        b.iter(|| rd_trc::eval_query(black_box(&q), &db).unwrap())
    });
    let p = rd_translate::trc_to_datalog(&q, &cat).unwrap();
    c.bench_function("eval_datalog_division_30rows", |b| {
        b.iter(|| rd_datalog::eval_program(black_box(&p), &db).unwrap())
    });
    let e = rd_translate::datalog_to_ra(&p, &cat).unwrap();
    c.bench_function("eval_ra_division_30rows", |b| {
        b.iter(|| rd_ra::eval(black_box(&e), &db).unwrap())
    });
    // The join-heavy regime where planning + hash joins dominate: the
    // same division pattern over a 200-row instance.
    let mut gen = DbGenerator::with_int_domain(cat.clone(), 24, 200, 5);
    let big = gen.next_db();
    c.bench_function("eval_trc_division_200rows", |b| {
        b.iter(|| rd_trc::eval_query(black_box(&q), &big).unwrap())
    });
    c.bench_function("eval_datalog_division_200rows", |b| {
        b.iter(|| rd_datalog::eval_program(black_box(&p), &big).unwrap())
    });
    // The vectorized-executor micro pair: the same compiled division
    // plan, executed batched vs tuple-at-a-time over the 200-row
    // instance. The chunked path's speedup reads off this pair directly
    // (same plan, same database — only the executor differs).
    use rd_core::exec::{execute_with, ExecOptions};
    let trc_u = rd_trc::TrcUnion::new(vec![q.clone()]).unwrap();
    let plan = rd_trc::lower_union(&trc_u, &big).unwrap();
    c.bench_function("exec_trc_division_200rows_batched", |b| {
        b.iter(|| execute_with(black_box(&plan), &big, ExecOptions { batch: true }).unwrap())
    });
    c.bench_function("exec_trc_division_200rows_scalar", |b| {
        b.iter(|| execute_with(black_box(&plan), &big, ExecOptions { batch: false }).unwrap())
    });
}

/// A string-valued equi-join: what interning buys when the data is text
/// (equality is an id compare; pre-refactor this cloned and compared heap
/// strings per probe).
fn bench_eval_strings(c: &mut Criterion) {
    let cat = catalog();
    let domain: Vec<Value> = (0..24)
        .map(|i| Value::str(format!("name-{i:04}")))
        .collect();
    let mut gen = DbGenerator::new(cat.clone(), domain.clone(), 200, 9);
    let db = gen.next_db();
    let q = rd_trc::parse_query(
        "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }",
        &cat,
    )
    .unwrap();
    c.bench_function("eval_trc_string_join_200rows", |b| {
        b.iter(|| rd_trc::eval_query(black_box(&q), &db).unwrap())
    });
    // Batched vs scalar over the same compiled join plan: interned
    // symbol keys take the dense-key join table on the batched path.
    // `DbGenerator` draws a *random* tuple count per relation, so the
    // instance is regenerated until R really holds 400+ rows — the pair
    // measures executor throughput, not generator luck.
    use rd_core::exec::{execute_with, ExecOptions};
    let mut gen = DbGenerator::new(cat.clone(), domain, 800, 9);
    let big = loop {
        let db = gen.next_db();
        if db
            .iter()
            .any(|r| r.schema().name() == "R" && r.len() >= 400)
        {
            break db;
        }
    };
    let trc_u = rd_trc::TrcUnion::new(vec![q.clone()]).unwrap();
    let plan = rd_trc::lower_union(&trc_u, &big).unwrap();
    c.bench_function("exec_trc_string_join_400rows_batched", |b| {
        b.iter(|| execute_with(black_box(&plan), &big, ExecOptions { batch: true }).unwrap())
    });
    c.bench_function("exec_trc_string_join_400rows_scalar", |b| {
        b.iter(|| execute_with(black_box(&plan), &big, ExecOptions { batch: false }).unwrap())
    });
}

/// Repeat execution of the division query through the engine session
/// with the compiled-plan cache on vs off (result cache disabled in
/// both, so every run executes — only the lower/compile step is
/// amortized). This is the CI `plan-cache` smoke case: the on/off pair
/// must both run; off-minus-on is the per-request compile cost the
/// cache removes from the hot serving path.
fn bench_plan_cache(c: &mut Criterion) {
    use rd_engine::{EngineShared, Language, QueryRequest, Session, SharedConfig};
    use std::sync::Arc;

    let cat = catalog();
    let mut gen = DbGenerator::with_int_domain(cat, 8, 30, 5);
    let db = gen.next_db();
    let req = QueryRequest::new(Language::Trc, DIVISION);
    let session_for = |plan_cache: bool| {
        Session::attach(Arc::new(EngineShared::with_config(
            db.clone(),
            SharedConfig {
                eval_cache: false,
                plan_cache,
                shards: 1,
                ..SharedConfig::default()
            },
        )))
    };
    let mut cached = session_for(true);
    cached.run(&req).unwrap(); // warm: compile once
    c.bench_function("session_division_plan_cache_on", |b| {
        b.iter(|| cached.run(black_box(&req)).unwrap())
    });
    let mut uncached = session_for(false);
    c.bench_function("session_division_plan_cache_off", |b| {
        b.iter(|| uncached.run(black_box(&req)).unwrap())
    });
}

/// Cost of the PR-7 tracing layer on the hot serving path: the same
/// cached-division repeat with per-stage span recording on (default)
/// vs off. Both sessions serve from the compiled-plan cache with the
/// result cache disabled, so every iteration executes and the only
/// delta is the clock reads + histogram records. The acceptance bar is
/// on-minus-off ≤ 5% of the off time.
fn bench_tracing_overhead(c: &mut Criterion) {
    use rd_engine::{EngineShared, Language, QueryRequest, Session, SharedConfig};
    use std::sync::Arc;

    let cat = catalog();
    let mut gen = DbGenerator::with_int_domain(cat, 8, 30, 5);
    let db = gen.next_db();
    let req = QueryRequest::new(Language::Trc, DIVISION);
    let session_for = |metrics: bool| {
        Session::attach(Arc::new(EngineShared::with_config(
            db.clone(),
            SharedConfig {
                eval_cache: false,
                shards: 1,
                metrics,
                ..SharedConfig::default()
            },
        )))
    };
    let mut traced = session_for(true);
    traced.run(&req).unwrap(); // warm: compile once
    c.bench_function("session_division_tracing_on", |b| {
        b.iter(|| traced.run(black_box(&req)).unwrap())
    });
    let mut untraced = session_for(false);
    untraced.run(&req).unwrap();
    c.bench_function("session_division_tracing_off", |b| {
        b.iter(|| untraced.run(black_box(&req)).unwrap())
    });
}

/// Delta-aware invalidation on the hot serving path: repeat a query
/// while mutations land on (a) no table, (b) an *unrelated* table, and
/// (c) the queried table. The delta-aware cache keeps (b) at
/// cached-result speed — a mutation bumps only the touched relation's
/// generation, so the Boat result survives Sailor inserts — while (c)
/// pays a genuine re-evaluation per request. Pre-PR-6, (b) and (c)
/// were identical: any write stranded every cached entry.
fn bench_delta_mutation_cache(c: &mut Criterion) {
    use rd_core::Tuple;
    use rd_engine::{parse_fixture, EngineShared, Language, QueryRequest, Session, SharedConfig};
    use std::sync::Arc;

    // The division query over a 200-row R, plus a small side table U the
    // query never reads — so a forced re-evaluation has a real cost and
    // an unrelated mutation a cheap one.
    let mut fixture = String::from("R(A, B):\n");
    for a in 0..20 {
        for b in 0..10 {
            if (a + b) % 7 != 0 {
                fixture.push_str(&format!("  ({a}, {b})\n"));
            }
        }
    }
    fixture.push_str("S(B):\n");
    for b in 0..10 {
        fixture.push_str(&format!("  ({b})\n"));
    }
    fixture.push_str("U(X):\n  (0)\n  (1)\n");
    let db = parse_fixture(&fixture).unwrap();
    let shared_session = || {
        Session::attach(Arc::new(EngineShared::with_config(
            db.clone(),
            SharedConfig {
                shards: 1,
                ..SharedConfig::default()
            },
        )))
    };
    let req = QueryRequest::new(Language::Trc, DIVISION);

    let mut hit = shared_session();
    hit.run(&req).unwrap();
    c.bench_function("delta_mutation_cache/repeat_query", |b| {
        b.iter(|| hit.run(black_box(&req)).unwrap())
    });

    // Each iteration inserts and deletes one fresh row — two deltas on a
    // constant-size database — then repeats the division query. With the
    // mutation on U the cached result survives both deltas and the query
    // stays at cached-result speed; on R it is invalidated twice and the
    // query genuinely re-evaluates.
    let mut bench_interleaved = |name: &str, table: &'static str, width: usize| {
        let mut session = shared_session();
        session.run(&req).unwrap();
        let mut next = 1_000_000i64;
        c.bench_function(name, |b| {
            b.iter(|| {
                next += 1;
                let rows = [Tuple(vec![Value::int(next); width])];
                session.shared().insert_rows(table, &rows).unwrap();
                session.shared().delete_rows(table, &rows).unwrap();
                session.run(black_box(&req)).unwrap()
            })
        });
    };
    bench_interleaved("delta_mutation_cache/after_unrelated_mutation", "U", 1);
    bench_interleaved("delta_mutation_cache/after_touching_mutation", "R", 2);
}

/// The cost-based join orderer's headline case: a skewed three-way
/// join R(A,B) ⋈ S(A,Z) ⋈ T(B) at |R| = 10³..10⁵. R's A column is a
/// 50-value fan-out key that S duplicates tenfold, so R⋈S has 10·|R|
/// rows; T keeps only |R|/1000 of R's B values. The legacy greedy
/// orderer ranks scans by size and key count alone — blind to
/// intermediate cardinality, it seeds at tiny S and explodes through
/// the fan-out (or, at 10⁵, takes a 2.5M-row S×T cross product) —
/// while the DP orderer's estimator starts from the selective T⋈R
/// edge and touches ~|R|/1000 rows past the index build. Both plans
/// are lowered once outside the timing loop, so the pair reads as
/// pure execution cost: the greedy/DP ratio is the optimizer's win
/// and grows with |R|.
fn bench_join_order(c: &mut Criterion) {
    use rd_core::exec::execute;
    use rd_core::plan::{OrderStrategy, PlanHints, PlannerOpts};
    use rd_core::{Database, Relation};

    let sizes: &[i64] = if smoke() {
        &[10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    for &n in sizes {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                (0..n).map(|i| [i % 50, i]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("S", ["A", "Z"]),
                (0..500i64).map(|i| [i % 50, i]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("T", ["B"]),
                (0..5000i64).map(|i| [i * 1000]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        let q = rd_trc::parse_query(
            "{ q(B) | exists r in R, s in S, t in T [ \
               q.B = r.B and s.A = r.A and t.B = r.B ] }",
            &db.catalog(),
        )
        .unwrap();
        let union = rd_trc::TrcUnion::new(vec![q]).unwrap();
        let hints = PlanHints::default();
        let dp =
            rd_trc::eval::lower_union_with(&union, &db, &PlannerOpts::default(), &hints).unwrap();
        let greedy_opts = PlannerOpts {
            strategy: OrderStrategy::Greedy,
            ..PlannerOpts::default()
        };
        let greedy = rd_trc::eval::lower_union_with(&union, &db, &greedy_opts, &hints).unwrap();
        c.bench_function(&format!("join_order/skewed_3way_r{n}_dp"), |b| {
            b.iter(|| execute(black_box(&dp), &db).unwrap())
        });
        c.bench_function(&format!("join_order/skewed_3way_r{n}_greedy"), |b| {
            b.iter(|| execute(black_box(&greedy), &db).unwrap())
        });
    }
}

fn bench_patterns(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let cat = catalog();
    let q = rd_trc::parse_query(DIVISION, &cat).unwrap();
    let sql = rd_sql::ast::SqlUnion::single(rd_sql::trc_to_sql(&q).unwrap());
    c.bench_function("pattern_isomorphism_trc_vs_sql", |b| {
        b.iter(|| {
            rd_pattern::pattern_isomorphic(
                &rd_pattern::AnyQuery::Trc(q.clone()),
                &rd_pattern::AnyQuery::Sql(sql.clone()),
                &cat,
                &rd_pattern::EquivOptions {
                    random_rounds: 30,
                    ..Default::default()
                },
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parse, bench_translate, bench_diagram, bench_eval, bench_eval_strings,
        bench_plan_cache, bench_tracing_overhead, bench_delta_mutation_cache, bench_join_order,
        bench_patterns
}
criterion_main!(benches);
