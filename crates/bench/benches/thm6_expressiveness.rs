//! E10 — Theorem 6 as a randomized differential test: random TRC* queries
//! translated to Datalog*, RA*, RA*⊲ and SQL*, all evaluated on random
//! databases; every result set must agree.

use rd_core::{Catalog, DbGenerator, TableSchema};
use rd_trc::random::{GenConfig, QueryGenerator};
use std::time::Instant;

fn main() {
    let catalog = Catalog::from_schemas([
        TableSchema::new("R", ["A", "B"]),
        TableSchema::new("S", ["B"]),
        TableSchema::new("T", ["A"]),
    ])
    .unwrap();
    println!("==========================================================");
    println!(" Theorem 6 — logical expressiveness of the four fragments");
    println!("==========================================================\n");
    let mut qgen = QueryGenerator::new(catalog.clone(), GenConfig::default(), 61);
    let queries = 120usize;
    let dbs_per_query = 25usize;
    let start = Instant::now();
    let mut checks = 0usize;
    for i in 0..queries {
        let q = qgen.next_query();
        let dbs = DbGenerator::with_int_domain(catalog.clone(), 3, 3, 9000 + i as u64);
        match rd_translate::check_equivalent_results(&q, &catalog, dbs.take(dbs_per_query)) {
            Ok(n) => checks += n,
            Err(e) => panic!("disagreement on query {i} ({q}): {}\n{}", e.1, e.0),
        }
    }
    let elapsed = start.elapsed();
    println!("{queries} random TRC* queries x {dbs_per_query} random databases");
    println!("x 5 evaluations (TRC, Datalog*, RA*, RA*-antijoin, SQL*)");
    println!(
        "= {} agreement checks, all passed, in {:.2?}",
        checks, elapsed
    );
    println!(
        "({:.0} checks/second)",
        checks as f64 / elapsed.as_secs_f64()
    );
}
