//! Service-layer throughput baseline: the `rd-server` TCP service driven
//! by the bench client, comparing compute-pool widths, the shared
//! result cache on vs off, and lock-step round trips vs pipelined
//! requests. Future PRs tune the server against these numbers.
//!
//! Each measured iteration is one full client round-trip (connect once
//! per scenario; per-iter = one request) against a live server on an
//! ephemeral localhost port.

use criterion::{criterion_group, criterion_main, Criterion};
use rd_engine::{demo_database, Language};
use rd_server::{run_bench, BenchConfig, Client, Server, ServerConfig};

struct LiveServer {
    addr: std::net::SocketAddr,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl LiveServer {
    fn start(workers: usize, eval_cache: bool) -> LiveServer {
        let server = Server::bind(
            ServerConfig {
                workers,
                eval_cache,
                ..ServerConfig::default()
            },
            demo_database(),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.serve());
        LiveServer {
            addr,
            handle: Some(handle),
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        if let Ok(mut client) = Client::connect(self.addr) {
            let _ = client.shutdown();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

const QUERY: &str = "SELECT DISTINCT Sailor.sname FROM Sailor, Reserves \
                     WHERE Sailor.sid = Reserves.sid";

/// One persistent connection, one request per iteration.
fn bench_single_connection(c: &mut Criterion, id: &str, eval_cache: bool) {
    let server = LiveServer::start(1, eval_cache);
    let mut client = Client::connect(server.addr).expect("connect");
    c.bench_function(id, |b| {
        b.iter(|| {
            client
                .query(Some(Language::Sql), QUERY)
                .expect("query round-trip")
        })
    });
}

/// One full load burst per iteration: `threads` client connections x 25
/// requests (the four-language default mix), lock-step or pipelined
/// `pipeline` deep, against a 1- or 4-worker compute pool. The
/// lockstep-vs-pipeline pair at the same width measures what removing
/// the per-request round trip buys.
fn bench_load_burst(c: &mut Criterion, id: &str, workers: usize, threads: usize, pipeline: usize) {
    let server = LiveServer::start(workers, true);
    let mut cfg = BenchConfig::new(server.addr.to_string());
    cfg.threads = threads;
    cfg.requests = 25;
    cfg.pipeline = pipeline;
    c.bench_function(id, |b| {
        b.iter(|| {
            let report = run_bench(&cfg).expect("bench burst");
            assert_eq!(report.errors, 0);
            report.completed
        })
    });
}

fn service_throughput(c: &mut Criterion) {
    println!("\n== service throughput ==");
    println!("-- one request per iter:");
    bench_single_connection(c, "serve/1-conn/eval-cache-on", true);
    bench_single_connection(c, "serve/1-conn/eval-cache-off", false);
    println!("-- one 100-request burst (4 connections) per iter:");
    bench_load_burst(c, "serve/burst/1-worker", 1, 4, 1);
    bench_load_burst(c, "serve/burst/4-workers", 4, 4, 1);
    println!("-- one 200-request burst (8 connections) per iter, lock-step vs pipelined:");
    bench_load_burst(c, "serve/burst/8-conns/lockstep", 4, 8, 1);
    bench_load_burst(c, "serve/burst/8-conns/pipeline-16", 4, 8, 16);
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
