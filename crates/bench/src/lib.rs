//! # rd-bench — benchmark harnesses
//!
//! One `harness = false` bench target per paper table/figure (they print
//! the regenerated rows; see EXPERIMENTS.md for paper-vs-measured), plus
//! Criterion micro-benchmarks in `benches/micro.rs`.
//!
//! Run everything with `cargo bench --workspace`.
