//! Stimulus generation: 32 schemas × 4 patterns × 2 conditions = 256
//! stimuli (§6.2), each produced through the workspace's own translators —
//! TRC source, canonical formatted SQL, and the Relational Diagram (DOT
//! and SVG).

use crate::design::{Condition, Pattern};
use crate::schemas::{study_schemas, StudySchema};
use rd_core::CoreResult;
use rd_trc::ast::TrcQuery;
use serde::Serialize;

/// One generated stimulus.
#[derive(Debug, Clone, Serialize)]
pub struct Stimulus {
    /// Schema index (0..32).
    pub schema_index: usize,
    /// Pattern shown.
    pub pattern: Pattern,
    /// Condition shown.
    pub condition: Condition,
    /// The question's plain-English text (the four answer options are the
    /// four pattern texts of this schema).
    pub question: String,
    /// The rendered stimulus: formatted SQL or diagram DOT source.
    pub rendered: String,
    /// TRC source (ground truth for both renderings).
    pub trc: String,
}

/// Builds the TRC query for a pattern over a schema.
pub fn pattern_trc(schema: &StudySchema, pattern: Pattern) -> String {
    let (e, ek, en) = schema.entity;
    let (r, rk1, rk2) = schema.rel;
    let (t, tk) = schema.target;
    match pattern {
        Pattern::Some => format!(
            "{{ q({en}) | exists e in {e}, r in {r} [ q.{en} = e.{en} and r.{rk1} = e.{ek} ] }}"
        ),
        Pattern::NotAny => format!(
            "{{ q({en}) | exists e in {e} [ q.{en} = e.{en} and \
             not (exists r in {r} [ r.{rk1} = e.{ek} ]) ] }}"
        ),
        Pattern::NotAll => format!(
            "{{ q({en}) | exists e in {e}, t in {t} [ q.{en} = e.{en} and \
             not (exists r in {r} [ r.{rk1} = e.{ek} and r.{rk2} = t.{tk} ]) ] }}"
        ),
        Pattern::All => format!(
            "{{ q({en}) | exists e in {e} [ q.{en} = e.{en} and \
             not (exists t in {t} [ not (exists r in {r} [ r.{rk1} = e.{ek} and r.{rk2} = t.{tk} ]) ]) ] }}"
        ),
    }
}

/// Parses the pattern query against the schema's catalog.
pub fn pattern_query(schema: &StudySchema, pattern: Pattern) -> CoreResult<TrcQuery> {
    rd_trc::parser::parse_query(&pattern_trc(schema, pattern), &schema.catalog())
}

/// Renders one stimulus (SQL text or diagram DOT).
pub fn render_stimulus(
    schema: &StudySchema,
    pattern: Pattern,
    condition: Condition,
) -> CoreResult<Stimulus> {
    let trc = pattern_trc(schema, pattern);
    let q = pattern_query(schema, pattern)?;
    let rendered = match condition {
        Condition::Sql => {
            let sql = rd_sql::translate::trc_to_sql(&q)?;
            rd_sql::printer::format_sql(&sql)
        }
        Condition::Rd => {
            let d = rd_diagram::translate::from_trc(&q, &schema.catalog())?;
            rd_diagram::render::to_dot(&d)
        }
    };
    Ok(Stimulus {
        schema_index: usize::MAX, // filled by all_stimuli
        pattern,
        condition,
        question: pattern.question(schema.noun, schema.verb, schema.object),
        rendered,
        trc,
    })
}

/// Generates all 256 stimuli.
pub fn all_stimuli() -> CoreResult<Vec<Stimulus>> {
    let schemas = study_schemas();
    let mut out = Vec::with_capacity(256);
    for (i, schema) in schemas.iter().enumerate() {
        for pattern in Pattern::ALL {
            for condition in [Condition::Sql, Condition::Rd] {
                let mut s = render_stimulus(schema, pattern, condition)?;
                s.schema_index = i;
                out.push(s);
            }
        }
    }
    Ok(out)
}

/// The SVG rendering of a diagram stimulus (for artifact export).
pub fn stimulus_svg(schema: &StudySchema, pattern: Pattern) -> CoreResult<String> {
    let q = pattern_query(schema, pattern)?;
    let d = rd_diagram::translate::from_trc(&q, &schema.catalog())?;
    Ok(rd_diagram::render::to_svg(&d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::tutorial;

    #[test]
    fn generates_256_stimuli() {
        let all = all_stimuli().unwrap();
        assert_eq!(all.len(), 256);
        assert!(all.iter().all(|s| s.schema_index < 32));
    }

    #[test]
    fn all_four_patterns_parse_and_evaluate_on_tutorial_schema() {
        use rd_core::{Database, Relation, TableSchema, Value};
        let schema = tutorial();
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("Sailor", ["sid", "sname"]),
                vec![
                    vec![Value::int(1), Value::str("Dustin")],
                    vec![Value::int(2), Value::str("Lubber")],
                    vec![Value::int(3), Value::str("Horatio")],
                ],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("Reserves", ["sid", "bid"]),
                [[1i64, 101], [1, 102], [2, 101]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("Boat", ["bid"]), [[101i64], [102]]).unwrap(),
        );
        let count = |p: Pattern| {
            let q = pattern_query(&schema, p).unwrap();
            rd_trc::eval::eval_query(&q, &db).unwrap().len()
        };
        assert_eq!(count(Pattern::Some), 2); // Dustin, Lubber
        assert_eq!(count(Pattern::NotAny), 1); // Horatio
        assert_eq!(count(Pattern::NotAll), 2); // Lubber, Horatio
        assert_eq!(count(Pattern::All), 1); // Dustin
    }

    #[test]
    fn sql_and_rd_renderings_differ_but_share_trc() {
        let schema = &study_schemas()[0];
        let sql = render_stimulus(schema, Pattern::All, Condition::Sql).unwrap();
        let rd = render_stimulus(schema, Pattern::All, Condition::Rd).unwrap();
        assert_eq!(sql.trc, rd.trc);
        assert!(sql.rendered.contains("SELECT DISTINCT"));
        assert!(sql.rendered.contains("NOT EXISTS"));
        assert!(rd.rendered.starts_with("digraph"));
    }

    #[test]
    fn double_negation_pattern_has_two_nested_boxes() {
        let schema = &study_schemas()[1];
        let rd = render_stimulus(schema, Pattern::All, Condition::Rd).unwrap();
        assert_eq!(rd.rendered.matches("style=\"dashed,rounded\"").count(), 2);
    }

    #[test]
    fn svg_export_works_for_all_patterns() {
        let schema = &study_schemas()[2];
        for p in Pattern::ALL {
            let svg = stimulus_svg(schema, p).unwrap();
            assert!(svg.starts_with("<svg"));
        }
    }

    #[test]
    fn question_texts_match_paper_phrasing() {
        let s = tutorial();
        assert_eq!(
            Pattern::All.question(s.noun, s.verb, s.object),
            "Find sailors who have reserved all boats."
        );
        assert_eq!(
            Pattern::NotAny.question(s.noun, s.verb, s.object),
            "Find sailors who have not reserved any boats."
        );
    }
}
