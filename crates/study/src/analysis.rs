//! The preregistered analysis (§6.2 "Analysis", Appendix O): Results 1–4
//! plus the exploratory ≥90%-accuracy reanalysis.
//!
//! * **Result 1 (speed, Fig. 12a)** — per-participant *median* time per
//!   condition; the headline statistic is the *median of per-participant
//!   ratios* RD/SQL (the paper explains why mean-of-ratios would be a
//!   biased estimator, Appendix O.1).
//! * **Result 2 (learning, Fig. 12c)** — per-half medians and the median
//!   of per-participant H2/H1 ratios per condition.
//! * **Result 3 (accuracy, Fig. 12b)** — per-participant accuracy per
//!   condition; *mean* of the per-participant differences RD − SQL.
//! * **Result 4 (per pattern, Table 1 / Fig. 32)** — medians and ratio
//!   CIs per pattern.
//!
//! All intervals are 95% BCa bootstrap CIs.

use crate::design::{Condition, Pattern};
use crate::simulate::StudyData;
use crate::stats::{bca_ci, mean, median, Estimate};
use serde::Serialize;

/// Per-pattern row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct PatternRow {
    /// P1–P4.
    pub pattern: &'static str,
    /// Median per-participant RD time.
    pub rd: Estimate,
    /// Median per-participant SQL time.
    pub sql: Estimate,
    /// Median of per-participant RD/SQL ratios.
    pub ratio: Estimate,
}

/// The full study report.
#[derive(Debug, Clone, Serialize)]
pub struct StudyReport {
    /// Number of analyzed participants.
    pub n: usize,
    /// Median of per-participant median times, RD.
    pub time_rd: Estimate,
    /// Median of per-participant median times, SQL.
    pub time_sql: Estimate,
    /// Result 1: median of per-participant RD/SQL time ratios.
    pub speed_ratio: Estimate,
    /// Result 2: (H1, H2) medians per condition, SQL then RD.
    pub learning_sql: (Estimate, Estimate),
    /// RD halves.
    pub learning_rd: (Estimate, Estimate),
    /// Result 2 inference: median H2/H1 ratio per condition.
    pub learning_ratio_sql: Estimate,
    /// RD learning ratio.
    pub learning_ratio_rd: Estimate,
    /// Result 3: mean accuracy per condition.
    pub accuracy_rd: Estimate,
    /// SQL accuracy.
    pub accuracy_sql: Estimate,
    /// Result 3: mean per-participant accuracy difference RD − SQL.
    pub accuracy_diff: Estimate,
    /// Result 4 / Table 1.
    pub per_pattern: Vec<PatternRow>,
}

fn times_of(data: &StudyData, pick: impl Fn(&crate::simulate::Response) -> bool) -> Vec<Vec<f64>> {
    data.participants
        .iter()
        .map(|p| {
            p.responses
                .iter()
                .filter(|r| pick(r))
                .map(|r| r.seconds)
                .collect()
        })
        .collect()
}

fn per_participant_medians(groups: &[Vec<f64>]) -> Vec<f64> {
    groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| median(g))
        .collect()
}

/// Runs the preregistered analysis over (optionally filtered) data.
pub fn analyze(data: &StudyData) -> StudyReport {
    analyze_seeded(data, 0xB007)
}

/// Analysis with an explicit bootstrap seed (CIs are deterministic).
pub fn analyze_seeded(data: &StudyData, seed: u64) -> StudyReport {
    const B: usize = 2000;
    let is = |c: Condition| move |r: &crate::simulate::Response| r.question.condition == c;

    // Result 1: speed.
    let rd_meds = per_participant_medians(&times_of(data, is(Condition::Rd)));
    let sql_meds = per_participant_medians(&times_of(data, is(Condition::Sql)));
    let ratios: Vec<f64> = rd_meds.iter().zip(&sql_meds).map(|(r, s)| r / s).collect();
    let time_rd = bca_ci(&rd_meds, median, B, seed);
    let time_sql = bca_ci(&sql_meds, median, B, seed ^ 1);
    let speed_ratio = bca_ci(&ratios, median, B, seed ^ 2);

    // Result 2: learning.
    let half = |c: Condition, second: bool| {
        per_participant_medians(&times_of(data, move |r| {
            r.question.condition == c && r.question.second_half == second
        }))
    };
    let sql_h1 = half(Condition::Sql, false);
    let sql_h2 = half(Condition::Sql, true);
    let rd_h1 = half(Condition::Rd, false);
    let rd_h2 = half(Condition::Rd, true);
    let ratio_of =
        |h2: &[f64], h1: &[f64]| -> Vec<f64> { h2.iter().zip(h1).map(|(b, a)| b / a).collect() };
    let learning_ratio_sql = bca_ci(&ratio_of(&sql_h2, &sql_h1), median, B, seed ^ 3);
    let learning_ratio_rd = bca_ci(&ratio_of(&rd_h2, &rd_h1), median, B, seed ^ 4);

    // Result 3: accuracy.
    let acc = |c: Condition| -> Vec<f64> {
        data.participants
            .iter()
            .map(|p| {
                let rs: Vec<&crate::simulate::Response> = p
                    .responses
                    .iter()
                    .filter(|r| r.question.condition == c)
                    .collect();
                rs.iter().filter(|r| r.correct).count() as f64 / rs.len() as f64
            })
            .collect()
    };
    let acc_rd = acc(Condition::Rd);
    let acc_sql = acc(Condition::Sql);
    let diffs: Vec<f64> = acc_rd.iter().zip(&acc_sql).map(|(r, s)| r - s).collect();

    // Result 4: per pattern.
    let mut per_pattern = Vec::new();
    for (i, p) in Pattern::ALL.into_iter().enumerate() {
        let rd = per_participant_medians(&times_of(data, move |r| {
            r.question.condition == Condition::Rd && r.question.pattern == p
        }));
        let sql = per_participant_medians(&times_of(data, move |r| {
            r.question.condition == Condition::Sql && r.question.pattern == p
        }));
        let ratios: Vec<f64> = rd.iter().zip(&sql).map(|(r, s)| r / s).collect();
        per_pattern.push(PatternRow {
            pattern: p.label(),
            rd: bca_ci(&rd, median, B, seed ^ (10 + i as u64)),
            sql: bca_ci(&sql, median, B, seed ^ (20 + i as u64)),
            ratio: bca_ci(&ratios, median, B, seed ^ (30 + i as u64)),
        });
    }

    StudyReport {
        n: data.participants.len(),
        time_rd,
        time_sql,
        speed_ratio,
        learning_sql: (
            bca_ci(&sql_h1, median, B, seed ^ 5),
            bca_ci(&sql_h2, median, B, seed ^ 6),
        ),
        learning_rd: (
            bca_ci(&rd_h1, median, B, seed ^ 7),
            bca_ci(&rd_h2, median, B, seed ^ 8),
        ),
        learning_ratio_sql,
        learning_ratio_rd,
        accuracy_rd: bca_ci(&acc_rd, mean, B, seed ^ 9),
        accuracy_sql: bca_ci(&acc_sql, mean, B, seed ^ 10),
        accuracy_diff: bca_ci(&diffs, mean, B, seed ^ 11),
        per_pattern,
    }
}

/// Exploratory reanalysis (Appendix O.4): restrict to participants with
/// accuracy above `threshold` (the paper uses 0.90).
pub fn filter_by_accuracy(data: &StudyData, threshold: f64) -> StudyData {
    StudyData {
        participants: data
            .participants
            .iter()
            .filter(|p| p.accuracy() > threshold)
            .cloned()
            .collect(),
        submissions: data.submissions,
        rejected: data.rejected,
    }
}

impl StudyReport {
    /// Renders the report in the paper's result style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Controlled user study, n = {}\n\n", self.n));
        out.push_str("Result 1 (Speed, Fig. 12a)\n");
        out.push_str(&format!(
            "  median time per participant   SQL {}   RD {}\n",
            self.time_sql.fmt(2),
            self.time_rd.fmt(2)
        ));
        out.push_str(&format!(
            "  median ratio RD/SQL           {}\n",
            self.speed_ratio.fmt(2)
        ));
        out.push_str(&format!(
            "  -> CI {} 1.00: {}\n\n",
            if self.speed_ratio.hi < 1.0 {
                "excludes"
            } else {
                "overlaps"
            },
            if self.speed_ratio.hi < 1.0 {
                "strong evidence that RD is faster"
            } else {
                "no evidence of a speed difference"
            }
        ));
        out.push_str("Result 2 (Learning, Fig. 12c)\n");
        out.push_str(&format!(
            "  SQL  H1 {}  H2 {}  ratio H2/H1 {}\n",
            self.learning_sql.0.fmt(1),
            self.learning_sql.1.fmt(1),
            self.learning_ratio_sql.fmt(2)
        ));
        out.push_str(&format!(
            "  RD   H1 {}  H2 {}  ratio H2/H1 {}\n\n",
            self.learning_rd.0.fmt(1),
            self.learning_rd.1.fmt(1),
            self.learning_ratio_rd.fmt(2)
        ));
        out.push_str("Result 3 (Accuracy, Fig. 12b)\n");
        out.push_str(&format!(
            "  mean accuracy   RD {}   SQL {}\n",
            pct(&self.accuracy_rd),
            pct(&self.accuracy_sql)
        ));
        out.push_str(&format!(
            "  mean difference RD - SQL: {}\n\n",
            pct(&self.accuracy_diff)
        ));
        out.push_str("Result 4 (Per pattern, Table 1 / Fig. 32)\n");
        out.push_str("  pattern   RD median              SQL median             ratio RD/SQL\n");
        for row in &self.per_pattern {
            out.push_str(&format!(
                "  {:<8} {:<22} {:<22} {}\n",
                row.pattern,
                row.rd.fmt(2),
                row.sql.fmt(2),
                row.ratio.fmt(2)
            ));
        }
        out
    }
}

fn pct(e: &Estimate) -> String {
    format!(
        "{:.0}%, 95% CI [{:.0}%, {:.0}%]",
        e.value * 100.0,
        e.lo * 100.0,
        e.hi * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{run_study, SimConfig};

    fn report() -> StudyReport {
        analyze(&run_study(&SimConfig::default()))
    }

    #[test]
    fn result1_speed_ratio_matches_paper_shape() {
        let r = report();
        // Paper: ratio 0.70, CI [0.63, 0.77]. Shape check: RD faster, CI
        // excludes 1.0, ratio in a sane band.
        assert!(
            r.speed_ratio.value > 0.55 && r.speed_ratio.value < 0.85,
            "ratio {}",
            r.speed_ratio.value
        );
        assert!(r.speed_ratio.hi < 1.0, "CI must exclude 1.0");
        assert!(r.time_rd.value < r.time_sql.value);
    }

    #[test]
    fn result2_learning_in_both_conditions() {
        let r = report();
        assert!(r.learning_ratio_sql.value < 0.9);
        assert!(r.learning_ratio_rd.value < 0.9);
        assert!(r.learning_sql.1.value < r.learning_sql.0.value);
        assert!(r.learning_rd.1.value < r.learning_rd.0.value);
        // RD faster than SQL in both halves (Fig. 12c).
        assert!(r.learning_rd.0.value < r.learning_sql.0.value);
        assert!(r.learning_rd.1.value < r.learning_sql.1.value);
    }

    #[test]
    fn result3_accuracy_gap_matches_paper_shape() {
        let r = report();
        // Paper: difference 21%, CI [13%, 29%] — require a positive gap
        // whose CI excludes 0.
        assert!(r.accuracy_diff.value > 0.10, "{}", r.accuracy_diff.value);
        assert!(r.accuracy_diff.lo > 0.0);
        assert!(r.accuracy_rd.value > 0.85);
        assert!(r.accuracy_sql.value < 0.85);
    }

    #[test]
    fn result4_every_pattern_ratio_below_one() {
        let r = report();
        assert_eq!(r.per_pattern.len(), 4);
        for row in &r.per_pattern {
            assert!(
                row.ratio.hi < 1.0,
                "pattern {} CI {:?} should be fully below 1.0",
                row.pattern,
                row.ratio
            );
        }
    }

    #[test]
    fn exploratory_filter_keeps_high_accuracy_subset() {
        let data = run_study(&SimConfig::default());
        let filtered = filter_by_accuracy(&data, 0.90);
        assert!(!filtered.participants.is_empty());
        assert!(filtered.participants.len() < data.participants.len());
        let r = analyze(&filtered);
        // Speed effect persists in the subset (Appendix O.4 Figs. 33-35).
        assert!(r.speed_ratio.hi < 1.0);
        // Accuracy difference shrinks (Figs. 36-37).
        let full = analyze(&data);
        assert!(r.accuracy_diff.value < full.accuracy_diff.value);
    }

    #[test]
    fn render_contains_all_results() {
        let text = report().render();
        assert!(text.contains("Result 1"));
        assert!(text.contains("Result 2"));
        assert!(text.contains("Result 3"));
        assert!(text.contains("Result 4"));
        assert!(text.contains("median ratio RD/SQL"));
    }
}
