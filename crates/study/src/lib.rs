//! # rd-study — the controlled user study (§6.2, Appendix O)
//!
//! The paper's second applicability study is a preregistered, within-
//! subjects MTurk experiment: 50 participants × 32 questions, alternating
//! between Relational Diagrams and formatted SQL, four query patterns on
//! 32 different schemas, counterbalanced and randomized.
//!
//! This crate reproduces the *entire pipeline*:
//!
//! * [`schemas`] — the 32 study schemas plus the sailors tutorial schema;
//! * [`stimuli`] — all 256 stimuli (32 schemas × 4 patterns × 2
//!   conditions): TRC source, formatted SQL, and the Relational Diagram,
//!   generated through the workspace's own translators;
//! * [`design`] — counterbalancing and randomization (Fig. 11): groups,
//!   per-half multiset permutations (8!/2⁴ = 2520 sequences per half per
//!   condition, a 2·2520⁴ treatment space);
//! * [`simulate`] — the substitution for human participants (DESIGN.md
//!   §4.1): a lognormal response-time model and a Bernoulli accuracy model
//!   with per-participant random effects, calibrated to the paper's
//!   published statistics, plus the recruitment funnel (oversample, ≥50%
//!   accuracy acceptance, first-25-per-group);
//! * [`stats`] — medians, means, and BCa bootstrap confidence intervals
//!   (Efron 1987), exactly as preregistered;
//! * [`analysis`] — Results 1–4 (Fig. 12a/b/c, Table 1/Fig. 32) and the
//!   exploratory ≥90 %-accuracy reanalysis (Figs. 33–38).

pub mod analysis;
pub mod design;
pub mod export;
pub mod schemas;
pub mod simulate;
pub mod stats;
pub mod stimuli;

pub use analysis::{analyze, StudyReport};
pub use design::{participant_sequence, Condition, Pattern, Question};
pub use simulate::{run_study, SimConfig, StudyData};
pub use stimuli::{all_stimuli, render_stimulus, Stimulus};
