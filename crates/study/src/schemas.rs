//! The study schemas: 32 entity–relationship–entity triples "found or
//! adapted from common textbooks" (§6.2) plus the sailors tutorial schema.

use rd_core::{Catalog, TableSchema};
use serde::Serialize;

/// One study schema: an entity table with a name attribute, a relationship
/// table, and a target entity table (the sailors–reserves–boats shape all
/// four patterns are phrased over).
#[derive(Debug, Clone, Serialize)]
pub struct StudySchema {
    /// Source entity table, its key, and its name attribute.
    pub entity: (&'static str, &'static str, &'static str),
    /// Relationship table and its two foreign keys.
    pub rel: (&'static str, &'static str, &'static str),
    /// Target entity table and its key.
    pub target: (&'static str, &'static str),
    /// Noun used in the question text (e.g. "sailors").
    pub noun: &'static str,
    /// Verb phrase (e.g. "reserved").
    pub verb: &'static str,
    /// Target noun (e.g. "boats").
    pub object: &'static str,
}

impl StudySchema {
    /// The catalog for this schema.
    pub fn catalog(&self) -> Catalog {
        Catalog::from_schemas([
            TableSchema::new(self.entity.0, [self.entity.1, self.entity.2]),
            TableSchema::new(self.rel.0, [self.rel.1, self.rel.2]),
            TableSchema::new(self.target.0, [self.target.1]),
        ])
        .unwrap()
    }
}

macro_rules! schema {
    ($e:literal, $ek:literal, $en:literal, $r:literal, $rk1:literal, $rk2:literal,
     $t:literal, $tk:literal, $noun:literal, $verb:literal, $obj:literal) => {
        StudySchema {
            entity: ($e, $ek, $en),
            rel: ($r, $rk1, $rk2),
            target: ($t, $tk),
            noun: $noun,
            verb: $verb,
            object: $obj,
        }
    };
}

/// The tutorial schema (sailors; excluded from the 32 study questions,
/// Appendix O Fig. 31).
pub fn tutorial() -> StudySchema {
    schema!(
        "Sailor", "sid", "sname", "Reserves", "sid", "bid", "Boat", "bid", "sailors", "reserved",
        "boats"
    )
}

/// The 32 study schemas.
pub fn study_schemas() -> Vec<StudySchema> {
    vec![
        schema!(
            "Student", "sid", "sname", "Takes", "sid", "cid", "Course", "cid", "students", "taken",
            "courses"
        ),
        schema!(
            "Actor",
            "aid",
            "aname",
            "PlaysIn",
            "aid",
            "mid",
            "Movie",
            "mid",
            "actors",
            "played in",
            "movies"
        ),
        schema!(
            "Supplier",
            "sno",
            "sname",
            "Supplies",
            "sno",
            "pno",
            "Part",
            "pno",
            "suppliers",
            "supplied",
            "parts"
        ),
        schema!(
            "Customer",
            "cid",
            "cname",
            "Buys",
            "cid",
            "prid",
            "Product",
            "prid",
            "customers",
            "bought",
            "products"
        ),
        schema!(
            "Author", "auid", "auname", "Writes", "auid", "bkid", "Book", "bkid", "authors",
            "written", "books"
        ),
        schema!(
            "Chef", "chid", "chname", "Cooks", "chid", "dishid", "Dish", "dishid", "chefs",
            "cooked", "dishes"
        ),
        schema!(
            "Doctor", "did", "dname", "Treats", "did", "patid", "Patient", "patid", "doctors",
            "treated", "patients"
        ),
        schema!(
            "Pilot", "plid", "plname", "Flies", "plid", "acid", "Aircraft", "acid", "pilots",
            "flown", "aircraft"
        ),
        schema!(
            "Teacher", "tid", "tname", "Teaches", "tid", "clid", "Class", "clid", "teachers",
            "taught", "classes"
        ),
        schema!(
            "Player",
            "pid",
            "pname",
            "PlaysFor",
            "pid",
            "tmid",
            "Team",
            "tmid",
            "players",
            "played for",
            "teams"
        ),
        schema!(
            "Guide", "gid", "gname", "Leads", "gid", "trid", "Tour", "trid", "guides", "led",
            "tours"
        ),
        schema!(
            "Member", "mid", "mname", "Attends", "mid", "evid", "Eventt", "evid", "members",
            "attended", "events"
        ),
        schema!(
            "Critic",
            "crid",
            "crname",
            "Reviews",
            "crid",
            "rsid",
            "Restaurant",
            "rsid",
            "critics",
            "reviewed",
            "restaurants"
        ),
        schema!(
            "Employee",
            "eid",
            "ename",
            "WorksOn",
            "eid",
            "prjid",
            "Project",
            "prjid",
            "employees",
            "worked on",
            "projects"
        ),
        schema!(
            "Farmer", "fid", "fname", "Grows", "fid", "crpid", "Crop", "crpid", "farmers", "grown",
            "crops"
        ),
        schema!(
            "Artist", "arid", "arname", "Paints", "arid", "cnvid", "Canvas", "cnvid", "artists",
            "painted", "canvases"
        ),
        schema!(
            "Lawyer", "lid", "lname", "Handles", "lid", "csid", "CaseFile", "csid", "lawyers",
            "handled", "cases"
        ),
        schema!(
            "Musician",
            "muid",
            "muname",
            "Performs",
            "muid",
            "sgid",
            "Song",
            "sgid",
            "musicians",
            "performed",
            "songs"
        ),
        schema!(
            "Editor", "edid", "edname", "Edits", "edid", "artid", "Article", "artid", "editors",
            "edited", "articles"
        ),
        schema!(
            "Hiker",
            "hid",
            "hname",
            "Climbs",
            "hid",
            "mtid",
            "Mountain",
            "mtid",
            "hikers",
            "climbed",
            "mountains"
        ),
        schema!(
            "Barista", "bid2", "bname2", "Brews", "bid2", "cfid", "Coffee", "cfid", "baristas",
            "brewed", "coffees"
        ),
        schema!(
            "Vet", "vid", "vname", "Examines", "vid", "anid", "Animal", "anid", "vets", "examined",
            "animals"
        ),
        schema!(
            "Coach", "coid", "coname", "Trains", "coid", "athid", "Athlete", "athid", "coaches",
            "trained", "athletes"
        ),
        schema!(
            "Librarian",
            "lbid",
            "lbname",
            "Shelves",
            "lbid",
            "vlid",
            "Volume",
            "vlid",
            "librarians",
            "shelved",
            "volumes"
        ),
        schema!(
            "Mechanic",
            "mcid",
            "mcname",
            "Repairs",
            "mcid",
            "vhid",
            "Vehicle",
            "vhid",
            "mechanics",
            "repaired",
            "vehicles"
        ),
        schema!(
            "Gardener",
            "gdid",
            "gdname",
            "Plants",
            "gdid",
            "flid",
            "Flower",
            "flid",
            "gardeners",
            "planted",
            "flowers"
        ),
        schema!(
            "Broker", "brid", "brname", "Trades", "brid", "stid", "Stock", "stid", "brokers",
            "traded", "stocks"
        ),
        schema!(
            "Nurse",
            "nid",
            "nname",
            "Assists",
            "nid",
            "wdid",
            "Ward",
            "wdid",
            "nurses",
            "assisted in",
            "wards"
        ),
        schema!(
            "Curator",
            "cuid",
            "cuname",
            "Exhibits",
            "cuid",
            "pcid",
            "Piece",
            "pcid",
            "curators",
            "exhibited",
            "pieces"
        ),
        schema!(
            "Referee",
            "rfid",
            "rfname",
            "Officiates",
            "rfid",
            "gmid",
            "Game",
            "gmid",
            "referees",
            "officiated",
            "games"
        ),
        schema!(
            "Tailor", "tlid", "tlname", "Sews", "tlid", "grmid", "Garment", "grmid", "tailors",
            "sewn", "garments"
        ),
        schema!(
            "Scout", "scid", "scname", "Visits", "scid", "cmpid", "Camp", "cmpid", "scouts",
            "visited", "camps"
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn there_are_32_study_schemas_all_valid() {
        let s = study_schemas();
        assert_eq!(s.len(), 32);
        for schema in &s {
            let cat = schema.catalog();
            assert_eq!(cat.len(), 3);
        }
    }

    #[test]
    fn table_names_are_globally_unique() {
        let mut names = BTreeSet::new();
        for s in study_schemas().iter().chain([tutorial()].iter()) {
            assert!(names.insert(s.entity.0), "duplicate {}", s.entity.0);
            assert!(names.insert(s.rel.0), "duplicate {}", s.rel.0);
            assert!(names.insert(s.target.0), "duplicate {}", s.target.0);
        }
    }

    #[test]
    fn tutorial_is_the_sailors_schema() {
        assert_eq!(tutorial().entity.0, "Sailor");
    }
}
