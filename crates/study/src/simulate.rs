//! Simulated participants — the substitution for the paper's MTurk pool
//! (DESIGN.md §4.1).
//!
//! Response times follow a lognormal model calibrated to the paper's
//! per-pattern medians (Fig. 32) with a learning (half) effect matching
//! Result 2 and per-participant speed/skill random effects. Accuracy is
//! Bernoulli with condition base rates from Result 3. The recruitment
//! funnel mirrors Appendix O.1: keep submitting simulated workers, accept
//! those with ≥ 50% accuracy, and stop at the first 25 accepted starters
//! per group.

use crate::design::{participant_sequence, Condition, Pattern, Question};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Calibration constants (from the paper's published statistics).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Median seconds per (condition, pattern), first half ≈ Fig. 32
    /// values scaled by the H1/H2 learning split of Fig. 12c.
    pub base_seconds_sql: [f64; 4],
    /// RD per-pattern medians.
    pub base_seconds_rd: [f64; 4],
    /// Multiplicative learning effect: H2 time ≈ `learning` × H1 time
    /// (Result 2 reports ≈ 0.70 for both conditions).
    pub learning: f64,
    /// Mean accuracy per condition (Result 3: RD 92%, SQL 72%).
    pub accuracy_sql: f64,
    /// RD accuracy.
    pub accuracy_rd: f64,
    /// Std-dev of the per-participant log-speed random effect.
    pub sigma_participant: f64,
    /// Std-dev of the per-question log-time noise.
    pub sigma_noise: f64,
    /// Std-dev of the per-participant accuracy random effect.
    pub sigma_skill: f64,
    /// Fraction of careless workers (low-accuracy submissions that the
    /// >=50% filter rejects; the paper approved only 58 of 120).
    pub careless_rate: f64,
    /// Number of accepted participants per group (paper: 25 + 25).
    pub per_group: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            // SQL bases are the Fig. 32 per-pattern medians; RD bases are
            // calibrated from Table 1's per-pattern RD/SQL *ratios*
            // (.64, .83, .66, .71), which are the paper's inferential
            // statistics (the marginal RD medians land within their CIs).
            base_seconds_sql: [15.1, 13.3, 14.1, 12.0],
            base_seconds_rd: [9.66, 11.04, 9.33, 8.52],
            learning: 0.70,
            accuracy_sql: 0.72,
            accuracy_rd: 0.92,
            sigma_participant: 0.28,
            sigma_noise: 0.30,
            sigma_skill: 0.10,
            careless_rate: 0.45,
            per_group: 25,
            seed: 0x5EED_2024,
        }
    }
}

/// One answered question.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Response {
    /// The question slot.
    pub question: Question,
    /// Seconds spent before answering.
    pub seconds: f64,
    /// Whether the chosen pattern was correct.
    pub correct: bool,
}

/// One accepted participant's session.
#[derive(Debug, Clone, Serialize)]
pub struct Participant {
    /// Participant id (accepted order).
    pub id: usize,
    /// `true` if the participant started with SQL (group 1).
    pub group1: bool,
    /// The 32 responses.
    pub responses: Vec<Response>,
}

impl Participant {
    /// Overall accuracy (0..=1).
    pub fn accuracy(&self) -> f64 {
        self.responses.iter().filter(|r| r.correct).count() as f64 / self.responses.len() as f64
    }
}

/// The collected study data plus funnel statistics.
#[derive(Debug, Clone, Serialize)]
pub struct StudyData {
    /// Accepted participants (25 per group).
    pub participants: Vec<Participant>,
    /// Total simulated submissions (the paper observed 120).
    pub submissions: usize,
    /// Submissions rejected for accuracy < 50%.
    pub rejected: usize,
}

/// Standard-normal draw via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn pattern_idx(p: Pattern) -> usize {
    match p {
        Pattern::Some => 0,
        Pattern::NotAny => 1,
        Pattern::NotAll => 2,
        Pattern::All => 3,
    }
}

/// Simulates one worker's session.
fn simulate_worker(cfg: &SimConfig, group1: bool, seed: u64) -> Participant {
    let mut rng = StdRng::seed_from_u64(seed);
    let sequence = participant_sequence(group1, seed ^ 0xABCD);
    // Random effects: some workers are fast/slow, careful/careless.
    let speed = normal(&mut rng) * cfg.sigma_participant;
    let careless = rng.random_range(0.0..1.0) < cfg.careless_rate;
    let skill = if careless {
        // Careless workers hover near chance and fail the 50% filter.
        rng.random_range(-0.55..-0.35)
    } else {
        normal(&mut rng) * cfg.sigma_skill
    };
    let mut responses = Vec::with_capacity(32);
    for q in sequence {
        let base = match q.condition {
            Condition::Sql => cfg.base_seconds_sql[pattern_idx(q.pattern)],
            Condition::Rd => cfg.base_seconds_rd[pattern_idx(q.pattern)],
        };
        // Split the overall per-pattern median into H1/H2 around the
        // learning ratio: H1 = base / sqrt(learning), H2 = H1 * learning.
        let h1 = base / cfg.learning.sqrt();
        let half_factor = if q.second_half { cfg.learning } else { 1.0 };
        let ln_t = (h1 * half_factor).ln() + speed + normal(&mut rng) * cfg.sigma_noise;
        let seconds = ln_t.exp().clamp(1.0, 120.0);
        let base_acc = match q.condition {
            Condition::Sql => cfg.accuracy_sql,
            Condition::Rd => cfg.accuracy_rd,
        };
        let p_correct = (base_acc + skill).clamp(0.05, 0.999);
        let correct = rng.random_range(0.0..1.0) < p_correct;
        responses.push(Response {
            question: q,
            seconds,
            correct,
        });
    }
    Participant {
        id: 0,
        group1,
        responses,
    }
}

/// Runs the full recruitment funnel and returns the accepted sample.
pub fn run_study(cfg: &SimConfig) -> StudyData {
    let mut accepted: Vec<Participant> = Vec::new();
    let mut submissions = 0usize;
    let mut rejected = 0usize;
    let mut counts = [0usize; 2];
    let mut worker_seed = cfg.seed;
    while counts[0] < cfg.per_group || counts[1] < cfg.per_group {
        // Alternate assignment as workers arrive, like the live study.
        let group1 = if counts[0] < cfg.per_group && counts[1] < cfg.per_group {
            submissions.is_multiple_of(2)
        } else {
            counts[0] < cfg.per_group
        };
        worker_seed = worker_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut p = simulate_worker(cfg, group1, worker_seed);
        submissions += 1;
        // Acceptance: at least 16 of 32 correct (Appendix O.1).
        if p.responses.iter().filter(|r| r.correct).count() < 16 {
            rejected += 1;
            continue;
        }
        let g = usize::from(!group1);
        if counts[g] >= cfg.per_group {
            continue; // group full; paper kept the first 25 per group
        }
        counts[g] += 1;
        p.id = accepted.len();
        accepted.push(p);
    }
    StudyData {
        participants: accepted,
        submissions,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funnel_produces_balanced_groups() {
        let data = run_study(&SimConfig::default());
        assert_eq!(data.participants.len(), 50);
        let g1 = data.participants.iter().filter(|p| p.group1).count();
        assert_eq!(g1, 25);
        assert!(data.submissions >= 50);
        // Everyone accepted has >= 50% accuracy.
        assert!(data.participants.iter().all(|p| p.accuracy() >= 0.5));
    }

    #[test]
    fn rd_is_faster_and_more_accurate_in_aggregate() {
        let data = run_study(&SimConfig::default());
        let mut sql_times = Vec::new();
        let mut rd_times = Vec::new();
        let mut sql_correct = 0usize;
        let mut sql_total = 0usize;
        let mut rd_correct = 0usize;
        let mut rd_total = 0usize;
        for p in &data.participants {
            for r in &p.responses {
                match r.question.condition {
                    Condition::Sql => {
                        sql_times.push(r.seconds);
                        sql_total += 1;
                        sql_correct += r.correct as usize;
                    }
                    Condition::Rd => {
                        rd_times.push(r.seconds);
                        rd_total += 1;
                        rd_correct += r.correct as usize;
                    }
                }
            }
        }
        let med = |v: &[f64]| crate::stats::median(v);
        assert!(med(&rd_times) < med(&sql_times));
        let sql_acc = sql_correct as f64 / sql_total as f64;
        let rd_acc = rd_correct as f64 / rd_total as f64;
        assert!(rd_acc > sql_acc + 0.08, "rd {rd_acc} vs sql {sql_acc}");
    }

    #[test]
    fn simulation_is_reproducible() {
        let a = run_study(&SimConfig::default());
        let b = run_study(&SimConfig::default());
        assert_eq!(a.submissions, b.submissions);
        assert_eq!(
            a.participants[0].responses[0].seconds,
            b.participants[0].responses[0].seconds
        );
    }

    #[test]
    fn learning_effect_visible() {
        let data = run_study(&SimConfig::default());
        let mut h1 = Vec::new();
        let mut h2 = Vec::new();
        for p in &data.participants {
            for r in &p.responses {
                if r.question.second_half {
                    h2.push(r.seconds);
                } else {
                    h1.push(r.seconds);
                }
            }
        }
        assert!(crate::stats::median(&h2) < crate::stats::median(&h1));
    }
}
