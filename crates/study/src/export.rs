//! Machine-readable artifact export, mirroring the paper's OSF materials:
//! the stimulus index (OSF `u8bf9`/`sn83j`), the collected data
//! (OSF `8vm42`), and the analysis report.

use crate::analysis::StudyReport;
use crate::simulate::StudyData;
use crate::stimuli::Stimulus;
use rd_core::{CoreError, CoreResult};

/// Serializes the stimulus index as JSON (one record per stimulus:
/// schema, pattern, condition, question text, rendered source).
pub fn stimuli_json(stimuli: &[Stimulus]) -> CoreResult<String> {
    serde_json::to_string_pretty(stimuli)
        .map_err(|e| CoreError::Invalid(format!("stimulus serialization failed: {e}")))
}

/// Serializes the collected per-response study data as JSON.
pub fn data_json(data: &StudyData) -> CoreResult<String> {
    serde_json::to_string_pretty(data)
        .map_err(|e| CoreError::Invalid(format!("data serialization failed: {e}")))
}

/// Serializes the analysis report (all estimates and CIs) as JSON.
pub fn report_json(report: &StudyReport) -> CoreResult<String> {
    serde_json::to_string_pretty(report)
        .map_err(|e| CoreError::Invalid(format!("report serialization failed: {e}")))
}

/// The stimulus index as CSV (like OSF `u8bf9`): one row per stimulus
/// with schema index, pattern, and condition.
pub fn stimuli_index_csv(stimuli: &[Stimulus]) -> String {
    let mut out = String::from("schema_index,pattern,condition,question\n");
    for s in stimuli {
        let cond = match s.condition {
            crate::design::Condition::Sql => "SQL",
            crate::design::Condition::Rd => "RD",
        };
        out.push_str(&format!(
            "{},{},{},\"{}\"\n",
            s.schema_index,
            s.pattern.label(),
            cond,
            s.question.replace('"', "\"\"")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{run_study, SimConfig};

    #[test]
    fn stimuli_json_and_csv_roundtrip_basics() {
        let stimuli = crate::stimuli::all_stimuli().unwrap();
        let json = stimuli_json(&stimuli).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 256);
        let csv = stimuli_index_csv(&stimuli);
        assert_eq!(csv.lines().count(), 257); // header + 256 rows
        assert!(csv.contains("P4,RD"));
    }

    #[test]
    fn data_and_report_serialize() {
        let cfg = SimConfig {
            per_group: 3,
            ..SimConfig::default()
        };
        let data = run_study(&cfg);
        let json = data_json(&data).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["participants"].as_array().unwrap().len(), 6);
        let report = crate::analysis::analyze(&data);
        let rjson = report_json(&report).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&rjson).unwrap();
        assert!(parsed["speed_ratio"]["value"].as_f64().unwrap() > 0.0);
    }
}
