//! Counterbalancing and randomization (§6.2, Fig. 11).
//!
//! Each participant answers 32 questions, one per schema, alternating
//! between conditions. Group 1 starts with SQL, group 2 with Relational
//! Diagrams. Within each half (16 questions) and condition (8 questions),
//! each of the four patterns appears exactly twice — a multiset
//! permutation of `[P1 P1 P2 P2 P3 P3 P4 P4]`, of which there are
//! 8!/(2!⁴) = 2520; a full treatment draws four of them independently
//! (2·2520⁴ treatments, Appendix O.1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

/// The two study conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Condition {
    /// Formatted SQL text.
    Sql,
    /// Relational Diagrams.
    Rd,
}

/// The four query patterns (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Pattern {
    /// (1) …who have reserved some boat.
    Some,
    /// (2) …who have not reserved any boat.
    NotAny,
    /// (3) …who have not reserved all boats.
    NotAll,
    /// (4) …who have reserved all boats (double negation).
    All,
}

impl Pattern {
    /// All four patterns in paper order.
    pub const ALL: [Pattern; 4] = [
        Pattern::Some,
        Pattern::NotAny,
        Pattern::NotAll,
        Pattern::All,
    ];

    /// P1–P4 label.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Some => "P1",
            Pattern::NotAny => "P2",
            Pattern::NotAll => "P3",
            Pattern::All => "P4",
        }
    }

    /// The question text template instantiated by the stimuli module.
    pub fn question(&self, noun: &str, verb: &str, object: &str) -> String {
        match self {
            Pattern::Some => format!("Find {noun} who have {verb} some {object}."),
            Pattern::NotAny => format!("Find {noun} who have not {verb} any {object}."),
            Pattern::NotAll => format!("Find {noun} who have not {verb} all {object}."),
            Pattern::All => format!("Find {noun} who have {verb} all {object}."),
        }
    }
}

/// One question slot in a participant's session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Question {
    /// 0-based position (0..32); schema index equals position (§6.2: "all
    /// participants see the j-th question on the j-th schema").
    pub index: usize,
    /// Condition shown.
    pub condition: Condition,
    /// Pattern asked.
    pub pattern: Pattern,
    /// `false` for the first half, `true` for the second.
    pub second_half: bool,
}

/// Draws one multiset permutation of the 8-slot pattern sequence
/// `[P1 P1 P2 P2 P3 P3 P4 P4]`.
fn pattern_block(rng: &mut StdRng) -> Vec<Pattern> {
    let mut block = vec![
        Pattern::Some,
        Pattern::Some,
        Pattern::NotAny,
        Pattern::NotAny,
        Pattern::NotAll,
        Pattern::NotAll,
        Pattern::All,
        Pattern::All,
    ];
    block.shuffle(rng);
    block
}

/// Builds the 32-question sequence for one participant.
///
/// `group1` participants start with SQL; conditions alternate with every
/// question. Four independent pattern blocks cover (condition × half).
pub fn participant_sequence(group1: bool, seed: u64) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Blocks: [cond_even, cond_odd] × [half1, half2].
    let blocks = [
        [pattern_block(&mut rng), pattern_block(&mut rng)],
        [pattern_block(&mut rng), pattern_block(&mut rng)],
    ];
    let mut out = Vec::with_capacity(32);
    let mut cursor = [[0usize; 2]; 2]; // [half][parity]
    for index in 0..32 {
        let half = usize::from(index >= 16);
        let parity = index % 2;
        let condition = match (group1, parity) {
            (true, 0) | (false, 1) => Condition::Sql,
            _ => Condition::Rd,
        };
        let pattern = blocks[half][parity][cursor[half][parity]];
        cursor[half][parity] += 1;
        out.push(Question {
            index,
            condition,
            pattern,
            second_half: half == 1,
        });
    }
    out
}

/// Number of distinct 8-slot pattern blocks: 8!/(2!⁴) = 2520
/// (Appendix O.1).
pub fn block_count() -> usize {
    let fact = |n: u64| (1..=n).product::<u64>();
    (fact(8) / (fact(2).pow(4))) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn multiset_permutation_count_is_2520() {
        assert_eq!(block_count(), 2520);
    }

    #[test]
    fn sequence_is_counterbalanced() {
        for (group1, seed) in [(true, 7u64), (false, 8), (true, 99), (false, 1234)] {
            let seq = participant_sequence(group1, seed);
            assert_eq!(seq.len(), 32);
            // Conditions alternate.
            for w in seq.windows(2) {
                assert_ne!(w[0].condition, w[1].condition);
            }
            // Group 1 starts with SQL, group 2 with RD.
            assert_eq!(
                seq[0].condition,
                if group1 {
                    Condition::Sql
                } else {
                    Condition::Rd
                }
            );
            // Each (half, condition, pattern) cell appears exactly twice.
            let mut cells: BTreeMap<(bool, bool, Pattern), usize> = BTreeMap::new();
            for q in &seq {
                *cells
                    .entry((q.second_half, q.condition == Condition::Sql, q.pattern))
                    .or_default() += 1;
            }
            assert_eq!(cells.len(), 16);
            assert!(cells.values().all(|&c| c == 2), "{cells:?}");
        }
    }

    #[test]
    fn sequences_vary_with_seed() {
        let a = participant_sequence(true, 1);
        let b = participant_sequence(true, 2);
        assert_ne!(
            a.iter().map(|q| q.pattern).collect::<Vec<_>>(),
            b.iter().map(|q| q.pattern).collect::<Vec<_>>()
        );
    }

    #[test]
    fn schema_index_equals_question_position() {
        let seq = participant_sequence(true, 5);
        for (i, q) in seq.iter().enumerate() {
            assert_eq!(q.index, i);
        }
    }
}
