//! Statistics for the preregistered analysis: medians, means, and
//! bias-corrected and accelerated (BCa) bootstrap confidence intervals
//! (Efron 1987), as used throughout §6.2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample median (averages the middle pair for even sizes).
pub fn median(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "median of empty sample");
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Sample mean.
pub fn mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "mean of empty sample");
    data.iter().sum::<f64>() / data.len() as f64
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| <= 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal quantile (Acklam's rational approximation).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "quantile domain");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A point estimate with its 95% BCa bootstrap confidence interval.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Estimate {
    /// The statistic on the full sample.
    pub value: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
}

impl Estimate {
    /// Formats as `v, 95% CI [lo, hi]` with the given precision.
    pub fn fmt(&self, digits: usize) -> String {
        format!(
            "{:.d$}, 95% CI [{:.d$}, {:.d$}]",
            self.value,
            self.lo,
            self.hi,
            d = digits
        )
    }
}

/// 95% BCa bootstrap CI for an arbitrary statistic (Efron 1987; the
/// preregistered analysis of §6.2 uses BCa for every reported interval).
pub fn bca_ci(
    data: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    bootstraps: usize,
    seed: u64,
) -> Estimate {
    assert!(data.len() >= 2, "need at least 2 observations");
    let theta_hat = statistic(data);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.len();

    // Bootstrap distribution.
    let mut boot = Vec::with_capacity(bootstraps);
    let mut resample = vec![0.0f64; n];
    for _ in 0..bootstraps {
        for slot in resample.iter_mut() {
            *slot = data[rng.random_range(0..n)];
        }
        boot.push(statistic(&resample));
    }
    boot.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));

    // Bias correction z0.
    let below = boot.iter().filter(|&&b| b < theta_hat).count() as f64;
    let prop = ((below + 0.5) / (bootstraps as f64 + 1.0)).clamp(1e-6, 1.0 - 1e-6);
    let z0 = normal_quantile(prop);

    // Acceleration via the jackknife.
    let mut jack = Vec::with_capacity(n);
    let mut held = Vec::with_capacity(n - 1);
    for i in 0..n {
        held.clear();
        held.extend(
            data.iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &v)| v),
        );
        jack.push(statistic(&held));
    }
    let jbar = mean(&jack);
    let (mut num, mut den) = (0.0, 0.0);
    for j in &jack {
        let d = jbar - j;
        num += d * d * d;
        den += d * d;
    }
    let a = if den.abs() < 1e-12 {
        0.0
    } else {
        num / (6.0 * den.powf(1.5))
    };

    let z_alpha = normal_quantile(0.975);
    let adj = |z: f64| {
        let w = z0 + (z0 + z) / (1.0 - a * (z0 + z));
        normal_cdf(w).clamp(1e-6, 1.0 - 1e-6)
    };
    let lo_p = adj(-z_alpha);
    let hi_p = adj(z_alpha);
    let pick = |p: f64| {
        let idx = ((p * bootstraps as f64) as usize).min(bootstraps - 1);
        boot[idx]
    };
    Estimate {
        value: theta_hat,
        lo: pick(lo_p),
        hi: pick(hi_p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mean_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn normal_functions_are_inverse() {
        for p in [0.025, 0.1, 0.5, 0.9, 0.975] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-4, "p={p}");
        }
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-3);
    }

    #[test]
    fn bca_ci_covers_true_median_of_symmetric_data() {
        // Deterministic symmetric sample around 10.
        let data: Vec<f64> = (0..40)
            .map(|i| 10.0 + ((i % 9) as f64 - 4.0) * 0.5)
            .collect();
        let est = bca_ci(&data, median, 1000, 42);
        assert!(est.lo <= est.value && est.value <= est.hi);
        assert!((est.value - 10.0).abs() < 0.6);
        assert!(est.hi - est.lo < 2.0);
    }

    #[test]
    fn bca_ci_for_mean_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..200).map(|i| (i % 5) as f64).collect();
        let e_small = bca_ci(&small, mean, 800, 1);
        let e_large = bca_ci(&large, mean, 800, 1);
        assert!(e_large.hi - e_large.lo < e_small.hi - e_small.lo);
    }

    #[test]
    fn estimate_formatting() {
        let e = Estimate {
            value: 0.701,
            lo: 0.63,
            hi: 0.77,
        };
        assert_eq!(e.fmt(2), "0.70, 95% CI [0.63, 0.77]");
    }
}
