//! Renderers: Graphviz DOT (clusters as negation boxes) and a
//! self-contained SVG layout.
//!
//! The SVG layout is a deterministic layered heuristic (tables side by
//! side, nested boxes below, sized bottom-up) standing in for the authors'
//! ILP-based STRATISFIMAL LAYOUT \[30\]; the paper's formal claims only
//! require an unambiguous spatial realization (§3.6).

use crate::model::{Diagram, Endpoint, Partition, TableNode};
use rd_core::CmpOp;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// DOT
// ---------------------------------------------------------------------

/// Renders the diagram as Graphviz DOT. Negation boxes become dashed
/// rounded clusters; tables become HTML-like record labels with one port
/// per attribute row; the output table is gray.
pub fn to_dot(d: &Diagram) -> String {
    let mut out = String::new();
    out.push_str("digraph relational_diagram {\n");
    out.push_str("  rankdir=LR;\n  compound=true;\n  node [shape=none, fontname=\"Helvetica\"];\n");
    for (ci, cell) in d.cells.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_cell{ci} {{");
        if d.cells.len() > 1 {
            let _ = writeln!(out, "    label=\"union cell {}\"; style=solid;", ci + 1);
        } else {
            out.push_str("    style=invis;\n");
        }
        let mut box_id = 0usize;
        render_partition_dot(&cell.root, ci, &mut box_id, 2, &mut out);
        if let Some(o) = &cell.output {
            let mut label = format!(
                "<<TABLE BORDER=\"1\" CELLBORDER=\"1\" CELLSPACING=\"0\" BGCOLOR=\"lightgray\">\
                 <TR><TD BGCOLOR=\"gray\"><B>{}</B></TD></TR>",
                escape(&o.name)
            );
            for (i, a) in o.attrs.iter().enumerate() {
                let _ = write!(label, "<TR><TD PORT=\"a{i}\">{}</TD></TR>", escape(a));
            }
            label.push_str("</TABLE>>");
            let _ = writeln!(out, "    out{ci} [label={label}];");
        }
        out.push_str("  }\n");
        // Edges (declared outside clusters; Graphviz routes them through).
        for j in &cell.joins {
            let style = if j.op.is_symmetric() {
                if j.op == CmpOp::Eq {
                    "dir=none".to_string()
                } else {
                    format!("dir=none, label=\"{}\"", j.op.unicode())
                }
            } else {
                format!("label=\"{}\"", j.op.unicode())
            };
            let _ = writeln!(
                out,
                "  {} -> {} [{}];",
                port(ci, &j.from),
                port(ci, &j.to),
                style
            );
        }
        if let Some(o) = &cell.output {
            for (i, endpoint) in &o.edges {
                let _ = writeln!(
                    out,
                    "  out{ci}:a{i} -> {} [dir=none, color=gray];",
                    port(ci, endpoint)
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

fn port(cell: usize, e: &Endpoint) -> String {
    format!("c{cell}t{}:r{}", e.0, e.1)
}

fn render_partition_dot(
    p: &Partition,
    cell: usize,
    box_id: &mut usize,
    indent: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    for t in &p.tables {
        let mut label = format!(
            "<<TABLE BORDER=\"1\" CELLBORDER=\"1\" CELLSPACING=\"0\">\
             <TR><TD BGCOLOR=\"black\"><FONT COLOR=\"white\"><B>{}</B></FONT></TD></TR>",
            escape(&t.name)
        );
        for (i, row) in t.attrs.iter().enumerate() {
            let _ = write!(
                label,
                "<TR><TD PORT=\"r{i}\">{}</TD></TR>",
                escape(&row.label())
            );
        }
        label.push_str("</TABLE>>");
        let _ = writeln!(out, "{pad}c{cell}t{} [label={label}];", t.id);
    }
    for child in &p.children {
        *box_id += 1;
        let id = *box_id;
        let _ = writeln!(out, "{pad}subgraph cluster_c{cell}b{id} {{");
        let _ = writeln!(out, "{pad}  style=\"dashed,rounded\"; label=\"\";");
        render_partition_dot(child, cell, box_id, indent + 1, out);
        let _ = writeln!(out, "{pad}}}");
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

// ---------------------------------------------------------------------
// SVG
// ---------------------------------------------------------------------

const ROW_H: f64 = 22.0;
const CHAR_W: f64 = 8.0;
const PAD: f64 = 14.0;
const GAP: f64 = 18.0;

/// Computed geometry for one table.
struct TableGeom {
    x: f64,
    y: f64,
    w: f64,
}

/// Renders the diagram as a standalone SVG document.
pub fn to_svg(d: &Diagram) -> String {
    let mut body = String::new();
    let mut x_cursor = PAD;
    let mut max_h: f64 = 0.0;
    for cell in &d.cells {
        let mut geoms: BTreeMap<usize, TableGeom> = BTreeMap::new();
        let (w, h) = measure(&cell.root);
        let cell_x = x_cursor;
        draw_partition(&cell.root, cell_x, PAD, &mut geoms, &mut body, true);
        // Output table to the left margin of the cell (stacked above).
        let mut extra_h = 0.0;
        if let Some(o) = &cell.output {
            let ow = table_width_name(&o.name, o.attrs.iter().map(String::as_str));
            let oy = PAD + h + GAP;
            draw_box(cell_x, oy, ow, &o.name, &o.attrs, true, &mut body);
            for (i, endpoint) in &o.edges {
                if let Some(g) = geoms.get(&endpoint.0) {
                    let y1 = oy + ROW_H * (*i as f64 + 1.5);
                    let (x2, y2) = row_anchor(g, endpoint.1);
                    let _ = writeln!(
                        body,
                        "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"gray\"/>",
                        cell_x + ow,
                        y1,
                        x2,
                        y2
                    );
                }
            }
            extra_h = ROW_H * (o.attrs.len() as f64 + 1.0) + GAP;
        }
        // Join edges.
        for j in &cell.joins {
            let (Some(a), Some(b)) = (geoms.get(&j.from.0), geoms.get(&j.to.0)) else {
                continue;
            };
            let (x1, y1) = row_anchor(a, j.from.1);
            let (x2, y2) = row_anchor(b, j.to.1);
            let _ = writeln!(
                body,
                "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" stroke=\"black\"/>"
            );
            if j.op != CmpOp::Eq {
                let (mx, my) = ((x1 + x2) / 2.0, (y1 + y2) / 2.0 - 3.0);
                let _ = writeln!(
                    body,
                    "<text x=\"{mx:.1}\" y=\"{my:.1}\" font-size=\"12\" text-anchor=\"middle\">{}</text>",
                    escape(j.op.unicode())
                );
                if !j.op.is_symmetric() {
                    // Arrowhead at the target end.
                    let _ = writeln!(
                        body,
                        "<circle cx=\"{x2:.1}\" cy=\"{y2:.1}\" r=\"3\" fill=\"black\"/>"
                    );
                }
            }
        }
        x_cursor += w + 2.0 * GAP;
        max_h = max_h.max(h + extra_h + 2.0 * PAD);
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
         font-family=\"Helvetica, sans-serif\" font-size=\"13\">\n{}\n</svg>\n",
        x_cursor + PAD,
        max_h + PAD,
        body
    )
}

fn table_width(t: &TableNode) -> f64 {
    table_width_name(
        &t.name,
        t.attrs
            .iter()
            .map(|a| a.label())
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str),
    )
}

fn table_width_name<'a, I: IntoIterator<Item = &'a str>>(name: &str, rows: I) -> f64 {
    let mut chars = name.len();
    for r in rows {
        chars = chars.max(r.len());
    }
    (chars as f64) * CHAR_W + 16.0
}

fn table_height(t: &TableNode) -> f64 {
    ROW_H * (t.attrs.len() as f64 + 1.0)
}

/// Bottom-up measurement of a partition's bounding box.
fn measure(p: &Partition) -> (f64, f64) {
    let mut w = 0.0f64;
    let mut h = 0.0f64;
    for t in &p.tables {
        w += table_width(t) + GAP;
        h = h.max(table_height(t));
    }
    let mut ch = 0.0f64;
    let mut cw = 0.0f64;
    for c in &p.children {
        let (a, b) = measure(c);
        cw += a + GAP;
        ch = ch.max(b);
    }
    let width = w.max(cw).max(40.0) + PAD;
    let height = h + if p.children.is_empty() { 0.0 } else { ch + GAP } + PAD;
    (width, height)
}

fn row_anchor(g: &TableGeom, row: usize) -> (f64, f64) {
    (g.x + g.w, g.y + ROW_H * (row as f64 + 1.5))
}

fn draw_box(x: f64, y: f64, w: f64, name: &str, rows: &[String], gray: bool, out: &mut String) {
    let h = ROW_H * (rows.len() as f64 + 1.0);
    let header_fill = if gray { "#999999" } else { "#222222" };
    let _ = writeln!(
        out,
        "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" fill=\"white\" stroke=\"black\"/>"
    );
    let _ = writeln!(
        out,
        "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{ROW_H:.1}\" fill=\"{header_fill}\"/>"
    );
    let _ = writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"white\" text-anchor=\"middle\">{}</text>",
        x + w / 2.0,
        y + ROW_H - 6.0,
        escape(name)
    );
    for (i, r) in rows.iter().enumerate() {
        let ry = y + ROW_H * (i as f64 + 1.0);
        let _ = writeln!(
            out,
            "<line x1=\"{x:.1}\" y1=\"{ry:.1}\" x2=\"{:.1}\" y2=\"{ry:.1}\" stroke=\"black\"/>",
            x + w
        );
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>",
            x + w / 2.0,
            ry + ROW_H - 6.0,
            escape(r)
        );
    }
}

fn draw_partition(
    p: &Partition,
    x: f64,
    y: f64,
    geoms: &mut BTreeMap<usize, TableGeom>,
    out: &mut String,
    is_root: bool,
) -> (f64, f64) {
    let (w, h) = measure(p);
    if !is_root {
        let _ = writeln!(
            out,
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" fill=\"none\" \
             stroke=\"black\" stroke-dasharray=\"6,4\" rx=\"10\"/>"
        );
    }
    let mut tx = x + PAD / 2.0;
    let ty = y + PAD / 2.0;
    let mut row_h = 0.0f64;
    for t in &p.tables {
        let tw = table_width(t);
        let rows: Vec<String> = t.attrs.iter().map(|a| a.label()).collect();
        draw_box(tx, ty, tw, &t.name, &rows, false, out);
        geoms.insert(
            t.id,
            TableGeom {
                x: tx,
                y: ty,
                w: tw,
            },
        );
        row_h = row_h.max(table_height(t));
        tx += tw + GAP;
    }
    let mut cx = x + PAD / 2.0;
    let cy = ty + row_h + if p.tables.is_empty() { 0.0 } else { GAP };
    for c in &p.children {
        let (cw, _) = draw_partition(c, cx, cy, geoms, out, false);
        cx += cw + GAP;
    }
    (w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::from_trc;
    use rd_core::{Catalog, TableSchema};
    use rd_trc::parser::parse_query;

    fn division_diagram() -> Diagram {
        let catalog = Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
        ])
        .unwrap();
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
            &catalog,
        )
        .unwrap();
        from_trc(&q, &catalog).unwrap()
    }

    #[test]
    fn dot_contains_clusters_and_tables() {
        let dot = to_dot(&division_diagram());
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("style=\"dashed,rounded\"").count(), 2);
        assert!(dot.contains("<B>R</B>"));
        assert!(dot.contains("<B>S</B>"));
        assert!(dot.contains("<B>Q</B>"));
        assert!(dot.contains("->"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn svg_is_wellformed_enough() {
        let svg = to_svg(&division_diagram());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.matches("<rect").count() >= 5);
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains(">R<"));
        assert!(svg.contains(">Q<"));
    }

    #[test]
    fn theta_join_label_appears() {
        let catalog = Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
        ])
        .unwrap();
        let q = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B > s.B ] }",
            &catalog,
        )
        .unwrap();
        let d = from_trc(&q, &catalog).unwrap();
        let dot = to_dot(&d);
        assert!(dot.contains("label=\">\""));
        let svg = to_svg(&d);
        assert!(svg.contains("&gt;") || svg.contains('>'));
    }

    #[test]
    fn union_cells_render_side_by_side() {
        let catalog =
            Catalog::from_schemas([TableSchema::new("T", ["A"]), TableSchema::new("U", ["A"])])
                .unwrap();
        let u = rd_trc::parser::parse_union(
            "{ q(A) | exists t in T [ q.A = t.A ] } union { q(A) | exists u in U [ q.A = u.A ] }",
            &catalog,
        )
        .unwrap();
        let d = crate::translate::from_trc_union(&u, &catalog).unwrap();
        let dot = to_dot(&d);
        assert!(dot.contains("union cell 1"));
        assert!(dot.contains("union cell 2"));
        let svg = to_svg(&d);
        assert!(svg.contains(">T<"));
        assert!(svg.contains(">U<"));
    }
}
