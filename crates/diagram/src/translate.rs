//! The five-step translations between TRC\* and Relational Diagrams
//! (§3.2 and §3.3). Their composition is the identity up to
//! canonicalization — the constructive proof of Theorem 8.

use crate::model::{
    AttrNode, Cell, Diagram, Endpoint, JoinEdge, OutputTable, Partition, TableNode,
};
use rd_core::{Catalog, CmpOp, CoreError, CoreResult};
use rd_trc::ast::{Binding, Formula, OutputSpec, Predicate, Term, TrcQuery, TrcUnion};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// TRC* -> Diagram (§3.2)
// ---------------------------------------------------------------------

/// Translates a TRC\* query (or Boolean sentence) into a single-cell
/// Relational Diagram (§3.2's five steps).
pub fn from_trc(q: &TrcQuery, catalog: &Catalog) -> CoreResult<Diagram> {
    if !rd_trc::check::is_nondisjunctive(q) {
        return Err(CoreError::Invalid(
            "only TRC* queries have Relational Diagram* representations; \
             rewrite disjunctions first (§5)"
                .into(),
        ));
    }
    q.check(catalog)?;
    let canon = rd_trc::canon::canonicalize(q);
    let mut builder = Builder {
        next_id: 0,
        var_table: BTreeMap::new(),
        joins: Vec::new(),
        pending_preds: Vec::new(),
    };
    let (bindings, parts) = split(&canon.formula);
    let root = builder.partition(&bindings, &parts, canon.output.as_ref())?;
    // Resolve predicates into attribute rows and join edges.
    let mut cell = Cell {
        root,
        joins: Vec::new(),
        output: None,
    };
    builder.resolve(&mut cell, canon.output.as_ref())?;
    let d = Diagram::single(cell);
    d.validate()?;
    Ok(d)
}

/// Translates a union of TRC\* queries into a multi-cell diagram (§5).
pub fn from_trc_union(u: &TrcUnion, catalog: &Catalog) -> CoreResult<Diagram> {
    let mut cells = Vec::with_capacity(u.branches.len());
    for q in &u.branches {
        let d = from_trc(q, catalog)?;
        cells.extend(d.cells);
    }
    let d = Diagram { cells };
    d.validate()?;
    Ok(d)
}

fn split(f: &Formula) -> (Vec<Binding>, Vec<Formula>) {
    match f {
        Formula::Exists(b, body) => {
            let parts = match body.as_ref() {
                Formula::And(fs) => fs.clone(),
                other => vec![other.clone()],
            };
            (b.clone(), parts)
        }
        Formula::And(fs) => (Vec::new(), fs.clone()),
        other => (Vec::new(), vec![other.clone()]),
    }
}

struct Builder {
    next_id: usize,
    /// Tuple variable -> table node id.
    var_table: BTreeMap<String, usize>,
    joins: Vec<(Predicate, ())>,
    /// Selection predicates (resolved in the second phase).
    pending_preds: Vec<Predicate>,
}

impl Builder {
    /// Step 1+2: partitions from the negation hierarchy, tables placed in
    /// their scope's partition. Predicates are collected for phase two.
    fn partition(
        &mut self,
        bindings: &[Binding],
        parts: &[Formula],
        output: Option<&OutputSpec>,
    ) -> CoreResult<Partition> {
        let mut p = Partition::default();
        for b in bindings {
            let id = self.next_id;
            self.next_id += 1;
            self.var_table.insert(b.var.clone(), id);
            p.tables.push(TableNode {
                id,
                name: b.table.clone(),
                attrs: Vec::new(),
            });
        }
        for part in parts {
            match part {
                Formula::Pred(pred) => {
                    let mentions_head = |t: &Term| matches!((t, output), (Term::Attr(a), Some(o)) if a.var == o.name);
                    if mentions_head(&pred.left) || mentions_head(&pred.right) {
                        // Output predicates are handled in `resolve`.
                        self.pending_preds.push(pred.clone());
                    } else if pred.is_join() {
                        self.joins.push((pred.clone(), ()));
                    } else {
                        self.pending_preds.push(pred.clone());
                    }
                }
                Formula::Not(inner) => {
                    let (b2, p2) = split(inner);
                    let child = self.partition(&b2, &p2, output)?;
                    p.children.push(child);
                }
                other => {
                    return Err(CoreError::Invalid(format!(
                        "unexpected canonical part: {other:?}"
                    )))
                }
            }
        }
        Ok(p)
    }

    /// Steps 3–5: place selection rows, join edges, and the output table.
    fn resolve(&mut self, cell: &mut Cell, output: Option<&OutputSpec>) -> CoreResult<()> {
        // Step 3: selection predicates "attr θ const" become rows.
        let mut output_defs: Vec<(String, Predicate)> = Vec::new();
        for pred in std::mem::take(&mut self.pending_preds) {
            let head = output.map(|o| o.name.as_str());
            let is_head = |t: &Term| matches!(t, Term::Attr(a) if Some(a.var.as_str()) == head);
            if is_head(&pred.left) {
                if let Term::Attr(a) = &pred.left {
                    output_defs.push((a.attr.clone(), pred.clone()));
                }
                continue;
            }
            if is_head(&pred.right) {
                if let Term::Attr(a) = &pred.right {
                    output_defs.push((a.attr.clone(), pred.flipped()));
                }
                continue;
            }
            // Selection predicate: normalize to attr-θ-const.
            let (attr_ref, op, value) = match (&pred.left, &pred.right) {
                (Term::Attr(a), Term::Const(v)) => (a.clone(), pred.op, v.clone()),
                (Term::Const(v), Term::Attr(a)) => (a.clone(), pred.op.flipped(), v.clone()),
                _ => {
                    return Err(CoreError::Invalid(format!(
                        "predicate '{pred}' is neither a join nor a selection"
                    )))
                }
            };
            let id = *self.var_table.get(&attr_ref.var).ok_or_else(|| {
                CoreError::Invalid(format!("unbound variable '{}'", attr_ref.var))
            })?;
            let table = find_table_mut(&mut cell.root, id)
                .ok_or_else(|| CoreError::Invalid(format!("table id {id} missing")))?;
            table
                .attrs
                .push(AttrNode::selection(attr_ref.attr, op, value));
        }

        // Step 4: join predicates become edges; plain rows are created on
        // demand and shared across joins.
        let joins = std::mem::take(&mut self.joins);
        for (pred, ()) in joins {
            let (l, r) = match (&pred.left, &pred.right) {
                (Term::Attr(l), Term::Attr(r)) => (l.clone(), r.clone()),
                _ => unreachable!("classified as join"),
            };
            let from = self.ensure_row(cell, &l)?;
            let to = self.ensure_row(cell, &r)?;
            cell.joins.push(JoinEdge {
                from,
                to,
                op: pred.op,
            });
        }

        // Step 5: output table.
        if let Some(o) = output {
            let mut edges = Vec::new();
            for (i, attr) in o.attrs.iter().enumerate() {
                let def = output_defs.iter().find(|(a, _)| a == attr).ok_or_else(|| {
                    CoreError::Invalid(format!("output attribute '{attr}' undefined"))
                })?;
                let target = match &def.1 {
                    Predicate {
                        right: Term::Attr(a),
                        op: CmpOp::Eq,
                        ..
                    } => a.clone(),
                    other => {
                        return Err(CoreError::Invalid(format!(
                            "output predicate '{other}' must be an equality to an attribute"
                        )))
                    }
                };
                let endpoint = self.ensure_row(cell, &target)?;
                edges.push((i, endpoint));
            }
            cell.output = Some(OutputTable {
                name: o.name.to_uppercase(),
                attrs: o.attrs.clone(),
                edges,
            });
        }
        Ok(())
    }

    /// Finds (or creates) the plain attribute row for `var.attr`.
    fn ensure_row(&mut self, cell: &mut Cell, a: &rd_trc::ast::AttrRef) -> CoreResult<Endpoint> {
        let id = *self
            .var_table
            .get(&a.var)
            .ok_or_else(|| CoreError::Invalid(format!("unbound variable '{}'", a.var)))?;
        let table = find_table_mut(&mut cell.root, id)
            .ok_or_else(|| CoreError::Invalid(format!("table id {id} missing")))?;
        if let Some(idx) = table.plain_attr(&a.attr) {
            return Ok((id, idx));
        }
        table.attrs.push(AttrNode::plain(a.attr.clone()));
        Ok((id, table.attrs.len() - 1))
    }
}

fn find_table_mut(p: &mut Partition, id: usize) -> Option<&mut TableNode> {
    if let Some(t) = p.tables.iter_mut().find(|t| t.id == id) {
        return Some(t);
    }
    p.children.iter_mut().find_map(|c| find_table_mut(c, id))
}

// ---------------------------------------------------------------------
// Diagram -> TRC* (§3.3)
// ---------------------------------------------------------------------

/// Translates a valid diagram back into TRC\* (one union branch per cell)
/// — the soundness direction of Theorem 8.
pub fn to_trc(d: &Diagram, catalog: &Catalog) -> CoreResult<TrcUnion> {
    d.validate()?;
    let mut branches = Vec::with_capacity(d.cells.len());
    for cell in &d.cells {
        branches.push(cell_to_trc(cell, catalog)?);
    }
    let u = TrcUnion::new(branches)?;
    for b in &u.branches {
        b.check(catalog)?;
    }
    Ok(u)
}

fn cell_to_trc(cell: &Cell, catalog: &Catalog) -> CoreResult<TrcQuery> {
    // Step 2: fresh tuple variables per table (lowercase name + occurrence
    // index, §3.3).
    let mut var_names: BTreeMap<usize, String> = BTreeMap::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    cell.root.walk(&mut |p, _| {
        for t in &p.tables {
            let n = counts.entry(t.name.to_lowercase()).or_default();
            *n += 1;
            var_names.insert(t.id, format!("{}{}", t.name.to_lowercase(), n));
        }
    });

    // Pre-compute each table's partition path for join placement.
    let mut paths: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    fn record_paths(p: &Partition, path: &mut Vec<usize>, out: &mut BTreeMap<usize, Vec<usize>>) {
        for t in &p.tables {
            out.insert(t.id, path.clone());
        }
        for (i, c) in p.children.iter().enumerate() {
            path.push(i);
            record_paths(c, path, out);
            path.pop();
        }
    }
    record_paths(&cell.root, &mut Vec::new(), &mut paths);

    // Step 4: each join is placed in the *deeper* of its two partitions
    // (guaranteeing guardedness).
    let mut joins_at: BTreeMap<Vec<usize>, Vec<Predicate>> = BTreeMap::new();
    let term_of = |e: &Endpoint| -> CoreResult<Term> {
        let table = find_table(&cell.root, e.0)
            .ok_or_else(|| CoreError::Invalid(format!("unknown table id {}", e.0)))?;
        let row = &table.attrs[e.1];
        Ok(Term::attr(var_names[&e.0].clone(), row.attr.clone()))
    };
    for j in &cell.joins {
        let (fp, tp) = (&paths[&j.from.0], &paths[&j.to.0]);
        let deeper = if fp.len() >= tp.len() { fp } else { tp };
        joins_at
            .entry(deeper.clone())
            .or_default()
            .push(Predicate::new(term_of(&j.from)?, j.op, term_of(&j.to)?));
    }

    // Steps 1+3: rebuild the scope tree with selections in place.
    fn build(
        p: &Partition,
        path: &mut Vec<usize>,
        var_names: &BTreeMap<usize, String>,
        joins_at: &BTreeMap<Vec<usize>, Vec<Predicate>>,
    ) -> Formula {
        let bindings: Vec<Binding> = p
            .tables
            .iter()
            .map(|t| Binding::new(var_names[&t.id].clone(), t.name.clone()))
            .collect();
        let mut parts: Vec<Formula> = Vec::new();
        for t in &p.tables {
            for row in &t.attrs {
                if let Some((op, v)) = &row.selection {
                    parts.push(Formula::Pred(Predicate::new(
                        Term::attr(var_names[&t.id].clone(), row.attr.clone()),
                        *op,
                        Term::Const(v.clone()),
                    )));
                }
            }
        }
        if let Some(js) = joins_at.get(path) {
            parts.extend(js.iter().cloned().map(Formula::Pred));
        }
        for (i, c) in p.children.iter().enumerate() {
            path.push(i);
            let child = build(c, path, var_names, joins_at);
            path.pop();
            parts.push(Formula::not(child));
        }
        let body = Formula::and(parts);
        if bindings.is_empty() {
            body
        } else {
            Formula::exists(bindings, body)
        }
    }
    let formula = build(&cell.root, &mut Vec::new(), &var_names, &joins_at);

    // Step 5: output predicates.
    let q = match &cell.output {
        Some(out) => {
            let mut defs = Vec::with_capacity(out.attrs.len());
            for (i, attr) in out.attrs.iter().enumerate() {
                let (_, endpoint) = out
                    .edges
                    .iter()
                    .find(|(oi, _)| *oi == i)
                    .expect("validated");
                defs.push(Formula::Pred(Predicate::new(
                    Term::attr("q", attr.clone()),
                    CmpOp::Eq,
                    term_of(endpoint)?,
                )));
            }
            // Merge the output definitions into the root conjunction.
            let merged = match formula {
                Formula::Exists(b, body) => {
                    let mut parts = match *body {
                        Formula::And(fs) => fs,
                        single => vec![single],
                    };
                    let mut all = defs;
                    all.append(&mut parts);
                    Formula::exists(b, Formula::and(all))
                }
                other => {
                    let mut all = defs;
                    all.push(other);
                    Formula::and(all)
                }
            };
            TrcQuery::query(
                OutputSpec::new(
                    cell.output.as_ref().expect("checked").name.to_lowercase(),
                    out.attrs.clone(),
                ),
                merged,
            )
        }
        None => TrcQuery::sentence(formula),
    };
    let _ = catalog;
    Ok(q)
}

fn find_table(p: &Partition, id: usize) -> Option<&TableNode> {
    p.tables
        .iter()
        .find(|t| t.id == id)
        .or_else(|| p.children.iter().find_map(|c| find_table(c, id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::{Database, Relation, TableSchema};
    use rd_trc::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B", "C"]),
            TableSchema::new("S", ["A", "B"]),
            TableSchema::new("T", ["A"]),
            TableSchema::new("U", ["A"]),
        ])
        .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B", "C"]),
                [[1i64, 10, 2], [2, 10, 2], [3, 30, 5]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["A", "B"]), [[1i64, 10], [2, 20]]).unwrap(),
        );
        db.add_relation(Relation::from_rows(TableSchema::new("T", ["A"]), [[1i64], [3]]).unwrap());
        db.add_relation(Relation::from_rows(TableSchema::new("U", ["A"]), [[2i64]]).unwrap());
        db
    }

    fn roundtrip(text: &str) {
        let q = parse_query(text, &catalog()).unwrap();
        let d = from_trc(&q, &catalog()).unwrap();
        d.validate().unwrap();
        assert_eq!(
            d.signature(),
            q.signature(),
            "signature mismatch for {text}"
        );
        let back = to_trc(&d, &catalog()).unwrap();
        assert_eq!(back.branches.len(), 1);
        let b = &back.branches[0];
        // Semantics preserved (Theorem 8).
        match (&q.output, &b.output) {
            (Some(_), Some(_)) => {
                let x = rd_trc::eval::eval_query(&q, &db()).unwrap();
                let y = rd_trc::eval::eval_query(b, &db()).unwrap();
                assert_eq!(
                    x.tuples(),
                    y.tuples(),
                    "semantics changed for {text}\nback: {b}"
                );
            }
            (None, None) => {
                let x = rd_trc::eval::eval_sentence(&q, &db()).unwrap();
                let y = rd_trc::eval::eval_sentence(b, &db()).unwrap();
                assert_eq!(x, y, "semantics changed for {text}\nback: {b}");
            }
            _ => panic!("query/sentence shape changed"),
        }
    }

    #[test]
    fn roundtrips_simple_join() {
        roundtrip("{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }");
    }

    #[test]
    fn roundtrips_not_exists() {
        roundtrip("{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B = r.B ]) ] }");
    }

    #[test]
    fn roundtrips_division() {
        roundtrip(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
        );
    }

    #[test]
    fn roundtrips_fig5_style_query() {
        // Multiple selections on one attribute, theta joins, double
        // negation, and deep nesting (Fig. 5 of the paper, adapted).
        roundtrip(
            "{ q(A, D) | exists r1 in R, r2 in R, s1 in S [ q.A = r1.A and q.D = r2.C and \
               r2.C > 1 and r2.C < 3 and r1.A > r2.B and \
               not (not (exists t1 in T [ t1.A = r1.A ])) and \
               not (exists s2 in S, t2 in T, u in U [ s2.A = t2.A and s2.B > s1.A and \
                 not (exists r3 in R [ r3.A != 1 ]) and \
                 not (exists r4 in R [ r4.B != s2.B ]) ]) ] }",
        );
    }

    #[test]
    fn roundtrips_sentences() {
        roundtrip("not (exists r in R [ not (exists s in S [ s.B = r.B ]) ])");
        roundtrip("exists r in R [ r.A = 1 ]");
    }

    #[test]
    fn selection_rows_are_repeated_per_predicate() {
        // r2.C > 1 ∧ r2.C < 3 shows C twice (§3.1 point 2).
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and r.C > 1 and r.C < 3 ] }",
            &catalog(),
        )
        .unwrap();
        let d = from_trc(&q, &catalog()).unwrap();
        let table = &d.cells[0].root.tables[0];
        let c_rows: Vec<&AttrNode> = table.attrs.iter().filter(|a| a.attr == "C").collect();
        assert_eq!(c_rows.len(), 2);
        assert!(c_rows.iter().all(|a| a.selection.is_some()));
    }

    #[test]
    fn join_attr_shown_once_across_joins() {
        // One attribute in two joins appears once (§3.1 point 3).
        let q = parse_query(
            "{ q(A) | exists r in R, s in S, t in T [ q.A = r.A and r.A = s.A and r.A = t.A ] }",
            &catalog(),
        )
        .unwrap();
        let d = from_trc(&q, &catalog()).unwrap();
        let table = &d.cells[0].root.tables[0];
        assert_eq!(table.attrs.iter().filter(|a| a.attr == "A").count(), 1);
        assert_eq!(d.cells[0].joins.len(), 2);
    }

    #[test]
    fn union_cells_from_trc_union() {
        let u = rd_trc::parser::parse_union(
            "{ q(A) | exists t in T [ q.A = t.A ] } union { q(A) | exists u in U [ q.A = u.A ] }",
            &catalog(),
        )
        .unwrap();
        let d = from_trc_union(&u, &catalog()).unwrap();
        assert_eq!(d.cells.len(), 2);
        let back = to_trc(&d, &catalog()).unwrap();
        let x = rd_trc::eval::eval_union(&u, &db()).unwrap();
        let y = rd_trc::eval::eval_union(&back, &db()).unwrap();
        assert_eq!(x.tuples(), y.tuples());
    }

    #[test]
    fn disjunctive_queries_rejected() {
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and (r.B = 1 or r.B = 2) ] }",
            &catalog(),
        )
        .unwrap();
        assert!(from_trc(&q, &catalog()).is_err());
    }

    #[test]
    fn theta_join_direction_preserved() {
        let q = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.B > s.B ] }",
            &catalog(),
        )
        .unwrap();
        let d = from_trc(&q, &catalog()).unwrap();
        assert_eq!(d.cells[0].joins.len(), 1);
        assert_eq!(d.cells[0].joins[0].op, CmpOp::Gt);
    }
}
