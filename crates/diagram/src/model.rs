//! The Relational Diagram canvas model and its validity conditions.

use rd_core::{CmpOp, CoreError, CoreResult, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One attribute row of a table node.
///
/// An attribute participating in `k` selection predicates is repeated `k`
/// times (§3.1 point 2); an attribute participating in joins appears once
/// more without a selection (point 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrNode {
    /// The attribute name, e.g. `C`.
    pub attr: String,
    /// An in-place selection predicate, e.g. `> 1` for the row `C > 1`.
    pub selection: Option<(CmpOp, Value)>,
}

impl AttrNode {
    /// A plain (join-capable) attribute row.
    pub fn plain(attr: impl Into<String>) -> Self {
        AttrNode {
            attr: attr.into(),
            selection: None,
        }
    }

    /// A selection row, e.g. `C > 1`.
    pub fn selection(attr: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        AttrNode {
            attr: attr.into(),
            selection: Some((op, value.into())),
        }
    }

    /// Rendered label, e.g. `C` or `C > 1`.
    pub fn label(&self) -> String {
        match &self.selection {
            Some((op, v)) => format!("{} {} {}", self.attr, op.unicode(), v),
            None => self.attr.clone(),
        }
    }
}

/// A table displayed in a partition: name plus visible attribute rows
/// (only attributes used by the query are shown, §3.1 point 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableNode {
    /// Identifier unique within a cell (used by join edges).
    pub id: usize,
    /// Table name (no aliases — §3.1 point 1).
    pub name: String,
    /// Visible attribute rows.
    pub attrs: Vec<AttrNode>,
}

impl TableNode {
    /// Index of the first *plain* row for `attr`, if present.
    pub fn plain_attr(&self, attr: &str) -> Option<usize> {
        self.attrs
            .iter()
            .position(|a| a.attr == attr && a.selection.is_none())
    }
}

/// A canvas partition: the region delimited by a negation box (or the
/// root canvas). Children are the negation boxes directly inside.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Partition {
    /// Tables placed directly in this partition.
    pub tables: Vec<TableNode>,
    /// Nested negation boxes.
    pub children: Vec<Partition>,
}

impl Partition {
    /// Depth-first iteration over partitions, yielding `(partition, depth)`.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Partition, usize)) {
        fn go<'a>(p: &'a Partition, depth: usize, f: &mut impl FnMut(&'a Partition, usize)) {
            f(p, depth);
            for c in &p.children {
                go(c, depth + 1, f);
            }
        }
        go(self, 0, f);
    }

    /// Total number of partitions (including this one).
    pub fn partition_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(Partition::partition_count)
            .sum::<usize>()
    }
}

/// An endpoint of a join edge: `(table id, attribute row index)`.
pub type Endpoint = (usize, usize);

/// A join predicate drawn as a line between two attribute rows
/// (§3.1 point 3). Symmetric operators need no direction; asymmetric ones
/// read `from θ to`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// Source endpoint (left operand of the predicate).
    pub from: Endpoint,
    /// Target endpoint (right operand).
    pub to: Endpoint,
    /// Operator label (`=` edges are drawn without a label).
    pub op: CmpOp,
}

/// The gray output table (§3.1 point 5). Boolean queries have none.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputTable {
    /// Output table name (conventionally `Q`).
    pub name: String,
    /// Output attribute names.
    pub attrs: Vec<String>,
    /// For each output attribute (by index): the attribute row it connects
    /// to. Validity requires the endpoint's table to sit in the root
    /// partition (safety, Def. 7 point 5).
    pub edges: Vec<(usize, Endpoint)>,
}

/// One union cell: a Relational Diagram\* (root partition + joins +
/// optional output table).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// The root partition `q₀`.
    pub root: Partition,
    /// Join edges between attribute rows.
    pub joins: Vec<JoinEdge>,
    /// Output table, if the query is non-Boolean.
    pub output: Option<OutputTable>,
}

/// A Relational Diagram: one or more union cells (§5). A single cell is a
/// Relational Diagram\*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagram {
    /// The union cells.
    pub cells: Vec<Cell>,
}

impl Diagram {
    /// Wraps a single cell.
    pub fn single(cell: Cell) -> Self {
        Diagram { cells: vec![cell] }
    }

    /// `true` if this is a Relational Diagram\* (no union cells).
    pub fn is_star(&self) -> bool {
        self.cells.len() == 1
    }

    /// The signature: table names in placement order across cells
    /// (partition pre-order, matching the TRC quantifier order).
    pub fn signature(&self) -> Vec<String> {
        let mut out = Vec::new();
        for cell in &self.cells {
            cell.root.walk(&mut |p, _| {
                for t in &p.tables {
                    out.push(t.name.clone());
                }
            });
        }
        out
    }

    /// Validates the diagram per Definition 7 (points 1–5) and the union
    /// extension of Definition 16 (point 6).
    ///
    /// Point 1 (boxes partition the canvas) and point 2 (each table in
    /// exactly one partition) hold by construction of the tree model; the
    /// remaining conditions are checked explicitly.
    pub fn validate(&self) -> CoreResult<()> {
        if self.cells.is_empty() {
            return Err(CoreError::Invalid(
                "a diagram needs at least one cell".into(),
            ));
        }
        for cell in &self.cells {
            validate_cell(cell)?;
        }
        // Def. 16 point 6: all output tables identical in name and attrs.
        let first = &self.cells[0].output;
        for cell in &self.cells[1..] {
            let same = match (first, &cell.output) {
                (None, None) => true,
                (Some(a), Some(b)) => a.name == b.name && a.attrs == b.attrs,
                _ => false,
            };
            if !same {
                return Err(CoreError::Invalid(
                    "union cells must have identical output tables (Def. 16)".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Per-table bookkeeping collected while validating a cell.
struct TableInfo {
    /// Partition path from the root (e.g. `[0]` root, `[0, 2]` third box).
    path: Vec<usize>,
}

fn collect_tables(
    p: &Partition,
    path: &mut Vec<usize>,
    out: &mut BTreeMap<usize, TableInfo>,
) -> CoreResult<()> {
    for t in &p.tables {
        if out.insert(t.id, TableInfo { path: path.clone() }).is_some() {
            return Err(CoreError::Invalid(format!(
                "table id {} appears in more than one partition (Def. 7 point 2)",
                t.id
            )));
        }
    }
    for (i, c) in p.children.iter().enumerate() {
        path.push(i);
        collect_tables(c, path, out)?;
        path.pop();
    }
    Ok(())
}

/// `true` if one path is a prefix of the other (ancestor/descendant).
fn related(a: &[usize], b: &[usize]) -> bool {
    let n = a.len().min(b.len());
    a[..n] == b[..n]
}

fn leaf_has_table(p: &Partition) -> bool {
    if p.children.is_empty() {
        !p.tables.is_empty()
    } else {
        p.children.iter().all(leaf_has_table)
    }
}

fn find_table(p: &Partition, id: usize) -> Option<&TableNode> {
    p.tables
        .iter()
        .find(|t| t.id == id)
        .or_else(|| p.children.iter().find_map(|c| find_table(c, id)))
}

fn validate_cell(cell: &Cell) -> CoreResult<()> {
    // Point 3: each leaf partition contains at least one table — and the
    // special case of the empty canvas.
    if cell.root.tables.is_empty() && cell.root.children.is_empty() {
        return Err(CoreError::Invalid(
            "an empty canvas is not a valid Relational Diagram (§3.3 step 2)".into(),
        ));
    }
    if !leaf_has_table(&cell.root) {
        return Err(CoreError::Invalid(
            "every leaf partition must contain at least one table (Def. 7 point 3)".into(),
        ));
    }
    let mut infos = BTreeMap::new();
    collect_tables(&cell.root, &mut Vec::new(), &mut infos)?;

    let endpoint_ok = |e: &Endpoint| -> CoreResult<&TableInfo> {
        let info = infos.get(&e.0).ok_or_else(|| {
            CoreError::Invalid(format!("join references unknown table id {}", e.0))
        })?;
        let table = find_table(&cell.root, e.0).expect("id found above");
        if e.1 >= table.attrs.len() {
            return Err(CoreError::Invalid(format!(
                "join references attribute row {} of table '{}' which has {} rows",
                e.1,
                table.name,
                table.attrs.len()
            )));
        }
        Ok(info)
    };

    // Point 4: joins only between partitions in an ancestor/descendant
    // relationship (never siblings).
    for j in &cell.joins {
        let a = endpoint_ok(&j.from)?;
        let b = endpoint_ok(&j.to)?;
        if !related(&a.path, &b.path) {
            return Err(CoreError::Invalid(
                "join connects sibling partitions (Def. 7 point 4)".into(),
            ));
        }
    }

    // Point 5: each output attribute connects to exactly one attribute of
    // a table in the root partition.
    if let Some(out) = &cell.output {
        if out.attrs.is_empty() {
            return Err(CoreError::Invalid(
                "output table needs at least one attribute (Def. 7 point 5)".into(),
            ));
        }
        for (i, _attr) in out.attrs.iter().enumerate() {
            let mut edges = out.edges.iter().filter(|(oi, _)| *oi == i);
            let Some((_, endpoint)) = edges.next() else {
                return Err(CoreError::Invalid(format!(
                    "output attribute #{i} is not connected (Def. 7 point 5)"
                )));
            };
            if edges.next().is_some() {
                return Err(CoreError::Invalid(format!(
                    "output attribute #{i} connects to more than one attribute (Def. 7 point 5)"
                )));
            }
            let info = endpoint_ok(endpoint)?;
            if !info.path.is_empty() {
                return Err(CoreError::Invalid(
                    "output attributes must connect to tables in the root partition \
                     (safety, Def. 7 point 5)"
                        .into(),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 15k: { q(A) | ∃r∈R[q.A=r.A ∧ ¬(∃s∈S[s.B=r.B])] }.
    pub(crate) fn not_exists_cell() -> Cell {
        let r = TableNode {
            id: 0,
            name: "R".into(),
            attrs: vec![AttrNode::plain("A"), AttrNode::plain("B")],
        };
        let s = TableNode {
            id: 1,
            name: "S".into(),
            attrs: vec![AttrNode::plain("B")],
        };
        Cell {
            root: Partition {
                tables: vec![r],
                children: vec![Partition {
                    tables: vec![s],
                    children: vec![],
                }],
            },
            joins: vec![JoinEdge {
                from: (1, 0),
                to: (0, 1),
                op: CmpOp::Eq,
            }],
            output: Some(OutputTable {
                name: "Q".into(),
                attrs: vec!["A".into()],
                edges: vec![(0, (0, 0))],
            }),
        }
    }

    #[test]
    fn valid_cell_passes() {
        Diagram::single(not_exists_cell()).validate().unwrap();
    }

    #[test]
    fn empty_canvas_rejected() {
        let d = Diagram::single(Cell {
            root: Partition::default(),
            joins: vec![],
            output: None,
        });
        assert!(d.validate().is_err());
    }

    #[test]
    fn empty_leaf_partition_rejected() {
        let mut cell = not_exists_cell();
        cell.root.children.push(Partition::default());
        assert!(Diagram::single(cell).validate().is_err());
    }

    #[test]
    fn sibling_join_rejected() {
        // Two sibling boxes with a join between them (Def. 7 point 4).
        let t1 = TableNode {
            id: 0,
            name: "R".into(),
            attrs: vec![AttrNode::plain("A")],
        };
        let t2 = TableNode {
            id: 1,
            name: "S".into(),
            attrs: vec![AttrNode::plain("B")],
        };
        let anchor = TableNode {
            id: 2,
            name: "T".into(),
            attrs: vec![AttrNode::plain("A")],
        };
        let cell = Cell {
            root: Partition {
                tables: vec![anchor],
                children: vec![
                    Partition {
                        tables: vec![t1],
                        children: vec![],
                    },
                    Partition {
                        tables: vec![t2],
                        children: vec![],
                    },
                ],
            },
            joins: vec![JoinEdge {
                from: (0, 0),
                to: (1, 0),
                op: CmpOp::Eq,
            }],
            output: None,
        };
        let err = Diagram::single(cell).validate().unwrap_err();
        assert!(err.to_string().contains("sibling"));
    }

    #[test]
    fn output_must_connect_to_root() {
        let mut cell = not_exists_cell();
        // Point the output at the S table inside the negation box.
        cell.output.as_mut().unwrap().edges = vec![(0, (1, 0))];
        assert!(Diagram::single(cell).validate().is_err());
    }

    #[test]
    fn output_needs_exactly_one_edge_per_attr() {
        let mut cell = not_exists_cell();
        cell.output.as_mut().unwrap().edges = vec![];
        assert!(Diagram::single(cell.clone()).validate().is_err());
        cell.output.as_mut().unwrap().edges = vec![(0, (0, 0)), (0, (0, 1))];
        assert!(Diagram::single(cell).validate().is_err());
    }

    #[test]
    fn union_cells_must_share_output_shape() {
        let a = not_exists_cell();
        let mut b = not_exists_cell();
        b.output.as_mut().unwrap().attrs = vec!["Z".into()];
        let d = Diagram { cells: vec![a, b] };
        assert!(d.validate().is_err());
    }

    #[test]
    fn duplicate_table_ids_rejected() {
        let mut cell = not_exists_cell();
        let dup = cell.root.tables[0].clone();
        cell.root.children[0].tables.push(dup);
        assert!(Diagram::single(cell).validate().is_err());
    }

    #[test]
    fn signature_in_placement_order() {
        let d = Diagram::single(not_exists_cell());
        assert_eq!(d.signature(), vec!["R", "S"]);
    }
}
