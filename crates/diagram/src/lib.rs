//! # rd-diagram — Relational Diagrams
//!
//! The paper's diagrammatic representation of relational queries (§3, §5):
//!
//! * a [model](mod@model) of the canvas: nested **negation boxes** partition
//!   the canvas (Fig. 5c), tables with their attribute rows sit inside
//!   partitions, selection predicates are shown in place (`C > 1`), join
//!   predicates are lines between attributes (with an operator label and
//!   direction for θ-joins), a gray **output table** collects the result,
//!   and multiple **union cells** (§5) provide relational completeness;
//! * [validity](model::Diagram::validate) per Definitions 7 and 16;
//! * the five-step translations [TRC\* → diagram](translate::from_trc)
//!   (§3.2) and [diagram → TRC\*](translate::to_trc) (§3.3), whose
//!   round-trip is the constructive proof of Theorem 8 (unambiguity);
//! * [renderers](render): Graphviz DOT (cluster per negation box) and a
//!   self-contained SVG layout (the substitution for the authors'
//!   STRATISFIMAL LAYOUT tool — see DESIGN.md §4).
//!
//! ```
//! use rd_core::{Catalog, TableSchema};
//! use rd_trc::parse_query;
//! use rd_diagram::{from_trc, to_trc};
//!
//! let catalog = Catalog::from_schemas([
//!     TableSchema::new("R", ["A", "B"]),
//!     TableSchema::new("S", ["B"]),
//! ]).unwrap();
//! let q = parse_query(
//!     "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B = r.B ]) ] }",
//!     &catalog).unwrap();
//! let d = from_trc(&q, &catalog).unwrap();
//! d.validate().unwrap();
//! let back = to_trc(&d, &catalog).unwrap();   // Theorem 8: unambiguous
//! assert_eq!(back.branches.len(), 1);
//! ```

pub mod model;
pub mod render;
pub mod translate;

pub use model::{AttrNode, Cell, Diagram, JoinEdge, OutputTable, Partition, TableNode};
pub use render::{to_dot, to_svg};
pub use translate::{from_trc, from_trc_union, to_trc};
