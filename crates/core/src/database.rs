//! Tuples, relation instances, and databases.
//!
//! Stored tuples are *interned*: string values entering a [`Database`]
//! (or a [`Relation`] attached to one) are swapped for `u32` symbols in
//! the database's [`SymbolTable`], so joins, projections, and set inserts
//! compare and copy machine words instead of heap strings. Resolution
//! back to [`Value::Str`] happens only at the edges — see
//! [`Database::resolve_relation`] and [`Relation::resolved`].

use crate::error::{CoreError, CoreResult};
use crate::schema::{Catalog, TableSchema};
use crate::stats::TableStats;
use crate::symbol::SymbolTable;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A tuple: an ordered list of values. Attribute names live in the schema
/// (the "set-of-mappings" view of §3.1 is recovered by pairing a tuple with
/// its [`TableSchema`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Builds a tuple from anything convertible to values.
    pub fn new<V: Into<Value>, I: IntoIterator<Item = V>>(values: I) -> Self {
        Tuple(values.into_iter().map(Into::into).collect())
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Iterates over the values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// Concatenates two tuples (used by products/joins). With interned
    /// values this is a flat word copy — no heap strings are cloned.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Projects the tuple onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Approximate in-memory size (enum slots plus string payloads).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>()
            + self.0.len() * std::mem::size_of::<Value>()
            + self.0.iter().map(Value::heap_bytes).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A relation instance: a schema plus a *set* of tuples.
///
/// `BTreeSet` enforces set semantics and gives deterministic iteration,
/// which keeps query evaluation, printing, and counterexample search
/// reproducible.
///
/// A relation stored in a [`Database`] carries a handle to the database's
/// symbol table: string values are interned on insert, and
/// [`Relation::resolved`] maps them back. Free-standing relations (query
/// results, literals under construction) have no handle and keep their
/// values as given.
#[derive(Debug)]
pub struct Relation {
    schema: TableSchema,
    tuples: BTreeSet<Tuple>,
    symbols: Option<Arc<SymbolTable>>,
    /// `true` for relations *stored in* a database (inserting a new
    /// string interns it — the data write path); `false` for result
    /// relations built via [`Database::fresh_relation`], whose inserts
    /// only map strings already interned (an unknown query literal in an
    /// output head must not grow the shared table).
    intern_on_insert: bool,
    /// Lazily-built per-column statistics ([`Relation::stats`]): `None`
    /// until first read or after an invalidating mutation. Interior
    /// mutability lets planners materialize stats through the shared
    /// `&Database` snapshot; inserts keep a live cache current
    /// incrementally, deletes and re-interning invalidate it.
    stats: Mutex<Option<Arc<TableStats>>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.clone(),
            symbols: self.symbols.clone(),
            intern_on_insert: self.intern_on_insert,
            stats: Mutex::new(self.stats.lock().expect("stats lock").clone()),
        }
    }
}

impl Relation {
    /// An empty instance of `schema`.
    pub fn empty(schema: TableSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
            symbols: None,
            intern_on_insert: false,
            stats: Mutex::new(None),
        }
    }

    /// Builds a relation from rows, checking arity.
    pub fn from_rows<V, R, I>(schema: TableSchema, rows: I) -> CoreResult<Self>
    where
        V: Into<Value>,
        R: IntoIterator<Item = V>,
        I: IntoIterator<Item = R>,
    {
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.insert(Tuple::new(row))?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The relation's name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// The symbol table this relation interns into, if attached.
    pub fn symbols(&self) -> Option<&Arc<SymbolTable>> {
        self.symbols.as_ref()
    }

    /// Attaches `symbols` and re-interns the stored tuples against it.
    /// Called by [`Database::add_relation`]; a relation moving between
    /// databases is resolved out of its old table first, so ids never
    /// leak across tables.
    pub(crate) fn attach_symbols(&mut self, symbols: Arc<SymbolTable>) {
        // Re-interning may change the stored representation (`Str` ↔
        // `Sym`), which changes sketch hashes — rebuild lazily.
        *self.stats.get_mut().expect("stats lock") = None;
        if let Some(old) = &self.symbols {
            if Arc::ptr_eq(old, &symbols) {
                // Same table (e.g. a result materialized back into its
                // own database): from now on it stores data, so new
                // strings intern again. Any raw Str literals it carries
                // are interned by the pass below.
                self.intern_on_insert = true;
                if self
                    .tuples
                    .iter()
                    .any(|t| t.iter().any(|v| matches!(v, Value::Str(_))))
                {
                    let old = old.clone();
                    self.tuples = self
                        .tuples
                        .iter()
                        .map(|t| intern_tuple_with(t, &old))
                        .collect();
                }
                return;
            }
            // Re-home: resolve through the old table before re-interning.
            let old = old.clone();
            self.tuples = self
                .tuples
                .iter()
                .map(|t| resolve_tuple_with(t, &old))
                .collect();
        }
        if self
            .tuples
            .iter()
            .any(|t| t.iter().any(|v| matches!(v, Value::Str(_))))
        {
            self.tuples = self
                .tuples
                .iter()
                .map(|t| intern_tuple_with(t, &symbols))
                .collect();
        }
        self.symbols = Some(symbols);
        self.intern_on_insert = true;
    }

    /// Resolves the stored tuples out of the attached table (if any) and
    /// detaches it, leaving raw `Str` values — the representation of
    /// [`Database::uninterned`].
    pub(crate) fn detach_resolved(&mut self) {
        *self.stats.get_mut().expect("stats lock") = None;
        if let Some(symbols) = self.symbols.take() {
            self.tuples = self
                .tuples
                .iter()
                .map(|t| resolve_tuple_with(t, &symbols))
                .collect();
        }
        self.intern_on_insert = false;
    }

    /// Inserts a tuple, checking arity and interning string values when a
    /// symbol table is attached. Returns `Ok(true)` if it was new.
    ///
    /// **Contract:** any [`Value::Sym`] in `tuple` must have been handed
    /// out by *this* relation's attached table (true for everything built
    /// from this database's tuples — evaluator results, projections).
    /// When copying tuples from another database, resolve them first
    /// ([`Database::resolve_tuple`]) so their strings re-intern here;
    /// whole relations re-home automatically via
    /// [`Database::add_relation`].
    pub fn insert(&mut self, tuple: Tuple) -> CoreResult<bool> {
        if tuple.arity() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                table: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        let tuple = match &self.symbols {
            Some(symbols) if tuple.iter().any(|v| matches!(v, Value::Str(_))) => {
                if self.intern_on_insert {
                    intern_tuple_with(&tuple, symbols)
                } else {
                    // Result relation: map known strings to their symbol,
                    // keep unknown literals as Str (never grow the table).
                    lookup_tuple_with(&tuple, symbols)
                }
            }
            _ => tuple,
        };
        {
            // Keep a live stats cache current: observe fresh tuples
            // incrementally. When no cache is materialized (bulk load,
            // result relations) this is one uncontended lock + a `None`
            // check — the first planner read builds stats in one scan.
            let mut cached = self.stats.lock().expect("stats lock");
            if let Some(st) = cached.as_mut() {
                if !self.tuples.contains(&tuple) {
                    Arc::make_mut(st).observe(&tuple);
                }
            }
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Convenience: insert a row of values.
    pub fn insert_values<V: Into<Value>, I: IntoIterator<Item = V>>(
        &mut self,
        row: I,
    ) -> CoreResult<bool> {
        self.insert(Tuple::new(row))
    }

    /// `true` if the tuple is present. `Str` probes are mapped through
    /// the attached table so the edge representation matches — via
    /// *lookup only*: an unknown string cannot be stored, so the probe
    /// answers `false` without growing the shared table.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        match &self.symbols {
            Some(symbols) if tuple.iter().any(|v| matches!(v, Value::Str(_))) => {
                self.tuples.contains(&lookup_tuple_with(tuple, symbols))
            }
            _ => self.tuples.contains(tuple),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over tuples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The underlying tuple set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// Iterates the relation as fixed-size *column chunks*: each item
    /// covers up to `chunk_rows` consecutive tuples (in deterministic
    /// set order), transposed into one `Vec<Value>` per attribute. This
    /// is the scan feed of the vectorized executor — columnar layout
    /// with bounded working-set size — but is public API usable by any
    /// column-at-a-time consumer.
    pub fn column_chunks(&self, chunk_rows: usize) -> impl Iterator<Item = Vec<Vec<Value>>> + '_ {
        let chunk_rows = chunk_rows.max(1);
        let arity = self.schema.arity();
        let mut iter = self.tuples.iter().peekable();
        std::iter::from_fn(move || {
            iter.peek()?;
            let mut cols: Vec<Vec<Value>> =
                (0..arity).map(|_| Vec::with_capacity(chunk_rows)).collect();
            for t in iter.by_ref().take(chunk_rows) {
                for (c, v) in t.iter().enumerate() {
                    cols[c].push(v.clone());
                }
            }
            Some(cols)
        })
    }

    /// This relation with interned symbols resolved back to strings
    /// (through the attached table), re-sorted under the plain string
    /// order. Free-standing relations are returned as-is.
    pub fn resolved(&self) -> Relation {
        match &self.symbols {
            None => self.clone(),
            Some(symbols) => Relation {
                schema: self.schema.clone(),
                tuples: self
                    .tuples
                    .iter()
                    .map(|t| resolve_tuple_with(t, symbols))
                    .collect(),
                symbols: None,
                intern_on_insert: false,
                stats: Mutex::new(None),
            },
        }
    }

    /// Removes a tuple; like [`Relation::contains`], `Str` probes are
    /// mapped through the attached table via *lookup only*, so deleting
    /// an unknown string answers `false` without growing the shared
    /// table. Returns `true` if the tuple was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        let removed = match &self.symbols {
            Some(symbols) if tuple.iter().any(|v| matches!(v, Value::Str(_))) => {
                self.tuples.remove(&lookup_tuple_with(tuple, symbols))
            }
            _ => self.tuples.remove(tuple),
        };
        if removed {
            // Sketches and ranges cannot unobserve — invalidate and let
            // the next planner read rebuild in one scan.
            *self.stats.get_mut().expect("stats lock") = None;
        }
        removed
    }

    /// Per-column statistics over the current tuple set: row count,
    /// distinct-value sketches, and `Int` min/max per attribute.
    ///
    /// Built lazily on first call (one scan) and cached; inserts through
    /// [`Relation::insert`] keep the cache current incrementally, while
    /// deletes and symbol re-attachment invalidate it. The returned
    /// `Arc` is a consistent snapshot — later mutations don't alter it.
    pub fn stats(&self) -> Arc<TableStats> {
        let mut cached = self.stats.lock().expect("stats lock");
        if cached.is_none() {
            *cached = Some(Arc::new(TableStats::of(
                self.schema.arity(),
                self.tuples.iter(),
            )));
        }
        cached.as_ref().expect("just built").clone()
    }

    /// Approximate in-memory size of the tuple set — the weight used by
    /// size-aware cache admission.
    pub fn approx_bytes(&self) -> usize {
        self.tuples.iter().map(Tuple::approx_bytes).sum()
    }

    /// Returns this relation under a new schema name (arity must match).
    pub fn renamed(&self, new_schema: TableSchema) -> CoreResult<Relation> {
        if new_schema.arity() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                table: new_schema.name().to_string(),
                expected: new_schema.arity(),
                actual: self.schema.arity(),
            });
        }
        Ok(Relation {
            schema: new_schema,
            tuples: self.tuples.clone(),
            symbols: self.symbols.clone(),
            intern_on_insert: self.intern_on_insert,
            // Same tuple set, so the cached stats stay valid.
            stats: Mutex::new(self.stats.lock().expect("stats lock").clone()),
        })
    }
}

/// Equality is *content* equality: schemas match and the tuple sets hold
/// the same values once symbols are resolved. Relations attached to the
/// same table (or to none) compare raw — ids are content there.
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        if self.schema != other.schema || self.tuples.len() != other.tuples.len() {
            return false;
        }
        let same_table = match (&self.symbols, &other.symbols) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if same_table {
            self.tuples == other.tuples
        } else {
            self.resolved().tuples == other.resolved().tuples
        }
    }
}

impl Eq for Relation {}

/// Rejects a mutation batch whose rows don't all match the schema arity
/// — checked up front so a failed batch leaves the relation untouched.
fn check_batch_arity(table: &str, expected: usize, rows: &[Tuple]) -> CoreResult<()> {
    match rows.iter().find(|row| row.arity() != expected) {
        Some(bad) => Err(CoreError::ArityMismatch {
            table: table.to_string(),
            expected,
            actual: bad.arity(),
        }),
        None => Ok(()),
    }
}

fn intern_tuple_with(t: &Tuple, symbols: &SymbolTable) -> Tuple {
    Tuple(
        t.iter()
            .map(|v| match v {
                Value::Str(s) => Value::Sym(symbols.intern(s)),
                other => other.clone(),
            })
            .collect(),
    )
}

/// Maps `Str` values to their symbol when one exists; unknown strings
/// stay `Str` (the result-relation insert path — see
/// [`Relation::insert`]).
fn lookup_tuple_with(t: &Tuple, symbols: &SymbolTable) -> Tuple {
    Tuple(
        t.iter()
            .map(|v| match v {
                Value::Str(s) => match symbols.lookup(s) {
                    Some(id) => Value::Sym(id),
                    None => v.clone(),
                },
                other => other.clone(),
            })
            .collect(),
    )
}

fn resolve_tuple_with(t: &Tuple, symbols: &SymbolTable) -> Tuple {
    Tuple(
        t.iter()
            .map(|v| match v {
                Value::Sym(id) => Value::Str(symbols.resolve(*id).to_string()),
                other => other.clone(),
            })
            .collect(),
    )
}

/// A database: a set of relation instances, keyed by table name, plus the
/// symbol table their string values are interned into.
///
/// Relations are held behind `Arc`s, so cloning a database is cheap —
/// one pointer copy per relation — and the single-relation mutation
/// methods ([`Database::insert_rows`], [`Database::delete_rows`],
/// [`Database::create_table`]) are copy-on-write: only the touched
/// relation's tuple set is actually cloned; every other relation stays
/// shared with the source snapshot. This is what makes per-mutation
/// epochs affordable for a service.
#[derive(Debug, Clone)]
pub struct Database {
    relations: BTreeMap<String, Arc<Relation>>,
    symbols: Arc<SymbolTable>,
    interning: bool,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            relations: BTreeMap::new(),
            symbols: Arc::new(SymbolTable::new()),
            interning: true,
        }
    }
}

impl Database {
    /// An empty database (interning enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database with interning *disabled*: string values are
    /// stored as raw `Value::Str`. This is the reference representation
    /// used by differential tests — slower, but with no id indirection.
    pub fn uninterned() -> Self {
        Database {
            interning: false,
            ..Database::default()
        }
    }

    /// A database with an empty instance for every table in `catalog`.
    pub fn empty_for(catalog: &Catalog) -> Self {
        let mut db = Database::new();
        for schema in catalog.iter() {
            db.add_relation(Relation::empty(schema.clone()));
        }
        db
    }

    /// The database's symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// `true` unless this database was built with [`Database::uninterned`].
    pub fn interning_enabled(&self) -> bool {
        self.interning
    }

    /// Adds (or replaces) a relation. With interning enabled the
    /// relation's string values are interned into this database's symbol
    /// table and further inserts through it intern too.
    pub fn add_relation(&mut self, mut relation: Relation) {
        if self.interning {
            relation.attach_symbols(self.symbols.clone());
        } else {
            // The reference representation stores raw strings only; a
            // relation arriving from an interned database is resolved
            // out of its old table (its ids mean nothing here).
            relation.detach_resolved();
        }
        self.relations
            .insert(relation.name().to_string(), Arc::new(relation));
    }

    /// Creates an empty table; errors if the name is already taken (a
    /// durable mutation must not silently drop existing data).
    pub fn create_table(&mut self, schema: TableSchema) -> CoreResult<()> {
        if self.relations.contains_key(schema.name()) {
            return Err(CoreError::DuplicateTable(schema.name().to_string()));
        }
        self.add_relation(Relation::empty(schema));
        Ok(())
    }

    /// Inserts `rows` (edge `Int`/`Str` representation) into `table` by
    /// copy-on-write: if the relation is shared with another database
    /// snapshot it is cloned once, all other relations stay shared.
    /// Arity is validated for the whole batch before anything is
    /// touched. Returns how many rows were actually new (set
    /// semantics: duplicates don't count).
    pub fn insert_rows(&mut self, table: &str, rows: &[Tuple]) -> CoreResult<usize> {
        let rel = self
            .relations
            .get_mut(table)
            .ok_or_else(|| CoreError::UnknownTable(table.to_string()))?;
        check_batch_arity(table, rel.schema().arity(), rows)?;
        let rel = Arc::make_mut(rel);
        let mut applied = 0;
        for row in rows {
            if rel.insert(row.clone())? {
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Removes `rows` from `table` by copy-on-write (see
    /// [`Database::insert_rows`]). Returns how many rows were actually
    /// present and removed; deleting an absent row is a no-op, not an
    /// error.
    pub fn delete_rows(&mut self, table: &str, rows: &[Tuple]) -> CoreResult<usize> {
        let rel = self
            .relations
            .get_mut(table)
            .ok_or_else(|| CoreError::UnknownTable(table.to_string()))?;
        check_batch_arity(table, rel.schema().arity(), rows)?;
        let rel = Arc::make_mut(rel);
        Ok(rows.iter().filter(|row| rel.remove(row)).count())
    }

    /// An empty relation attached to this database's symbol table — the
    /// constructor for *result* relations. Evaluators build their output
    /// through this so a result's interned values stay interpretable on
    /// their own: rendering resolves, content equality resolves, and
    /// adding the result to another database re-homes the ids instead of
    /// silently reinterpreting them against the wrong table.
    pub fn fresh_relation(&self, schema: TableSchema) -> Relation {
        let mut rel = Relation::empty(schema);
        if self.interning {
            rel.symbols = Some(self.symbols.clone());
        }
        rel
    }

    /// Interns a single edge value against this database: `Str` becomes
    /// `Sym` (identity for everything else, and on uninterned databases).
    /// This *appends* to the symbol table — it is the write path for data
    /// entering the database; query constants go through
    /// [`Database::lookup_value`] instead.
    pub fn intern_value(&self, v: &Value) -> Value {
        match v {
            Value::Str(s) if self.interning => Value::Sym(self.symbols.intern(s)),
            other => other.clone(),
        }
    }

    /// Maps a query constant to the stored representation *without*
    /// growing the symbol table: a string already interned becomes its
    /// `Sym`; an unknown string stays `Str` — no stored tuple of this
    /// snapshot can hold a symbol for it, so equality against stored
    /// values is correctly always-false and order comparisons resolve
    /// by text ([`CmpOp::eval_resolved`](crate::CmpOp::eval_resolved)).
    /// Evaluators call this once per constant at compile time; routing
    /// them through `intern_value` instead would let clients grow the
    /// shared table without bound (one entry per distinct literal ever
    /// queried).
    pub fn lookup_value(&self, v: &Value) -> Value {
        match v {
            Value::Str(s) if self.interning => match self.symbols.lookup(s) {
                Some(id) => Value::Sym(id),
                None => v.clone(),
            },
            other => other.clone(),
        }
    }

    /// Resolves one value: `Sym` back to `Str` (identity otherwise).
    pub fn resolve_value(&self, v: &Value) -> Value {
        match v {
            Value::Sym(id) => Value::Str(self.symbols.resolve(*id).to_string()),
            other => other.clone(),
        }
    }

    /// Resolves every value of a tuple.
    pub fn resolve_tuple(&self, t: &Tuple) -> Tuple {
        resolve_tuple_with(t, &self.symbols)
    }

    /// Resolves a relation (typically a query result over this database)
    /// back to the string representation, re-sorted under the plain
    /// `Int < Str` order — the edge format for printing and the wire.
    pub fn resolve_relation(&self, rel: &Relation) -> Relation {
        Relation {
            schema: rel.schema.clone(),
            tuples: rel.tuples.iter().map(|t| self.resolve_tuple(t)).collect(),
            symbols: None,
            intern_on_insert: false,
            stats: Mutex::new(None),
        }
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(|r| r.as_ref())
    }

    /// Looks up a relation or returns an error.
    pub fn require(&self, name: &str) -> CoreResult<&Relation> {
        self.relation(name)
            .ok_or_else(|| CoreError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup (copy-on-write: a relation shared with another
    /// database snapshot is cloned first). The relation keeps its
    /// symbol-table attachment, so inserts through it still intern.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name).map(Arc::make_mut)
    }

    /// Iterates over relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values().map(|r| r.as_ref())
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` if the database stores no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The catalog implied by this database's schemas.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for r in self.relations.values() {
            // Names are unique by construction of the BTreeMap.
            c.add(r.schema().clone()).expect("unique by map key");
        }
        c
    }

    /// The active domain: every value appearing in any relation, in the
    /// stored (interned) representation and order. Extend with query
    /// constants before using it for domain-closure arguments (the
    /// classic safety construction, Ullman \[77\]).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for rel in self.relations.values() {
            for t in rel.iter() {
                dom.extend(t.iter().cloned());
            }
        }
        dom
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// A 64-bit content fingerprint: two databases with the same schemas
    /// and (resolved) tuple sets hash equal — regardless of interning
    /// order, because tuples are hashed in their resolved string form,
    /// re-sorted per relation. Computed once per load/reload, it keys
    /// in-memory result caches and lets a service tell reloads apart; it
    /// is not a persistent checksum.
    ///
    /// Defined as [`combine_fingerprints`] over the per-relation
    /// [`Database::relation_fingerprint`] digests (in name order), so a
    /// caller tracking single-relation deltas can maintain the same
    /// value incrementally — rehash only the touched relation and
    /// re-combine — instead of rehashing every row of the database.
    pub fn fingerprint(&self) -> u64 {
        combine_fingerprints(
            self.relations.len(),
            self.relations
                .values()
                .map(|r| self.relation_fingerprint(r)),
        )
    }

    /// The per-relation digest [`Database::fingerprint`] is built from:
    /// schema, cardinality, and the resolved (string-form) tuple set.
    pub fn relation_fingerprint(&self, rel: &Relation) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        rel.schema().hash(&mut h);
        rel.len().hash(&mut h);
        let mut rows: Vec<Tuple> = rel.iter().map(|t| self.resolve_tuple(t)).collect();
        rows.sort_unstable();
        for t in rows {
            t.hash(&mut h);
        }
        h.finish()
    }
}

/// Folds per-relation digests (in relation-name order) plus the relation
/// count into one database fingerprint — the combination step of
/// [`Database::fingerprint`], exposed so delta-tracking callers can
/// recombine cached digests after a single-relation change.
pub fn combine_fingerprints(count: usize, prints: impl Iterator<Item = u64>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    count.hash(&mut h);
    for p in prints {
        p.hash(&mut h);
    }
    h.finish()
}

/// Content equality over the relation map (delegates to the resolving
/// [`Relation`] equality); the symbol table itself is representation, not
/// content.
impl PartialEq for Database {
    fn eq(&self, other: &Database) -> bool {
        self.relations == other.relations
    }
}

impl Eq for Database {}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations.values() {
            writeln!(f, "{}", crate::pretty::render_relation(rel))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_rows(
            TableSchema::new("R", ["A", "B"]),
            [[1i64, 2], [1, 3], [2, 2]],
        )
        .unwrap()
    }

    #[test]
    fn set_semantics_dedups() {
        let mut r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.insert_values([1i64, 2]).unwrap());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn arity_checked() {
        let mut r = sample();
        assert!(matches!(
            r.insert_values([1i64]),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn tuple_ops() {
        let t = Tuple::new([1i64, 2, 3]);
        let u = Tuple::new([4i64]);
        assert_eq!(t.concat(&u), Tuple::new([1i64, 2, 3, 4]));
        assert_eq!(t.project(&[2, 0]), Tuple::new([3i64, 1]));
        assert_eq!(t.to_string(), "(1, 2, 3)");
    }

    #[test]
    fn active_domain_collects_all_values() {
        let mut db = Database::new();
        db.add_relation(sample());
        db.add_relation(Relation::from_rows(TableSchema::new("S", ["B"]), [[9i64]]).unwrap());
        let dom: Vec<Value> = db.active_domain().into_iter().collect();
        assert_eq!(
            dom,
            vec![Value::int(1), Value::int(2), Value::int(3), Value::int(9)]
        );
    }

    #[test]
    fn database_catalog_roundtrip() {
        let mut db = Database::new();
        db.add_relation(sample());
        let cat = db.catalog();
        assert_eq!(cat.require("R").unwrap().attrs(), ["A", "B"]);
    }

    #[test]
    fn empty_for_catalog() {
        let cat =
            Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["B"])])
                .unwrap();
        let db = Database::empty_for(&cat);
        assert_eq!(db.len(), 2);
        assert!(db.require("R").unwrap().is_empty());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = Database::new();
        a.add_relation(sample());
        let mut b = Database::new();
        b.add_relation(sample());
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.relation_mut("R")
            .unwrap()
            .insert_values([9i64, 9])
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Schema-only differences also show up.
        let mut c = Database::new();
        c.add_relation(Relation::empty(TableSchema::new("R", ["A", "B"])));
        let mut d = Database::new();
        d.add_relation(Relation::empty(TableSchema::new("R", ["A", "C"])));
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_interning_order() {
        // Same content, interned in different id orders ('red' gets id 0
        // in a, id 1 in c), must fingerprint and compare equal.
        let mut a = Database::new();
        a.add_relation(
            Relation::from_rows(TableSchema::new("T", ["x"]), [["red"], ["green"]]).unwrap(),
        );
        let mut c = Database::new();
        c.add_relation(
            Relation::from_rows(TableSchema::new("T", ["x"]), [["green"], ["red"]]).unwrap(),
        );
        assert_eq!(a.fingerprint(), c.fingerprint());
        assert_eq!(a, c);
    }

    #[test]
    fn lookup_value_never_grows_the_table() {
        let mut db = Database::new();
        db.add_relation(Relation::from_rows(TableSchema::new("T", ["x"]), [["red"]]).unwrap());
        assert_eq!(db.symbols().len(), 1);
        // Known strings map to their symbol; unknown ones stay Str and
        // do NOT get interned (query literals must not leak memory).
        assert!(db.lookup_value(&Value::str("red")).is_sym());
        assert_eq!(db.lookup_value(&Value::str("nope")), Value::str("nope"));
        assert_eq!(db.symbols().len(), 1);
    }

    #[test]
    fn result_relations_never_intern_unknown_literals() {
        let mut db = Database::new();
        db.add_relation(Relation::from_rows(TableSchema::new("T", ["x"]), [["red"]]).unwrap());
        assert_eq!(db.symbols().len(), 1);
        // A result relation (what evaluators build): inserting a tuple
        // with an unknown head literal must NOT grow the shared table.
        let mut result = db.fresh_relation(TableSchema::new("q", ["x", "tag"]));
        result
            .insert(Tuple::new(vec![Value::str("red"), Value::str("tag-1")]))
            .unwrap();
        assert_eq!(db.symbols().len(), 1, "unknown literal must stay Str");
        let t = result.iter().next().unwrap();
        assert!(t.get(0).is_sym(), "known string maps to its symbol");
        assert_eq!(t.get(1), &Value::str("tag-1"));
        // Resolution still restores the full string view.
        let resolved = result.resolved();
        let t = resolved.iter().next().unwrap();
        assert_eq!(t.get(0), &Value::str("red"));
        // Materializing the result as a table upgrades it to the data
        // path: the raw literal is interned at attach.
        db.add_relation(result.renamed(TableSchema::new("Q", ["x", "tag"])).unwrap());
        assert_eq!(db.symbols().len(), 2);
        let t = db.require("Q").unwrap().iter().next().unwrap();
        assert!(t.iter().all(|v| !matches!(v, Value::Str(_))));
    }

    #[test]
    fn uninterned_add_relation_resolves_foreign_syms() {
        let mut interned = Database::new();
        interned
            .add_relation(Relation::from_rows(TableSchema::new("T", ["x"]), [["red"]]).unwrap());
        let mut raw = Database::uninterned();
        raw.add_relation(interned.require("T").unwrap().clone());
        let t = raw.require("T").unwrap().iter().next().unwrap();
        assert_eq!(t.get(0), &Value::str("red"));
        // fingerprint/resolve must not panic on foreign ids.
        assert_eq!(raw.fingerprint(), interned.fingerprint());
        assert_eq!(raw, interned);
    }

    #[test]
    fn interning_swaps_strings_for_syms_and_resolves_back() {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("Boat", ["bid", "color"]),
                [
                    vec![Value::int(101), Value::str("red")],
                    vec![Value::int(102), Value::str("green")],
                ],
            )
            .unwrap(),
        );
        let rel = db.require("Boat").unwrap();
        // Stored values are ints and symbols, never raw strings.
        for t in rel.iter() {
            assert!(t.iter().all(|v| !matches!(v, Value::Str(_))));
        }
        // Inserts through relation_mut keep interning.
        db.relation_mut("Boat")
            .unwrap()
            .insert_values(vec![Value::int(103), Value::str("red")])
            .unwrap();
        assert_eq!(db.symbols().len(), 2, "'red' interned once");
        // Resolution restores the string view.
        let resolved = db.require("Boat").unwrap().resolved();
        assert!(resolved
            .iter()
            .any(|t| t.get(1) == &Value::str("green") && t.get(0) == &Value::int(102)));
        assert_eq!(resolved.len(), 3);
        // contains() accepts the edge (Str) representation, and probing
        // with unknown strings answers false without growing the table.
        assert!(db
            .require("Boat")
            .unwrap()
            .contains(&Tuple::new(vec![Value::int(101), Value::str("red")])));
        let before = db.symbols().len();
        assert!(!db.require("Boat").unwrap().contains(&Tuple::new(vec![
            Value::int(101),
            Value::str("never-stored")
        ])));
        assert_eq!(db.symbols().len(), before);
    }

    #[test]
    fn uninterned_database_keeps_raw_strings() {
        let mut db = Database::uninterned();
        db.add_relation(
            Relation::from_rows(TableSchema::new("T", ["a"]), [[Value::str("x")]]).unwrap(),
        );
        let t = db.require("T").unwrap().iter().next().unwrap();
        assert_eq!(t.get(0), &Value::str("x"));
        assert_eq!(db.symbols().len(), 0);
        assert_eq!(db.intern_value(&Value::str("x")), Value::str("x"));
    }

    #[test]
    fn content_equality_across_interning_orders() {
        // An interned and an uninterned database with the same content
        // compare equal (resolving comparison).
        let rows = || {
            Relation::from_rows(
                TableSchema::new("T", ["a"]),
                [[Value::str("b")], [Value::str("a")]],
            )
            .unwrap()
        };
        let mut interned = Database::new();
        interned.add_relation(rows());
        let mut raw = Database::uninterned();
        raw.add_relation(rows());
        assert_eq!(interned, raw);
        raw.relation_mut("T")
            .unwrap()
            .insert_values([Value::str("c")])
            .unwrap();
        assert_ne!(interned, raw);
    }

    #[test]
    fn renamed_relation_keeps_tuples() {
        let r = sample();
        let r2 = r.renamed(TableSchema::new("R_1", ["A", "B"])).unwrap();
        assert_eq!(r2.name(), "R_1");
        assert_eq!(r2.len(), 3);
        assert!(r.renamed(TableSchema::new("X", ["A"])).is_err());
    }

    #[test]
    fn insert_and_delete_rows_apply_copy_on_write() {
        let mut base = Database::new();
        base.add_relation(sample());
        base.add_relation(Relation::from_rows(TableSchema::new("S", ["B"]), [[9i64]]).unwrap());
        let mut next = base.clone();
        assert_eq!(
            next.insert_rows("R", &[Tuple::new([7i64, 7]), Tuple::new([1i64, 2])])
                .unwrap(),
            1,
            "duplicate row doesn't count"
        );
        assert_eq!(next.delete_rows("R", &[Tuple::new([2i64, 2])]).unwrap(), 1);
        assert_eq!(
            next.delete_rows("R", &[Tuple::new([5i64, 5])]).unwrap(),
            0,
            "absent row is a no-op"
        );
        // The source snapshot is untouched; the shared relation stays
        // literally shared (copy-on-write touched only R).
        assert_eq!(base.require("R").unwrap().len(), 3);
        assert_eq!(next.require("R").unwrap().len(), 3);
        assert!(next.require("R").unwrap().contains(&Tuple::new([7i64, 7])));
        assert!(Arc::ptr_eq(
            base.relations.get("S").unwrap(),
            next.relations.get("S").unwrap()
        ));
        assert!(!Arc::ptr_eq(
            base.relations.get("R").unwrap(),
            next.relations.get("R").unwrap()
        ));
    }

    #[test]
    fn batch_arity_is_checked_before_any_row_lands() {
        let mut db = Database::new();
        db.add_relation(sample());
        let err = db.insert_rows("R", &[Tuple::new([8i64, 8]), Tuple::new([9i64])]);
        assert!(matches!(err, Err(CoreError::ArityMismatch { .. })));
        assert_eq!(db.require("R").unwrap().len(), 3, "failed batch is atomic");
        assert!(matches!(
            db.insert_rows("Nope", &[Tuple::new([1i64])]),
            Err(CoreError::UnknownTable(_))
        ));
    }

    #[test]
    fn delete_accepts_edge_strings_and_create_table_rejects_duplicates() {
        let mut db = Database::new();
        db.add_relation(Relation::from_rows(TableSchema::new("T", ["x"]), [["red"]]).unwrap());
        // Deleting by the edge (Str) representation maps through the
        // table; an unknown string can't match and mustn't intern.
        let before = db.symbols().len();
        assert_eq!(
            db.delete_rows("T", &[Tuple::new([Value::str("nope")])])
                .unwrap(),
            0
        );
        assert_eq!(db.symbols().len(), before);
        assert_eq!(
            db.delete_rows("T", &[Tuple::new([Value::str("red")])])
                .unwrap(),
            1
        );
        assert!(db.require("T").unwrap().is_empty());
        db.create_table(TableSchema::new("U", ["y"])).unwrap();
        assert!(db.require("U").unwrap().is_empty());
        assert!(matches!(
            db.create_table(TableSchema::new("T", ["z"])),
            Err(CoreError::DuplicateTable(_))
        ));
    }

    #[test]
    fn relation_rehomes_across_databases() {
        let mut a = Database::new();
        a.add_relation(
            Relation::from_rows(TableSchema::new("T", ["x"]), [["red"], ["blue"]]).unwrap(),
        );
        let mut b = Database::new();
        // Force a different id order in b's table.
        b.add_relation(Relation::from_rows(TableSchema::new("U", ["y"]), [["blue"]]).unwrap());
        // Moving T from a to b re-interns against b's table.
        b.add_relation(a.require("T").unwrap().clone());
        let t = b.require("T").unwrap().resolved();
        assert!(t.iter().any(|r| r.get(0) == &Value::str("red")));
        assert!(t.iter().any(|r| r.get(0) == &Value::str("blue")));
        assert_eq!(a.require("T").unwrap(), b.require("T").unwrap());
    }
}
