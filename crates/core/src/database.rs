//! Tuples, relation instances, and databases.

use crate::error::{CoreError, CoreResult};
use crate::schema::{Catalog, TableSchema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A tuple: an ordered list of values. Attribute names live in the schema
/// (the "set-of-mappings" view of §3.1 is recovered by pairing a tuple with
/// its [`TableSchema`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Builds a tuple from anything convertible to values.
    pub fn new<V: Into<Value>, I: IntoIterator<Item = V>>(values: I) -> Self {
        Tuple(values.into_iter().map(Into::into).collect())
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Iterates over the values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// Concatenates two tuples (used by products/joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Projects the tuple onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A relation instance: a schema plus a *set* of tuples.
///
/// `BTreeSet` enforces set semantics and gives deterministic iteration,
/// which keeps query evaluation, printing, and counterexample search
/// reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    schema: TableSchema,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// An empty instance of `schema`.
    pub fn empty(schema: TableSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds a relation from rows, checking arity.
    pub fn from_rows<V, R, I>(schema: TableSchema, rows: I) -> CoreResult<Self>
    where
        V: Into<Value>,
        R: IntoIterator<Item = V>,
        I: IntoIterator<Item = R>,
    {
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.insert(Tuple::new(row))?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The relation's name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Inserts a tuple, checking arity. Returns `Ok(true)` if it was new.
    pub fn insert(&mut self, tuple: Tuple) -> CoreResult<bool> {
        if tuple.arity() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                table: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Convenience: insert a row of values.
    pub fn insert_values<V: Into<Value>, I: IntoIterator<Item = V>>(
        &mut self,
        row: I,
    ) -> CoreResult<bool> {
        self.insert(Tuple::new(row))
    }

    /// `true` if the tuple is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over tuples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The underlying tuple set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// Returns this relation under a new schema name (arity must match).
    pub fn renamed(&self, new_schema: TableSchema) -> CoreResult<Relation> {
        if new_schema.arity() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                table: new_schema.name().to_string(),
                expected: new_schema.arity(),
                actual: self.schema.arity(),
            });
        }
        Ok(Relation {
            schema: new_schema,
            tuples: self.tuples.clone(),
        })
    }
}

/// A database: a set of relation instances, keyed by table name.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// A database with an empty instance for every table in `catalog`.
    pub fn empty_for(catalog: &Catalog) -> Self {
        let mut db = Database::new();
        for schema in catalog.iter() {
            db.add_relation(Relation::empty(schema.clone()));
        }
        db
    }

    /// Adds (or replaces) a relation.
    pub fn add_relation(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Looks up a relation or returns an error.
    pub fn require(&self, name: &str) -> CoreResult<&Relation> {
        self.relation(name)
            .ok_or_else(|| CoreError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Iterates over relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` if the database stores no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The catalog implied by this database's schemas.
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for r in self.relations.values() {
            // Names are unique by construction of the BTreeMap.
            c.add(r.schema().clone()).expect("unique by map key");
        }
        c
    }

    /// The active domain: every value appearing in any relation, in order.
    ///
    /// Extend with query constants before using it for domain-closure
    /// arguments (the classic safety construction, Ullman \[77\]).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for rel in self.relations.values() {
            for t in rel.iter() {
                dom.extend(t.iter().cloned());
            }
        }
        dom
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// A 64-bit content fingerprint: two databases with the same schemas
    /// and tuple sets hash equal. Iteration over `BTreeMap`/`BTreeSet` is
    /// ordered, so the fingerprint is deterministic for a given instance
    /// within one process — it keys in-memory result caches and lets a
    /// service tell reloads apart; it is not a persistent checksum.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.relations.len().hash(&mut h);
        for rel in self.relations.values() {
            rel.schema().hash(&mut h);
            rel.len().hash(&mut h);
            for t in rel.iter() {
                t.hash(&mut h);
            }
        }
        h.finish()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations.values() {
            writeln!(f, "{}", crate::pretty::render_relation(rel))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_rows(
            TableSchema::new("R", ["A", "B"]),
            [[1i64, 2], [1, 3], [2, 2]],
        )
        .unwrap()
    }

    #[test]
    fn set_semantics_dedups() {
        let mut r = sample();
        assert_eq!(r.len(), 3);
        assert!(!r.insert_values([1i64, 2]).unwrap());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn arity_checked() {
        let mut r = sample();
        assert!(matches!(
            r.insert_values([1i64]),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn tuple_ops() {
        let t = Tuple::new([1i64, 2, 3]);
        let u = Tuple::new([4i64]);
        assert_eq!(t.concat(&u), Tuple::new([1i64, 2, 3, 4]));
        assert_eq!(t.project(&[2, 0]), Tuple::new([3i64, 1]));
        assert_eq!(t.to_string(), "(1, 2, 3)");
    }

    #[test]
    fn active_domain_collects_all_values() {
        let mut db = Database::new();
        db.add_relation(sample());
        db.add_relation(Relation::from_rows(TableSchema::new("S", ["B"]), [[9i64]]).unwrap());
        let dom: Vec<Value> = db.active_domain().into_iter().collect();
        assert_eq!(
            dom,
            vec![Value::int(1), Value::int(2), Value::int(3), Value::int(9)]
        );
    }

    #[test]
    fn database_catalog_roundtrip() {
        let mut db = Database::new();
        db.add_relation(sample());
        let cat = db.catalog();
        assert_eq!(cat.require("R").unwrap().attrs(), ["A", "B"]);
    }

    #[test]
    fn empty_for_catalog() {
        let cat =
            Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["B"])])
                .unwrap();
        let db = Database::empty_for(&cat);
        assert_eq!(db.len(), 2);
        assert!(db.require("R").unwrap().is_empty());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = Database::new();
        a.add_relation(sample());
        let mut b = Database::new();
        b.add_relation(sample());
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.relation_mut("R")
            .unwrap()
            .insert_values([9i64, 9])
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Schema-only differences also show up.
        let mut c = Database::new();
        c.add_relation(Relation::empty(TableSchema::new("R", ["A", "B"])));
        let mut d = Database::new();
        d.add_relation(Relation::empty(TableSchema::new("R", ["A", "C"])));
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn renamed_relation_keeps_tuples() {
        let r = sample();
        let r2 = r.renamed(TableSchema::new("R_1", ["A", "B"])).unwrap();
        assert_eq!(r2.name(), "R_1");
        assert_eq!(r2.len(), 3);
        assert!(r.renamed(TableSchema::new("X", ["A"])).is_err());
    }
}
