//! The unified logical/physical plan IR and its single executor.
//!
//! The paper's Theorem 6 shows TRC\*, RA\*, Datalog\*, and SQL\* express
//! the same query patterns; this module is that claim turned into
//! runtime architecture. Every language front-end *lowers* its checked
//! AST into one [`Plan`] — scans with interned bound-key probes,
//! selectivity-ordered hash joins, negation/quantifier attachment,
//! projection with set-semantics dedup, and union — and one executor
//! runs it. The per-language `eval` modules shrink to lowerings; the
//! engine caches compiled [`Plan`]s (they are `Send + Sync` and carry
//! no borrows), so a hot serving path compiles a query shape once per
//! database epoch and executes it many times.
//!
//! The IR has two execution styles, both handled here:
//!
//! * **Pipelines** ([`Block`]): an ordered list of [`Scan`] steps, each
//!   binding either a whole tuple slot (TRC-style) or individual value
//!   slots (Datalog-style), probing a lazily-built hash index when key
//!   columns are bound, with filters (predicates, negated subplans,
//!   quantified blocks, negated-atom probes) attached to the earliest
//!   step after which their inputs are bound. TRC and SQL queries lower
//!   to one pipeline per union branch; each Datalog rule lowers to one
//!   pipeline, and a [`ProgramPlan`] sequences them by stratum.
//! * **Bulk operators** ([`OpNode`]): the RA\* operator tree
//!   (projection, selection, product, theta/natural join, difference,
//!   union, antijoin) with conditions compiled to column indices and
//!   interned constants, equi-join keys hashed, residual conditions
//!   checked per bucket.
//!
//! [`explain`] renders any plan as a tree of scan order, join strategy,
//! and bound keys — the diagnosability hook the service's `explain` op
//! serves.

pub use crate::batch::CHUNK_ROWS;
use crate::database::{Database, Relation, Tuple};
use crate::error::{CoreError, CoreResult};
use crate::plan::{self, IndexCache, KeyBuf};
use crate::schema::TableSchema;
use crate::symbol::SymbolTable;
use crate::value::Value;
use crate::CmpOp;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;

// ---------------------------------------------------------------------
// IR: terms, formulas, scans, blocks
// ---------------------------------------------------------------------

/// A compiled term: where a value comes from at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// An interned constant.
    Const(Value),
    /// A column of a bound tuple slot (TRC-style environments).
    Col {
        /// The tuple slot.
        slot: usize,
        /// The column within the bound tuple.
        col: usize,
    },
    /// A bound value slot (Datalog-style environments).
    Var(usize),
    /// A variable no scan binds — surfaces as an "unbound variable"
    /// error only when a full assignment forces its evaluation
    /// (matching the lazy failure contract of unsafe Datalog rules).
    Unbound(String),
    /// A wildcard in value position — lazy error, like [`Term::Unbound`].
    Wildcard,
}

/// A compiled comparison between two terms.
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    /// Left operand.
    pub left: Term,
    /// Comparison operator (order comparisons resolve interned strings
    /// lexicographically).
    pub op: CmpOp,
    /// Right operand.
    pub right: Term,
}

/// A compiled formula: the filter language attached to scans.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// An existentially quantified block (nested pipeline; succeeds on
    /// the first satisfying assignment).
    Exists(Block),
    /// A comparison.
    Pred(Pred),
    /// A negated-atom probe (Datalog `not P(…)`): succeeds iff no tuple
    /// of `rel` matches the key columns. With no key columns, succeeds
    /// iff `rel` is empty.
    NegProbe {
        /// Relation probed (EDB table or computed IDB).
        rel: String,
        /// Constrained columns.
        cols: Vec<usize>,
        /// The values the columns must equal (parallel to `cols`).
        terms: Vec<Term>,
        /// Index-cache slot for the probe.
        index_id: usize,
    },
}

/// Index id marking a full (unkeyed) scan.
pub const FULL_SCAN: usize = usize::MAX;

/// One scheduled scan of a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Scan {
    /// Relation scanned (EDB table or computed IDB).
    pub rel: String,
    /// Tuple slot bound to each scanned tuple (TRC-style), if any.
    pub tuple_slot: Option<usize>,
    /// Columns constrained by equality to bound terms; empty for a full
    /// scan.
    pub key_cols: Vec<usize>,
    /// The bound terms the key columns must equal (parallel to
    /// `key_cols`).
    pub key_terms: Vec<Term>,
    /// Value slots bound from scanned columns (Datalog-style):
    /// `(column, slot)` pairs.
    pub bind_cols: Vec<(usize, usize)>,
    /// Intra-tuple equality checks — `(column, slot)` where the slot
    /// was bound earlier in this same scan (repeated variables).
    pub check_cols: Vec<(usize, usize)>,
    /// Index-cache slot ([`FULL_SCAN`] for unkeyed scans).
    pub index_id: usize,
    /// Conjuncts whose inputs are all bound once this scan binds.
    pub filters: Vec<Formula>,
}

impl Scan {
    /// `true` if this scan probes a hash index rather than iterating.
    pub fn is_keyed(&self) -> bool {
        !self.key_cols.is_empty()
    }
}

/// A planned pipeline: conjuncts evaluable before any scan, then the
/// ordered scans.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Filters with no scan dependencies.
    pub pre: Vec<Formula>,
    /// The scans, in chosen execution order.
    pub scans: Vec<Scan>,
}

/// The runtime environment a plan needs: slot counts and index-cache
/// slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnvShape {
    /// Tuple slots (TRC-style whole-tuple bindings).
    pub tuple_slots: usize,
    /// Value slots (Datalog-style per-column bindings).
    pub value_slots: usize,
    /// Hash-index cache slots handed out during lowering.
    pub indexes: usize,
}

// ---------------------------------------------------------------------
// IR: top-level plans
// ---------------------------------------------------------------------

/// A compiled non-Boolean query: enumerate the root block, project the
/// output head from its defining terms, validate deferred conjuncts
/// with the head bound, dedup into a set-semantics relation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Output schema.
    pub out: TableSchema,
    /// The tuple slot the output head occupies during deferred
    /// validation.
    pub head_slot: usize,
    /// The root pipeline.
    pub root: Block,
    /// One defining term per output attribute.
    pub defs: Vec<Term>,
    /// Conjuncts mentioning the head — validated per candidate tuple.
    pub deferred: Vec<Formula>,
    /// Environment requirements.
    pub shape: EnvShape,
    /// The planner's output-cardinality estimate (pre-projection upper
    /// bound), recorded at compile time under the cost-based strategy.
    /// Execution feedback compares it against the actual row count to
    /// decide whether re-planning is worthwhile.
    pub est_rows: Option<u64>,
}

/// A compiled Boolean sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct SentencePlan {
    /// The sentence body.
    pub formula: Formula,
    /// Environment requirements.
    pub shape: EnvShape,
}

/// One compiled Datalog rule: a pipeline plus the head projection.
#[derive(Debug, Clone, PartialEq)]
pub struct RulePlan {
    /// Head terms (projection; may contain lazy-error terms).
    pub head: Vec<Term>,
    /// The rule body pipeline.
    pub block: Block,
    /// Environment requirements.
    pub shape: EnvShape,
}

/// One stratum of a compiled Datalog program: every rule of one IDB.
#[derive(Debug, Clone, PartialEq)]
pub struct Stratum {
    /// The IDB predicate this stratum computes.
    pub pred: String,
    /// Its rules (results union under set semantics).
    pub rules: Vec<RulePlan>,
    /// The planner's estimate of this IDB's size — EDB-derived bounds
    /// on first compile, refined from observed actuals on re-plans.
    pub est_rows: Option<u64>,
}

/// A compiled non-recursive Datalog¬ program: strata in topological
/// order plus the query predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramPlan {
    /// Strata in evaluation order.
    pub strata: Vec<Stratum>,
    /// The query predicate.
    pub query: String,
    /// Output schema (positional attributes `x1`, `x2`, …).
    pub out: TableSchema,
}

/// A compiled RA\* operator (bulk execution over tuple sets). Attribute
/// names are resolved to column indices at lowering time; `Rename` is
/// compiled away entirely.
#[derive(Debug, Clone, PartialEq)]
pub enum OpNode {
    /// A base-table scan.
    Table(String),
    /// Projection onto the given columns (dedups under set semantics).
    Project {
        /// Kept columns, in output order.
        cols: Vec<usize>,
        /// Input operator.
        input: Box<OpNode>,
    },
    /// Selection by a compiled condition.
    Select {
        /// The compiled condition.
        cond: Cond,
        /// Input operator.
        input: Box<OpNode>,
    },
    /// Cartesian product.
    Product(Box<OpNode>, Box<OpNode>),
    /// Theta join: equality checks key a hash probe, the residual is
    /// verified per matching pair.
    Join {
        /// `(left column, op, right column)` checks.
        checks: Vec<(usize, CmpOp, usize)>,
        /// Left operand.
        left: Box<OpNode>,
        /// Right operand.
        right: Box<OpNode>,
    },
    /// Natural join on shared attribute names (resolved at lowering).
    NaturalJoin {
        /// Equality checks over the shared columns.
        checks: Vec<(usize, CmpOp, usize)>,
        /// Right columns not shared with the left (kept in output).
        keep_right: Vec<usize>,
        /// Left operand.
        left: Box<OpNode>,
        /// Right operand.
        right: Box<OpNode>,
    },
    /// Set difference.
    Diff(Box<OpNode>, Box<OpNode>),
    /// Set union.
    Union(Box<OpNode>, Box<OpNode>),
    /// Antijoin: left tuples with no qualifying right partner.
    Antijoin {
        /// `(left column, op, right column)` checks.
        checks: Vec<(usize, CmpOp, usize)>,
        /// Left operand.
        left: Box<OpNode>,
        /// Right operand.
        right: Box<OpNode>,
    },
}

/// A selection condition compiled against a fixed column layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// A comparison.
    Cmp(CTerm, CmpOp, CTerm),
    /// Conjunction.
    And(Vec<Cond>),
    /// Disjunction.
    Or(Vec<Cond>),
}

/// A term of a compiled selection condition.
#[derive(Debug, Clone, PartialEq)]
pub enum CTerm {
    /// An interned constant.
    Const(Value),
    /// A column of the input tuple.
    Col(usize),
}

/// A compiled, executable query plan — the unit the engine's plan cache
/// stores. Contains only owned data (strings, interned values, column
/// indices), so it is `Send + Sync` and valid for the lifetime of the
/// database epoch it was compiled against.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// A union of non-Boolean query branches (TRC\*/SQL\*; one branch
    /// for a plain query).
    Union(Vec<QueryPlan>),
    /// A Boolean sentence (evaluates to the 0-ary relation encoding).
    Sentence(SentencePlan),
    /// A Datalog¬ program.
    Program(ProgramPlan),
    /// An RA\* operator tree.
    Ops {
        /// The root operator.
        root: OpNode,
        /// Output schema.
        out: TableSchema,
    },
}

fn _assert_plan_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Plan>();
}

// ---------------------------------------------------------------------
// Scan-set extraction
// ---------------------------------------------------------------------

/// The *scan set* of a compiled plan: every stored relation the executor
/// can read while running it. This is the dependency footprint that
/// delta-aware caches stamp onto their entries — a mutation to a
/// relation outside a plan's scan set provably cannot change its result.
///
/// All stored reads go through [`Scan::rel`], [`Formula::NegProbe`], and
/// [`OpNode::Table`]; for Datalog programs, IDB predicates are computed
/// per execution (and shadow same-named tables in [`tuples_of`]), so
/// stratum names are excluded.
pub fn scan_set(plan: &Plan) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    match plan {
        Plan::Union(branches) => {
            for q in branches {
                scans_in_block(&q.root, &mut set);
                for f in &q.deferred {
                    scans_in_formula(f, &mut set);
                }
            }
        }
        Plan::Sentence(s) => scans_in_formula(&s.formula, &mut set),
        Plan::Program(p) => {
            for stratum in &p.strata {
                for rule in &stratum.rules {
                    scans_in_block(&rule.block, &mut set);
                }
            }
            for stratum in &p.strata {
                set.remove(&stratum.pred);
            }
        }
        Plan::Ops { root, .. } => scans_in_ops(root, &mut set),
    }
    set
}

fn scans_in_block(block: &Block, set: &mut BTreeSet<String>) {
    for f in &block.pre {
        scans_in_formula(f, set);
    }
    for scan in &block.scans {
        set.insert(scan.rel.clone());
        for f in &scan.filters {
            scans_in_formula(f, set);
        }
    }
}

fn scans_in_formula(f: &Formula, set: &mut BTreeSet<String>) {
    match f {
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                scans_in_formula(sub, set);
            }
        }
        Formula::Not(sub) => scans_in_formula(sub, set),
        Formula::Exists(block) => scans_in_block(block, set),
        Formula::Pred(_) => {}
        Formula::NegProbe { rel, .. } => {
            set.insert(rel.clone());
        }
    }
}

fn scans_in_ops(op: &OpNode, set: &mut BTreeSet<String>) {
    match op {
        OpNode::Table(name) => {
            set.insert(name.clone());
        }
        OpNode::Project { input, .. } | OpNode::Select { input, .. } => scans_in_ops(input, set),
        OpNode::Product(l, r) | OpNode::Diff(l, r) | OpNode::Union(l, r) => {
            scans_in_ops(l, set);
            scans_in_ops(r, set);
        }
        OpNode::Join { left, right, .. }
        | OpNode::NaturalJoin { left, right, .. }
        | OpNode::Antijoin { left, right, .. } => {
            scans_in_ops(left, set);
            scans_in_ops(right, set);
        }
    }
}

// ---------------------------------------------------------------------
// Execution: environment and context
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Execution options and the batch/tuple decision
// ---------------------------------------------------------------------

/// Knobs for [`execute_with`] and friends. The default enables the
/// vectorized batch path wherever the plan shape supports it; `batch:
/// false` forces the original tuple-at-a-time executor everywhere (the
/// differential-testing and benchmarking baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Use the batched (columnar, chunk-at-a-time) path for plan shapes
    /// that support it.
    pub batch: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { batch: true }
    }
}

/// `true` if `t` can appear on the batched path. `Unbound`/`Wildcard`
/// carry lazy, data-dependent error semantics (they fail only when a
/// full assignment forces them), which the row-at-a-time executor pins
/// exactly — plans containing them fall back wholesale.
fn term_batchable(t: &Term) -> bool {
    !matches!(t, Term::Unbound(_) | Term::Wildcard)
}

fn formula_batchable(f: &Formula) -> bool {
    match f {
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(formula_batchable),
        Formula::Not(sub) => formula_batchable(sub),
        Formula::Exists(block) => block_batchable(block),
        Formula::Pred(p) => term_batchable(&p.left) && term_batchable(&p.right),
        Formula::NegProbe { terms, .. } => terms.iter().all(term_batchable),
    }
}

fn block_batchable(block: &Block) -> bool {
    block.pre.iter().all(formula_batchable)
        && block.scans.iter().all(|s| {
            s.key_terms.iter().all(term_batchable) && s.filters.iter().all(formula_batchable)
        })
}

/// `true` if this query branch runs on the batched path: no lazy-error
/// terms anywhere. Deferred head-validation conjuncts batch too — the
/// chunked driver binds the head slot to a synthetic step of candidate
/// tuples and filters the whole batch at once.
pub(crate) fn query_batchable(q: &QueryPlan) -> bool {
    q.deferred.iter().all(formula_batchable)
        && q.defs.iter().all(term_batchable)
        && block_batchable(&q.root)
}

/// `true` if this Datalog rule runs on the batched path.
pub(crate) fn rule_batchable(r: &RulePlan) -> bool {
    r.head.iter().all(term_batchable) && block_batchable(&r.block)
}

/// `true` if [`execute`] runs `plan` entirely on the batched path —
/// every union branch / every rule batchable, or a bulk operator tree
/// (always batchable). Boolean sentences are quantifier-heavy by
/// construction and stay tuple-at-a-time. This is the decision
/// `explain` renders per operator and the engine counts per execution.
pub fn plan_batched(plan: &Plan) -> bool {
    match plan {
        Plan::Union(branches) => branches.iter().all(query_batchable),
        Plan::Sentence(_) => false,
        Plan::Program(p) => p.strata.iter().all(|s| s.rules.iter().all(rule_batchable)),
        Plan::Ops { .. } => true,
    }
}

/// The flat runtime environment: tuple slots (borrowed bindings) and
/// value slots (owned bindings).
#[derive(Debug, Clone)]
struct Env<'b> {
    tuples: Vec<Option<&'b Tuple>>,
    values: Vec<Option<Value>>,
}

impl<'b> Env<'b> {
    fn new(shape: &EnvShape) -> Self {
        Env {
            tuples: vec![None; shape.tuple_slots],
            values: vec![None; shape.value_slots],
        }
    }
}

/// Computed IDB relations (empty for languages without them).
pub(crate) type IdbMap = BTreeMap<String, BTreeSet<Tuple>>;

/// What an analyzing execution observed at one plan node: the rows it
/// produced and — for keyed probes and join builds on the batched path —
/// which build strategy the executor actually chose.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeTally {
    /// Rows the node produced.
    pub(crate) rows: u64,
    /// Join/probe build strategy (`"dense-key"` or `"hash"`), recorded
    /// only by the batched executor.
    pub(crate) build: Option<&'static str>,
}

/// Per-node observations collected by an analyzing execution.
///
/// Keys are node *addresses* (`&Scan`, `&OpNode`, `&QueryPlan`,
/// `&RulePlan`, `&Stratum`, `&Formula` cast to `usize`): every keyed
/// node is alive inside the same [`Plan`] for the whole execution *and*
/// the subsequent annotation pass, so addresses are unique — which lets
/// the executor count rows without adding id fields to the IR (and
/// therefore without touching any of the four language lowerings).
pub(crate) type TallyMap = HashMap<usize, NodeTally>;

/// Records `rows` for `node` if an analyze tally is active.
pub(crate) fn record<T>(tally: &mut Option<TallyMap>, node: &T, rows: usize) {
    if let Some(t) = tally.as_mut() {
        t.entry(node as *const T as usize).or_default().rows = rows as u64;
    }
}

/// Adds `rows` to `node`'s count if an analyze tally is active (the
/// batched executor's chunk-at-a-time analogue of [`ExecCtx::bump`]).
pub(crate) fn bump_n<T>(tally: &mut Option<TallyMap>, node: &T, rows: usize) {
    if let Some(t) = tally.as_mut() {
        t.entry(node as *const T as usize).or_default().rows += rows as u64;
    }
}

/// Records the join/probe build strategy chosen for `node` if an
/// analyze tally is active.
pub(crate) fn record_build<T>(tally: &mut Option<TallyMap>, node: &T, kind: &'static str) {
    if let Some(t) = tally.as_mut() {
        t.entry(node as *const T as usize).or_default().build = Some(kind);
    }
}

/// Per-execution state: the database snapshot, the computed IDBs, and
/// the lazily-built hash indexes (one cache slot per keyed scan, built
/// on first probe, reused across the execution).
struct ExecCtx<'d> {
    db: &'d Database,
    symbols: &'d SymbolTable,
    idbs: &'d IdbMap,
    indexes: IndexCache<'d>,
    key_buf: KeyBuf,
    /// Per-node row counters, present only during an analyzing
    /// execution — the normal path pays one `is_some` branch per
    /// emitted scan row and nothing else.
    tally: Option<TallyMap>,
}

impl<'d> ExecCtx<'d> {
    fn new(db: &'d Database, idbs: &'d IdbMap, n_indexes: usize) -> Self {
        ExecCtx {
            db,
            symbols: db.symbols(),
            idbs,
            indexes: IndexCache::new(n_indexes),
            key_buf: KeyBuf::default(),
            tally: None,
        }
    }

    /// Counts one row produced by `node` when analyzing.
    #[inline]
    fn bump<T>(&mut self, node: &T) {
        if let Some(t) = self.tally.as_mut() {
            t.entry(node as *const T as usize).or_default().rows += 1;
        }
    }

    /// The hash index for `(rel, cols)` in slot `id`, built on first
    /// use from the IDB map or the database.
    fn index_for(
        &mut self,
        rel: &str,
        cols: &[usize],
        id: usize,
    ) -> CoreResult<Rc<plan::Index<'d>>> {
        let (db, idbs) = (self.db, self.idbs);
        self.indexes
            .get_or_build(id, cols, || tuples_of(db, idbs, rel))
    }
}

/// The tuples of `rel`: a computed IDB if one exists, else the EDB
/// table (unknown tables error).
pub(crate) fn tuples_of<'d>(
    db: &'d Database,
    idbs: &'d IdbMap,
    rel: &str,
) -> CoreResult<Vec<&'d Tuple>> {
    if let Some(rows) = idbs.get(rel) {
        return Ok(rows.iter().collect());
    }
    Ok(db.require(rel)?.iter().collect())
}

/// Resolves a term against the environment. `Unbound`/`Wildcard` terms
/// fail here — lazily, exactly when a full assignment forces them.
fn term_value<'v>(t: &'v Term, env: &'v Env<'_>) -> CoreResult<&'v Value> {
    match t {
        Term::Const(v) => Ok(v),
        Term::Col { slot, col } => Ok(env.tuples[*slot]
            .expect("lowering attaches terms only after their slot is bound")
            .get(*col)),
        Term::Var(s) => Ok(env.values[*s]
            .as_ref()
            .expect("lowering only emits Var for bound slots")),
        Term::Unbound(v) => Err(CoreError::Invalid(format!("unbound variable '{v}'"))),
        Term::Wildcard => Err(CoreError::Invalid(
            "wildcard cannot be resolved to a value".into(),
        )),
    }
}

/// Resolves a probe-key term (lowerings never emit lazy-error terms in
/// key position).
fn key_value(t: &Term, env: &Env<'_>) -> Value {
    match t {
        Term::Const(v) => v.clone(),
        Term::Col { slot, col } => env.tuples[*slot]
            .expect("key slots bound earlier")
            .get(*col)
            .clone(),
        Term::Var(s) => env.values[*s].clone().expect("key slots bound earlier"),
        Term::Unbound(_) | Term::Wildcard => {
            unreachable!("lowerings never emit lazy terms as probe keys")
        }
    }
}

// ---------------------------------------------------------------------
// Execution: formulas and pipelines
// ---------------------------------------------------------------------

fn eval_formula<'b, 'd: 'b>(
    f: &Formula,
    env: &mut Env<'b>,
    ctx: &mut ExecCtx<'d>,
) -> CoreResult<bool> {
    match f {
        Formula::And(fs) => {
            for sub in fs {
                if !eval_formula(sub, env, ctx)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for sub in fs {
                if eval_formula(sub, env, ctx)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Not(sub) => Ok(!eval_formula(sub, env, ctx)?),
        Formula::Exists(block) => {
            for pre in &block.pre {
                if !eval_formula(pre, env, ctx)? {
                    return Ok(false);
                }
            }
            run_block(block, 0, env, ctx, &mut |_, _| Ok(true))
        }
        Formula::Pred(p) => {
            let l = term_value(&p.left, env)?;
            let r = term_value(&p.right, env)?;
            Ok(p.op.eval_resolved(l, r, ctx.symbols))
        }
        Formula::NegProbe {
            rel,
            cols,
            terms,
            index_id,
        } => {
            if cols.is_empty() {
                // `not P(_ …)`: succeeds iff P is empty — O(1).
                let empty = match ctx.idbs.get(rel) {
                    Some(rows) => rows.is_empty(),
                    None => ctx.db.require(rel)?.is_empty(),
                };
                Ok(empty)
            } else {
                let index = ctx.index_for(rel, cols, *index_id)?;
                let hit =
                    index.contains_key(ctx.key_buf.fill(terms.iter().map(|t| key_value(t, env))));
                Ok(!hit)
            }
        }
    }
}

/// The emit callback invoked on every full pipeline assignment.
/// Returning `Ok(true)` stops the enumeration (existential
/// short-circuit); the stop propagates outward.
type Emit<'e, 'b, 'd> = &'e mut dyn FnMut(&mut Env<'b>, &mut ExecCtx<'d>) -> CoreResult<bool>;

/// Runs the scans of `block` from step `i`, invoking `emit` on every
/// full assignment.
fn run_block<'b, 'd: 'b>(
    block: &Block,
    i: usize,
    env: &mut Env<'b>,
    ctx: &mut ExecCtx<'d>,
    emit: Emit<'_, 'b, 'd>,
) -> CoreResult<bool> {
    if i == block.scans.len() {
        return emit(env, ctx);
    }
    let scan = &block.scans[i];
    let stopped = if scan.key_cols.is_empty() {
        let mut stopped = false;
        let (db, idbs) = (ctx.db, ctx.idbs);
        if let Some(rows) = idbs.get(&scan.rel) {
            for t in rows {
                if scan_tuple(block, i, t, env, ctx, emit)? {
                    stopped = true;
                    break;
                }
            }
        } else {
            for t in db.require(&scan.rel)?.iter() {
                if scan_tuple(block, i, t, env, ctx, emit)? {
                    stopped = true;
                    break;
                }
            }
        }
        stopped
    } else {
        // Hash probe: resolve the key from bound slots/constants into
        // the reusable buffer and look up the matching bucket.
        let index = ctx.index_for(&scan.rel, &scan.key_cols, scan.index_id)?;
        let bucket = index.get(
            ctx.key_buf
                .fill(scan.key_terms.iter().map(|t| key_value(t, env))),
        );
        let mut stopped = false;
        if let Some(bucket) = bucket {
            for &t in bucket {
                if scan_tuple(block, i, t, env, ctx, emit)? {
                    stopped = true;
                    break;
                }
            }
        }
        stopped
    };
    if let Some(slot) = scan.tuple_slot {
        env.tuples[slot] = None;
    }
    for &(_, s) in &scan.bind_cols {
        env.values[s] = None;
    }
    Ok(stopped)
}

/// Binds one scanned tuple, verifies intra-tuple checks and filters,
/// then recurses into step `i + 1`.
fn scan_tuple<'b, 'd: 'b>(
    block: &Block,
    i: usize,
    t: &'b Tuple,
    env: &mut Env<'b>,
    ctx: &mut ExecCtx<'d>,
    emit: Emit<'_, 'b, 'd>,
) -> CoreResult<bool> {
    let scan = &block.scans[i];
    if let Some(slot) = scan.tuple_slot {
        env.tuples[slot] = Some(t);
    }
    for &(col, s) in &scan.bind_cols {
        env.values[s] = Some(t.get(col).clone());
    }
    for &(col, s) in &scan.check_cols {
        if env.values[s].as_ref() != Some(t.get(col)) {
            return Ok(false);
        }
    }
    for f in &scan.filters {
        if !eval_formula(f, env, ctx)? {
            return Ok(false);
        }
    }
    ctx.bump(scan);
    run_block(block, i + 1, env, ctx, emit)
}

// ---------------------------------------------------------------------
// Execution: top-level plans
// ---------------------------------------------------------------------

/// Executes a compiled query branch, returning its output relation
/// (batched where the shape allows, per [`ExecOptions::default`]).
pub fn run_query(q: &QueryPlan, db: &Database) -> CoreResult<Relation> {
    run_query_with(q, db, ExecOptions::default())
}

/// [`run_query`] with explicit execution options.
pub fn run_query_with(q: &QueryPlan, db: &Database, opts: ExecOptions) -> CoreResult<Relation> {
    run_query_inner(q, db, &mut None, opts)
}

/// [`run_query`] with an optional analyze tally threaded through the
/// execution context (and handed back when done).
fn run_query_inner(
    q: &QueryPlan,
    db: &Database,
    tally: &mut Option<TallyMap>,
    opts: ExecOptions,
) -> CoreResult<Relation> {
    if opts.batch && query_batchable(q) {
        return crate::batch::run_query(q, db, tally);
    }
    let idbs = IdbMap::new();
    let mut out = db.fresh_relation(q.out.clone());
    let mut ctx = ExecCtx::new(db, &idbs, q.shape.indexes);
    ctx.tally = tally.take();
    let mut env = Env::new(&q.shape);
    let mut pre_ok = true;
    for pre in &q.root.pre {
        if !eval_formula(pre, &mut env, &mut ctx)? {
            pre_ok = false;
            break;
        }
    }
    if pre_ok {
        run_block(&q.root, 0, &mut env, &mut ctx, &mut |env, ctx| {
            let mut row = Vec::with_capacity(q.defs.len());
            for t in &q.defs {
                row.push(term_value(t, env)?.clone());
            }
            let tuple = Tuple(row);
            // Validate the deferred conjuncts with the head bound. The
            // narrower lifetime of `tuple` forces a (cheap, word-copy)
            // clone of the environment.
            let mut venv: Env = env.clone();
            venv.tuples[q.head_slot] = Some(&tuple);
            let mut ok = true;
            for f in &q.deferred {
                if !eval_formula(f, &mut venv, ctx)? {
                    ok = false;
                    break;
                }
            }
            if ok {
                out.insert(tuple)?;
            }
            Ok(false)
        })?;
    }
    *tally = ctx.tally.take();
    record(tally, q, out.len());
    Ok(out)
}

/// Executes a compiled Boolean sentence.
pub fn run_sentence(s: &SentencePlan, db: &Database) -> CoreResult<bool> {
    run_sentence_inner(s, db, &mut None)
}

fn run_sentence_inner(
    s: &SentencePlan,
    db: &Database,
    tally: &mut Option<TallyMap>,
) -> CoreResult<bool> {
    let idbs = IdbMap::new();
    let mut ctx = ExecCtx::new(db, &idbs, s.shape.indexes);
    ctx.tally = tally.take();
    let mut env = Env::new(&s.shape);
    let value = eval_formula(&s.formula, &mut env, &mut ctx)?;
    *tally = ctx.tally.take();
    Ok(value)
}

/// Executes one compiled rule against the database plus the IDBs
/// computed so far.
fn run_rule(
    rule: &RulePlan,
    db: &Database,
    idbs: &IdbMap,
    tally: &mut Option<TallyMap>,
) -> CoreResult<Vec<Tuple>> {
    let mut ctx = ExecCtx::new(db, idbs, rule.shape.indexes);
    ctx.tally = tally.take();
    let mut env = Env::new(&rule.shape);
    let mut pre_ok = true;
    for pre in &rule.block.pre {
        if !eval_formula(pre, &mut env, &mut ctx)? {
            pre_ok = false;
            break;
        }
    }
    let mut out = Vec::new();
    if pre_ok {
        run_block(&rule.block, 0, &mut env, &mut ctx, &mut |env, _ctx| {
            let mut row = Vec::with_capacity(rule.head.len());
            for t in &rule.head {
                row.push(term_value(t, env)?.clone());
            }
            out.push(Tuple(row));
            Ok(false)
        })?;
    }
    *tally = ctx.tally.take();
    record(tally, rule, out.len());
    Ok(out)
}

/// Executes a compiled Datalog program: strata in order, rules of one
/// IDB unioned under set semantics (batched rules where the shape
/// allows, per [`ExecOptions::default`]).
pub fn run_program(p: &ProgramPlan, db: &Database) -> CoreResult<Relation> {
    run_program_with(p, db, ExecOptions::default())
}

/// [`run_program`] with explicit execution options.
pub fn run_program_with(p: &ProgramPlan, db: &Database, opts: ExecOptions) -> CoreResult<Relation> {
    run_program_inner(p, db, &mut None, opts)
}

fn run_program_inner(
    p: &ProgramPlan,
    db: &Database,
    tally: &mut Option<TallyMap>,
    opts: ExecOptions,
) -> CoreResult<Relation> {
    run_program_collect(p, db, tally, opts, None)
}

/// [`run_program_inner`] that additionally reports each computed IDB's
/// actual size into `sizes` — the raw material of planner feedback
/// (re-plans replace the EDB-derived stratum bounds with these).
fn run_program_collect(
    p: &ProgramPlan,
    db: &Database,
    tally: &mut Option<TallyMap>,
    opts: ExecOptions,
    mut sizes: Option<&mut Vec<(String, u64)>>,
) -> CoreResult<Relation> {
    let mut computed = IdbMap::new();
    // Columnar EDB/IDB materializations shared across the program's
    // batched rules (sound because a computed IDB never changes once
    // its stratum completes, and no rule reads its own stratum).
    let mut cache = crate::batch::RelCache::default();
    for stratum in &p.strata {
        let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
        for rule in &stratum.rules {
            if opts.batch && rule_batchable(rule) {
                tuples.extend(crate::batch::run_rule(
                    rule, db, &computed, tally, &mut cache,
                )?);
            } else {
                tuples.extend(run_rule(rule, db, &computed, tally)?);
            }
        }
        record(tally, stratum, tuples.len());
        if let Some(sizes) = sizes.as_deref_mut() {
            sizes.push((stratum.pred.clone(), tuples.len() as u64));
        }
        computed.insert(stratum.pred.clone(), tuples);
    }
    let rows = computed
        .remove(&p.query)
        .ok_or_else(|| CoreError::Invalid(format!("query predicate '{}' not computed", p.query)))?;
    let mut rel = db.fresh_relation(p.out.clone());
    for row in rows {
        rel.insert(row)?;
    }
    Ok(rel)
}

/// Splits theta-join checks into hashable equalities and a residual,
/// then probes the right side per left tuple. `joiner` receives each
/// matching pair.
pub fn hash_join_pairs<'t>(
    left: &'t BTreeSet<Tuple>,
    right: &'t BTreeSet<Tuple>,
    checks: &[(usize, CmpOp, usize)],
    symbols: &SymbolTable,
    mut joiner: impl FnMut(&'t Tuple, &'t Tuple),
) {
    let eq: Vec<&(usize, CmpOp, usize)> = checks
        .iter()
        .filter(|(_, op, _)| *op == CmpOp::Eq)
        .collect();
    let residual: Vec<&(usize, CmpOp, usize)> = checks
        .iter()
        .filter(|(_, op, _)| *op != CmpOp::Eq)
        .collect();
    if eq.is_empty() {
        // No equality to key on: nested loop.
        for lt in left {
            for rt in right {
                if checks
                    .iter()
                    .all(|(li, op, ri)| op.eval_resolved(lt.get(*li), rt.get(*ri), symbols))
                {
                    joiner(lt, rt);
                }
            }
        }
        return;
    }
    let right_cols: Vec<usize> = eq.iter().map(|(_, _, ri)| *ri).collect();
    let left_cols: Vec<usize> = eq.iter().map(|(li, _, _)| *li).collect();
    let index = plan::build_index(right.iter(), &right_cols);
    let mut key: Vec<Value> = Vec::with_capacity(left_cols.len());
    for lt in left {
        key.clear();
        key.extend(left_cols.iter().map(|&c| lt.get(c).clone()));
        if let Some(bucket) = index.get(key.as_slice()) {
            for &rt in bucket {
                if residual
                    .iter()
                    .all(|(li, op, ri)| op.eval_resolved(lt.get(*li), rt.get(*ri), symbols))
                {
                    joiner(lt, rt);
                }
            }
        }
    }
}

pub(crate) fn eval_cond(cond: &Cond, tuple: &Tuple, symbols: &SymbolTable) -> bool {
    match cond {
        Cond::Cmp(l, op, r) => {
            let lv = match l {
                CTerm::Const(v) => v,
                CTerm::Col(i) => tuple.get(*i),
            };
            let rv = match r {
                CTerm::Const(v) => v,
                CTerm::Col(i) => tuple.get(*i),
            };
            op.eval_resolved(lv, rv, symbols)
        }
        Cond::And(cs) => cs.iter().all(|c| eval_cond(c, tuple, symbols)),
        Cond::Or(cs) => cs.iter().any(|c| eval_cond(c, tuple, symbols)),
    }
}

/// Executes a compiled RA operator tree to its tuple set (batched per
/// [`ExecOptions::default`]).
pub fn run_ops(op: &OpNode, db: &Database) -> CoreResult<BTreeSet<Tuple>> {
    run_ops_with(op, db, ExecOptions::default())
}

/// [`run_ops`] with explicit execution options.
pub fn run_ops_with(op: &OpNode, db: &Database, opts: ExecOptions) -> CoreResult<BTreeSet<Tuple>> {
    if opts.batch {
        crate::batch::run_ops(op, db, &mut None)
    } else {
        run_ops_inner(op, db, &mut None)
    }
}

/// [`run_ops`] with an optional analyze tally: every node records its
/// result cardinality on the way back up.
fn run_ops_inner(
    op: &OpNode,
    db: &Database,
    tally: &mut Option<TallyMap>,
) -> CoreResult<BTreeSet<Tuple>> {
    let symbols = db.symbols();
    let tuples = match op {
        OpNode::Table(name) => db.require(name)?.tuples().clone(),
        OpNode::Project { cols, input } => {
            let inner = run_ops_inner(input, db, tally)?;
            inner.iter().map(|t| t.project(cols)).collect()
        }
        OpNode::Select { cond, input } => {
            let inner = run_ops_inner(input, db, tally)?;
            inner
                .into_iter()
                .filter(|t| eval_cond(cond, t, symbols))
                .collect()
        }
        OpNode::Product(l, r) => {
            let lv = run_ops_inner(l, db, tally)?;
            let rv = run_ops_inner(r, db, tally)?;
            let mut tuples = BTreeSet::new();
            for lt in &lv {
                for rt in &rv {
                    tuples.insert(lt.concat(rt));
                }
            }
            tuples
        }
        OpNode::Join {
            checks,
            left,
            right,
        } => {
            let lv = run_ops_inner(left, db, tally)?;
            let rv = run_ops_inner(right, db, tally)?;
            let mut tuples = BTreeSet::new();
            hash_join_pairs(&lv, &rv, checks, symbols, |lt, rt| {
                tuples.insert(lt.concat(rt));
            });
            tuples
        }
        OpNode::NaturalJoin {
            checks,
            keep_right,
            left,
            right,
        } => {
            let lv = run_ops_inner(left, db, tally)?;
            let rv = run_ops_inner(right, db, tally)?;
            let mut tuples = BTreeSet::new();
            hash_join_pairs(&lv, &rv, checks, symbols, |lt, rt| {
                let mut row = lt.0.clone();
                row.extend(keep_right.iter().map(|&ri| rt.get(ri).clone()));
                tuples.insert(Tuple(row));
            });
            tuples
        }
        OpNode::Diff(l, r) => {
            let lv = run_ops_inner(l, db, tally)?;
            let rv = run_ops_inner(r, db, tally)?;
            lv.difference(&rv).cloned().collect()
        }
        OpNode::Union(l, r) => {
            let lv = run_ops_inner(l, db, tally)?;
            let rv = run_ops_inner(r, db, tally)?;
            lv.union(&rv).cloned().collect()
        }
        OpNode::Antijoin {
            checks,
            left,
            right,
        } => {
            let lv = run_ops_inner(left, db, tally)?;
            let rv = run_ops_inner(right, db, tally)?;
            // The antijoin is the join's complement: collect the left
            // tuples with at least one qualifying pair, keep the rest.
            let mut matched: HashSet<&Tuple> = HashSet::new();
            hash_join_pairs(&lv, &rv, checks, symbols, |lt, _| {
                matched.insert(lt);
            });
            lv.iter()
                .filter(|lt| !matched.contains(*lt))
                .cloned()
                .collect()
        }
    };
    record(tally, op, tuples.len());
    Ok(tuples)
}

/// The 0-ary encoding of a Boolean result: `{()}` for true, `{}` for
/// false (the classic degenerate-relation convention).
pub fn boolean_relation(value: bool) -> Relation {
    let mut rel = Relation::empty(TableSchema::new("q", Vec::<String>::new()));
    if value {
        rel.insert(Tuple(Vec::new()))
            .expect("0-ary tuple fits 0-ary schema");
    }
    rel
}

/// Executes any compiled plan over `db`, normalizing the output to a
/// [`Relation`] (Boolean sentences become the 0-ary encoding). Uses the
/// batched path where the plan shape supports it; see [`execute_with`]
/// to force tuple-at-a-time execution.
pub fn execute(plan: &Plan, db: &Database) -> CoreResult<Relation> {
    execute_with(plan, db, ExecOptions::default())
}

/// [`execute`] with explicit execution options.
pub fn execute_with(plan: &Plan, db: &Database, opts: ExecOptions) -> CoreResult<Relation> {
    execute_inner(plan, db, &mut None, opts)
}

/// What one execution observed, for the planner's feedback loop.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecFeedback {
    /// Rows in the final result.
    pub out_rows: u64,
    /// Actual size of each computed Datalog IDB, in stratum order
    /// (empty for non-program plans). Re-plans feed these back as
    /// [`plan::PlanHints`], replacing the EDB-derived bounds.
    pub idb_rows: Vec<(String, u64)>,
}

/// The planner's recorded estimate for the plan's final output, if the
/// plan was compiled under the cost-based strategy: per-branch sums for
/// unions, the query stratum's bound for programs.
pub fn plan_est(plan: &Plan) -> Option<u64> {
    match plan {
        Plan::Union(branches) => branches
            .iter()
            .map(|q| q.est_rows)
            .try_fold(0u64, |acc, e| e.map(|e| acc.saturating_add(e))),
        Plan::Program(p) => p
            .strata
            .iter()
            .find(|s| s.pred == p.query)
            .and_then(|s| s.est_rows),
        Plan::Sentence(_) | Plan::Ops { .. } => None,
    }
}

/// [`execute_with`], additionally harvesting the actual row counts the
/// planner's feedback loop consumes. Costs nothing beyond normal
/// execution: program IDB sizes are observed as each stratum completes,
/// and the output count reads the result relation's length.
pub fn execute_feedback(
    plan: &Plan,
    db: &Database,
    opts: ExecOptions,
) -> CoreResult<(Relation, ExecFeedback)> {
    let mut idb_rows = Vec::new();
    let relation = match plan {
        Plan::Program(p) => run_program_collect(p, db, &mut None, opts, Some(&mut idb_rows))?,
        other => execute_inner(other, db, &mut None, opts)?,
    };
    let feedback = ExecFeedback {
        out_rows: relation.len() as u64,
        idb_rows,
    };
    Ok((relation, feedback))
}

fn execute_inner(
    plan: &Plan,
    db: &Database,
    tally: &mut Option<TallyMap>,
    opts: ExecOptions,
) -> CoreResult<Relation> {
    match plan {
        Plan::Union(branches) => {
            let mut iter = branches.iter();
            let first = iter
                .next()
                .ok_or_else(|| CoreError::Invalid("empty union".into()))?;
            let mut result = run_query_inner(first, db, tally, opts)?;
            for branch in iter {
                let r = run_query_inner(branch, db, tally, opts)?;
                for t in r.iter() {
                    result.insert(t.clone())?;
                }
            }
            Ok(result)
        }
        Plan::Sentence(s) => Ok(boolean_relation(run_sentence_inner(s, db, tally)?)),
        Plan::Program(p) => run_program_inner(p, db, tally, opts),
        Plan::Ops { root, out } => {
            let tuples = if opts.batch {
                crate::batch::run_ops(root, db, tally)?
            } else {
                run_ops_inner(root, db, tally)?
            };
            let mut rel = db.fresh_relation(out.clone());
            for t in tuples {
                rel.insert(t)?;
            }
            Ok(rel)
        }
    }
}

/// Executes `plan` while counting per-operator actual rows, then renders
/// the explain tree annotated with planner estimates and the observed
/// counts — the engine of the `explain analyze` wire form. Returns the
/// result relation too, so callers can cross-check the root count.
pub fn explain_analyze(plan: &Plan, db: &Database) -> CoreResult<(Relation, ExplainNode)> {
    explain_analyze_with(plan, db, ExecOptions::default())
}

/// [`explain_analyze`] with explicit execution options.
pub fn explain_analyze_with(
    plan: &Plan,
    db: &Database,
    opts: ExecOptions,
) -> CoreResult<(Relation, ExplainNode)> {
    let mut tally = Some(TallyMap::new());
    let relation = execute_inner(plan, db, &mut tally, opts)?;
    let tally = tally.unwrap_or_default();
    let annot = Annot {
        db: Some(db),
        tally: Some(&tally),
    };
    let mut node = explain_with_opts(plan, &annot, opts);
    node.actual_rows = Some(relation.len() as u64);
    if let Some(est) = node.est_rows {
        node.q_error = Some(q_error(est, relation.len() as u64));
    }
    Ok((relation, node))
}

// ---------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------

/// One node of an explain tree: plan structure rendered for diagnosis
/// (scan order, join strategy, bound keys), optionally annotated with
/// row counts by `explain analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainNode {
    /// Node kind (`scan`, `exists`, `join`, `union`, …).
    pub kind: String,
    /// Human-readable detail (table, key columns, strategy).
    pub detail: String,
    /// Planner cardinality estimate (sketch-backed statistics where the
    /// node maps to stored relations; present only under
    /// `explain analyze`, and absent for nodes with no meaningful
    /// estimate).
    pub est_rows: Option<u64>,
    /// Rows this node actually produced (present only under
    /// `explain analyze`).
    pub actual_rows: Option<u64>,
    /// Estimation quality: `max(est/actual, actual/est)` with +1
    /// smoothing so empty results stay finite. `1.0` is a perfect
    /// estimate; present only when both row fields are.
    pub q_error: Option<f64>,
    /// Execution mode this subtree runs under: `"batched"` for the
    /// chunked columnar path, `"tuple"` for the row-at-a-time fallback.
    /// Set on executable roots (query branches, rules, sentences, ops
    /// roots); `None` on purely structural nodes and in legacy frames.
    pub mode: Option<String>,
    /// Join-build strategy actually used (`"dense-key"` or `"hash"`),
    /// recorded during `explain analyze` on keyed scans, joins, and
    /// negation probes. `None` outside analyze and in legacy frames.
    pub build: Option<String>,
    /// Child nodes in execution order.
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    fn new(kind: &str, detail: impl Into<String>) -> ExplainNode {
        ExplainNode {
            kind: kind.to_string(),
            detail: detail.into(),
            est_rows: None,
            actual_rows: None,
            q_error: None,
            mode: None,
            build: None,
            children: Vec::new(),
        }
    }

    fn with(mut self, children: Vec<ExplainNode>) -> ExplainNode {
        self.children = children;
        self
    }

    fn rows(mut self, est: Option<u64>, actual: Option<u64>) -> ExplainNode {
        self.est_rows = est;
        self.actual_rows = actual;
        self.q_error = match (est, actual) {
            (Some(e), Some(a)) => Some(q_error(e, a)),
            _ => None,
        };
        self
    }

    fn mode(mut self, batched: bool) -> ExplainNode {
        self.mode = Some(if batched { "batched" } else { "tuple" }.to_string());
        self
    }
}

/// The q-error of a cardinality estimate: `max(est/actual, actual/est)`
/// with +1 smoothing on both sides so zero rows stay finite. `1.0` means
/// a perfect estimate; the engine re-plans queries whose root q-error
/// crosses its threshold.
pub fn q_error(est: u64, actual: u64) -> f64 {
    let (e, a) = (est as f64 + 1.0, actual as f64 + 1.0);
    (e / a).max(a / e)
}

/// Annotation context for explain rendering: empty for plain `explain`
/// (every row field stays `None`, keeping legacy output byte-identical),
/// populated by [`explain_analyze`].
struct Annot<'a> {
    /// Database to draw cardinality estimates from.
    db: Option<&'a Database>,
    /// Actual row counts from the analyzing execution.
    tally: Option<&'a TallyMap>,
}

impl Annot<'_> {
    const NONE: Annot<'static> = Annot {
        db: None,
        tally: None,
    };

    /// The tallied actual row count for `node` — `Some(0)` for nodes the
    /// execution never reached (short-circuits), `None` outside analyze.
    fn actual<T>(&self, node: &T) -> Option<u64> {
        self.tally.map(|t| {
            t.get(&(node as *const T as usize))
                .map(|nt| nt.rows)
                .unwrap_or(0)
        })
    }

    /// The join-build strategy recorded for `node` during the analyzing
    /// execution (`"dense-key"` or `"hash"`), if any.
    fn build<T>(&self, node: &T) -> Option<String> {
        self.tally
            .and_then(|t| t.get(&(node as *const T as usize)))
            .and_then(|nt| nt.build)
            .map(str::to_string)
    }

    /// Cardinality estimate for one pipeline scan: the stored relation's
    /// size, divided by the sketch-estimated distinct count of each
    /// bound key column (each equality key retains `1/V` of the rows —
    /// the System R uniform assumption, now over real statistics). IDB
    /// scans have no stored relation and get no estimate.
    fn est_scan(&self, scan: &Scan) -> Option<u64> {
        let rel = self.db?.relation(&scan.rel)?;
        let n = rel.len() as f64;
        if !scan.is_keyed() {
            return Some(n as u64);
        }
        let stats = rel.stats();
        let mut est = n;
        for &c in &scan.key_cols {
            est /= (stats.distinct(c) as f64).max(1.0);
        }
        Some((est.round() as u64).max(1))
    }

    /// Estimate for a whole pipeline: the product of its scans'
    /// estimates (`None` if any scan is unestimable).
    fn est_block(&self, block: &Block) -> Option<u64> {
        self.db?;
        let mut total = 1u64;
        for scan in &block.scans {
            total = total.saturating_mul(self.est_scan(scan)?);
        }
        Some(total)
    }

    /// Estimate for a bulk operator node, bottom-up.
    fn est_ops(&self, op: &OpNode) -> Option<u64> {
        let db = self.db?;
        Some(match op {
            OpNode::Table(name) => db.relation(name)?.len() as u64,
            OpNode::Project { input, .. } => self.est_ops(input)?,
            // A selection with no statistics: assume 1-in-3 qualify.
            OpNode::Select { input, .. } => (self.est_ops(input)? / 3).max(1),
            OpNode::Product(l, r) => self.est_ops(l)?.saturating_mul(self.est_ops(r)?),
            OpNode::Join {
                checks,
                left,
                right,
            }
            | OpNode::NaturalJoin {
                checks,
                left,
                right,
                ..
            } => {
                let cross = self.est_ops(left)?.saturating_mul(self.est_ops(right)?);
                let eq = checks.iter().filter(|(_, op, _)| *op == CmpOp::Eq).count();
                let shift = (2 * eq as u32).min(63);
                (cross >> shift).max(1)
            }
            // Difference and antijoin are bounded by the left input.
            OpNode::Diff(l, _) | OpNode::Antijoin { left: l, .. } => self.est_ops(l)?,
            OpNode::Union(l, r) => self.est_ops(l)?.saturating_add(self.est_ops(r)?),
        })
    }
}

fn fmt_term(t: &Term) -> String {
    match t {
        Term::Const(v) => v.to_string(),
        Term::Col { slot, col } => format!("t{slot}.c{col}"),
        Term::Var(s) => format!("v{s}"),
        Term::Unbound(v) => format!("?{v}"),
        Term::Wildcard => "_".into(),
    }
}

fn fmt_cols(cols: &[usize]) -> String {
    let parts: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
    format!("[{}]", parts.join(", "))
}

fn explain_formula(f: &Formula, annot: &Annot<'_>) -> ExplainNode {
    match f {
        Formula::And(fs) => {
            ExplainNode::new("and", "").with(fs.iter().map(|f| explain_formula(f, annot)).collect())
        }
        Formula::Or(fs) => {
            ExplainNode::new("or", "").with(fs.iter().map(|f| explain_formula(f, annot)).collect())
        }
        Formula::Not(sub) => ExplainNode::new("not", "").with(vec![explain_formula(sub, annot)]),
        Formula::Exists(block) => ExplainNode::new("exists", "").with(explain_block(block, annot)),
        Formula::Pred(p) => ExplainNode::new(
            "filter",
            format!("{} {} {}", fmt_term(&p.left), p.op, fmt_term(&p.right)),
        ),
        Formula::NegProbe { rel, cols, .. } => {
            let mut node = if cols.is_empty() {
                ExplainNode::new("neg-probe", format!("{rel} empty?"))
            } else {
                ExplainNode::new("neg-probe", format!("{rel} on cols {}", fmt_cols(cols)))
            };
            node.build = annot.build(f);
            node
        }
    }
}

fn explain_scan(scan: &Scan, annot: &Annot<'_>) -> ExplainNode {
    let detail = if scan.is_keyed() {
        let keys: Vec<String> = scan
            .key_cols
            .iter()
            .zip(&scan.key_terms)
            .map(|(c, t)| format!("c{c} = {}", fmt_term(t)))
            .collect();
        format!("{} hash probe on {}", scan.rel, keys.join(" and "))
    } else {
        format!("{} full scan", scan.rel)
    };
    let mut node = ExplainNode::new("scan", detail)
        .with(
            scan.filters
                .iter()
                .map(|f| explain_formula(f, annot))
                .collect(),
        )
        .rows(annot.est_scan(scan), annot.actual(scan));
    node.build = annot.build(scan);
    node
}

fn explain_block(block: &Block, annot: &Annot<'_>) -> Vec<ExplainNode> {
    let mut nodes: Vec<ExplainNode> = block
        .pre
        .iter()
        .map(|f| explain_formula(f, annot))
        .collect();
    nodes.extend(block.scans.iter().map(|s| explain_scan(s, annot)));
    nodes
}

fn explain_query(q: &QueryPlan, annot: &Annot<'_>, opts: ExecOptions) -> ExplainNode {
    let mut children = explain_block(&q.root, annot);
    if !q.deferred.is_empty() {
        children.push(
            ExplainNode::new("deferred", "validated with the output head bound").with(
                q.deferred
                    .iter()
                    .map(|f| explain_formula(f, annot))
                    .collect(),
            ),
        );
    }
    ExplainNode::new(
        "query",
        format!("{}({})", q.out.name(), q.out.attrs().join(", ")),
    )
    .with(children)
    // Prefer the cost-based planner's recorded estimate; fall back to
    // the per-scan product for plans compiled under the legacy strategy.
    .rows(
        q.est_rows.or_else(|| annot.est_block(&q.root)),
        annot.actual(q),
    )
    .mode(opts.batch && query_batchable(q))
}

fn explain_ops(op: &OpNode, annot: &Annot<'_>) -> ExplainNode {
    let join_detail = |checks: &[(usize, CmpOp, usize)]| {
        let eq = checks.iter().filter(|(_, op, _)| *op == CmpOp::Eq).count();
        let residual = checks.len() - eq;
        if eq == 0 {
            format!("nested loop ({residual} residual check(s))")
        } else {
            format!("hash join on {eq} key(s), {residual} residual check(s)")
        }
    };
    let node =
        match op {
            OpNode::Table(name) => ExplainNode::new("table", name.clone()),
            OpNode::Project { cols, input } => {
                ExplainNode::new("project", format!("cols {}", fmt_cols(cols)))
                    .with(vec![explain_ops(input, annot)])
            }
            OpNode::Select { input, .. } => ExplainNode::new("select", "compiled condition")
                .with(vec![explain_ops(input, annot)]),
            OpNode::Product(l, r) => ExplainNode::new("product", "")
                .with(vec![explain_ops(l, annot), explain_ops(r, annot)]),
            OpNode::Join {
                checks,
                left,
                right,
            } => ExplainNode::new("join", join_detail(checks))
                .with(vec![explain_ops(left, annot), explain_ops(right, annot)]),
            OpNode::NaturalJoin {
                checks,
                left,
                right,
                ..
            } => ExplainNode::new("natural-join", join_detail(checks))
                .with(vec![explain_ops(left, annot), explain_ops(right, annot)]),
            OpNode::Diff(l, r) => ExplainNode::new("diff", "")
                .with(vec![explain_ops(l, annot), explain_ops(r, annot)]),
            OpNode::Union(l, r) => ExplainNode::new("union", "")
                .with(vec![explain_ops(l, annot), explain_ops(r, annot)]),
            OpNode::Antijoin {
                checks,
                left,
                right,
            } => ExplainNode::new("antijoin", join_detail(checks))
                .with(vec![explain_ops(left, annot), explain_ops(right, annot)]),
        };
    let mut node = node.rows(annot.est_ops(op), annot.actual(op));
    node.build = annot.build(op);
    node
}

/// Renders a compiled plan as an explain tree (no row counts — see
/// [`explain_analyze`]). Executable roots carry the execution `mode`
/// the default options would pick (`batched` / `tuple`).
pub fn explain(plan: &Plan) -> ExplainNode {
    explain_with_opts(plan, &Annot::NONE, ExecOptions::default())
}

fn explain_with_opts(plan: &Plan, annot: &Annot<'_>, opts: ExecOptions) -> ExplainNode {
    match plan {
        Plan::Union(branches) => {
            if let [q] = branches.as_slice() {
                explain_query(q, annot, opts)
            } else {
                let est = branches
                    .iter()
                    .map(|q| q.est_rows.or_else(|| annot.est_block(&q.root)))
                    .try_fold(0u64, |acc, e| e.map(|e| acc.saturating_add(e)));
                ExplainNode::new("union", format!("{} branches", branches.len()))
                    .with(
                        branches
                            .iter()
                            .map(|q| explain_query(q, annot, opts))
                            .collect(),
                    )
                    .rows(est, None)
            }
        }
        Plan::Sentence(s) => ExplainNode::new("sentence", "boolean")
            .with(vec![explain_formula(&s.formula, annot)])
            .mode(false),
        Plan::Program(p) => ExplainNode::new("program", format!("query {}", p.query)).with(
            p.strata
                .iter()
                .map(|stratum| {
                    ExplainNode::new("stratum", stratum.pred.clone())
                        .with(
                            stratum
                                .rules
                                .iter()
                                .map(|rule| {
                                    ExplainNode::new(
                                        "rule",
                                        format!("{} head term(s)", rule.head.len()),
                                    )
                                    .with(explain_block(&rule.block, annot))
                                    .rows(annot.est_block(&rule.block), annot.actual(rule))
                                    .mode(opts.batch && rule_batchable(rule))
                                })
                                .collect(),
                        )
                        .rows(stratum.est_rows, annot.actual(stratum))
                })
                .collect(),
        ),
        Plan::Ops { root, out } => {
            ExplainNode::new("ops", format!("{}({})", out.name(), out.attrs().join(", ")))
                .with(vec![explain_ops(root, annot)])
                .rows(annot.est_ops(root), annot.actual(root))
                .mode(opts.batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Relation;

    fn rs_db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db
    }

    /// A hand-built pipeline: q(A) ← R(A, B), S(B) as a tuple-slot plan
    /// with a hash probe into S.
    fn join_plan() -> QueryPlan {
        QueryPlan {
            out: TableSchema::new("q", ["A"]),
            head_slot: 0,
            root: Block {
                pre: Vec::new(),
                scans: vec![
                    Scan {
                        rel: "R".into(),
                        tuple_slot: Some(1),
                        key_cols: Vec::new(),
                        key_terms: Vec::new(),
                        bind_cols: Vec::new(),
                        check_cols: Vec::new(),
                        index_id: FULL_SCAN,
                        filters: Vec::new(),
                    },
                    Scan {
                        rel: "S".into(),
                        tuple_slot: Some(2),
                        key_cols: vec![0],
                        key_terms: vec![Term::Col { slot: 1, col: 1 }],
                        bind_cols: Vec::new(),
                        check_cols: Vec::new(),
                        index_id: 0,
                        filters: Vec::new(),
                    },
                ],
            },
            defs: vec![Term::Col { slot: 1, col: 0 }],
            deferred: Vec::new(),
            shape: EnvShape {
                tuple_slots: 3,
                value_slots: 0,
                indexes: 1,
            },
            est_rows: None,
        }
    }

    #[test]
    fn pipeline_join_emits_matching_tuples() {
        let db = rs_db();
        let out = run_query(&join_plan(), &db).unwrap();
        let vals: Vec<&Value> = out.iter().map(|t| t.get(0)).collect();
        assert_eq!(vals, vec![&Value::int(1), &Value::int(2)]);
    }

    #[test]
    fn value_slot_pipeline_with_neg_probe() {
        // Q(x) ← R(x, y), ¬S(y): Datalog-style value slots.
        let db = rs_db();
        let rule = RulePlan {
            head: vec![Term::Var(0)],
            block: Block {
                pre: Vec::new(),
                scans: vec![Scan {
                    rel: "R".into(),
                    tuple_slot: None,
                    key_cols: Vec::new(),
                    key_terms: Vec::new(),
                    bind_cols: vec![(0, 0), (1, 1)],
                    check_cols: Vec::new(),
                    index_id: FULL_SCAN,
                    filters: vec![Formula::NegProbe {
                        rel: "S".into(),
                        cols: vec![0],
                        terms: vec![Term::Var(1)],
                        index_id: 0,
                    }],
                }],
            },
            shape: EnvShape {
                tuple_slots: 0,
                value_slots: 2,
                indexes: 1,
            },
        };
        let idbs = IdbMap::new();
        let out = run_rule(&rule, &db, &idbs, &mut None).unwrap();
        assert_eq!(out, vec![Tuple::new([3i64])]);
    }

    #[test]
    fn sentence_short_circuits() {
        let db = rs_db();
        let s = SentencePlan {
            formula: Formula::Exists(Block {
                pre: Vec::new(),
                scans: vec![Scan {
                    rel: "R".into(),
                    tuple_slot: Some(0),
                    key_cols: Vec::new(),
                    key_terms: Vec::new(),
                    bind_cols: Vec::new(),
                    check_cols: Vec::new(),
                    index_id: FULL_SCAN,
                    filters: vec![Formula::Pred(Pred {
                        left: Term::Col { slot: 0, col: 0 },
                        op: CmpOp::Eq,
                        right: Term::Const(Value::int(3)),
                    })],
                }],
            }),
            shape: EnvShape {
                tuple_slots: 1,
                value_slots: 0,
                indexes: 0,
            },
        };
        assert!(run_sentence(&s, &db).unwrap());
        assert_eq!(
            execute(&Plan::Sentence(s), &db).unwrap().len(),
            1,
            "true sentence is the 0-ary singleton"
        );
    }

    #[test]
    fn ops_tree_executes_join_and_diff() {
        let db = rs_db();
        // π_A(R ⋈_{B=B} S): the A values whose B appears in S.
        let join = OpNode::Join {
            checks: vec![(1, CmpOp::Eq, 0)],
            left: Box::new(OpNode::Table("R".into())),
            right: Box::new(OpNode::Table("S".into())),
        };
        let root = OpNode::Project {
            cols: vec![0],
            input: Box::new(join),
        };
        let tuples = run_ops(&root, &db).unwrap();
        assert_eq!(tuples.len(), 2);
    }

    #[test]
    fn empty_union_errors() {
        let db = rs_db();
        assert!(execute(&Plan::Union(Vec::new()), &db).is_err());
    }

    #[test]
    fn scan_set_walks_every_read_site() {
        // Pipeline branch: scans plus a NegProbe filter and an Exists
        // block inside a deferred conjunct.
        let mut q = join_plan();
        q.root.scans[0].filters.push(Formula::NegProbe {
            rel: "N".into(),
            cols: vec![0],
            terms: vec![Term::Const(Value::int(1))],
            index_id: 1,
        });
        q.deferred
            .push(Formula::Not(Box::new(Formula::Exists(Block {
                pre: Vec::new(),
                scans: vec![Scan {
                    rel: "D".into(),
                    tuple_slot: None,
                    key_cols: Vec::new(),
                    key_terms: Vec::new(),
                    bind_cols: Vec::new(),
                    check_cols: Vec::new(),
                    index_id: FULL_SCAN,
                    filters: Vec::new(),
                }],
            }))));
        let set = scan_set(&Plan::Union(vec![q]));
        let names: Vec<&str> = set.iter().map(String::as_str).collect();
        assert_eq!(names, ["D", "N", "R", "S"]);

        // Ops tree: every table leaf.
        let ops = Plan::Ops {
            root: OpNode::Diff(
                Box::new(OpNode::Table("A".into())),
                Box::new(OpNode::Project {
                    cols: vec![0],
                    input: Box::new(OpNode::Table("B".into())),
                }),
            ),
            out: TableSchema::new("q", ["x"]),
        };
        let names: Vec<String> = scan_set(&ops).into_iter().collect();
        assert_eq!(names, ["A", "B"]);
    }

    #[test]
    fn scan_set_excludes_computed_idbs() {
        // P(x) ← R(x, y); Q(x) ← P(x), ¬S(x): the program reads R and S
        // from storage, while P is computed per execution.
        let rule_p = RulePlan {
            head: vec![Term::Var(0)],
            block: Block {
                pre: Vec::new(),
                scans: vec![Scan {
                    rel: "R".into(),
                    tuple_slot: None,
                    key_cols: Vec::new(),
                    key_terms: Vec::new(),
                    bind_cols: vec![(0, 0)],
                    check_cols: Vec::new(),
                    index_id: FULL_SCAN,
                    filters: Vec::new(),
                }],
            },
            shape: EnvShape::default(),
        };
        let rule_q = RulePlan {
            head: vec![Term::Var(0)],
            block: Block {
                pre: Vec::new(),
                scans: vec![Scan {
                    rel: "P".into(),
                    tuple_slot: None,
                    key_cols: Vec::new(),
                    key_terms: Vec::new(),
                    bind_cols: vec![(0, 0)],
                    check_cols: Vec::new(),
                    index_id: FULL_SCAN,
                    filters: vec![Formula::NegProbe {
                        rel: "S".into(),
                        cols: vec![0],
                        terms: vec![Term::Var(0)],
                        index_id: 0,
                    }],
                }],
            },
            shape: EnvShape::default(),
        };
        let plan = Plan::Program(ProgramPlan {
            strata: vec![
                Stratum {
                    pred: "P".into(),
                    rules: vec![rule_p],
                    est_rows: None,
                },
                Stratum {
                    pred: "Q".into(),
                    rules: vec![rule_q],
                    est_rows: None,
                },
            ],
            query: "Q".into(),
            out: TableSchema::new("Q", ["x1"]),
        });
        let names: Vec<String> = scan_set(&plan).into_iter().collect();
        assert_eq!(names, ["R", "S"]);
    }

    #[test]
    fn explain_names_scan_strategy() {
        let plan = Plan::Union(vec![join_plan()]);
        let node = explain(&plan);
        assert_eq!(node.kind, "query");
        let scans: Vec<&ExplainNode> = node.children.iter().filter(|n| n.kind == "scan").collect();
        assert_eq!(scans.len(), 2);
        assert!(scans[0].detail.contains("full scan"), "{}", scans[0].detail);
        assert!(
            scans[1].detail.contains("hash probe"),
            "{}",
            scans[1].detail
        );
    }

    #[test]
    fn plain_explain_has_no_row_counts() {
        let node = explain(&Plan::Union(vec![join_plan()]));
        fn assert_unannotated(n: &ExplainNode) {
            assert_eq!((n.est_rows, n.actual_rows), (None, None), "{}", n.kind);
            n.children.iter().for_each(assert_unannotated);
        }
        assert_unannotated(&node);
    }

    #[test]
    fn explain_analyze_counts_pipeline_rows() {
        let db = rs_db();
        let plan = Plan::Union(vec![join_plan()]);
        let (rel, node) = explain_analyze(&plan, &db).unwrap();
        // Root: actual rows == the returned relation's cardinality.
        assert_eq!(node.actual_rows, Some(rel.len() as u64));
        assert_eq!(rel.len(), 2);
        // R full scan emits all 4 tuples; the S probe matches B ∈
        // {10, 20, 10} of the four R rows, i.e. 3 rows survive.
        let scans: Vec<&ExplainNode> = node.children.iter().filter(|n| n.kind == "scan").collect();
        assert_eq!(scans[0].rows_pair(), (Some(4), Some(4)));
        assert_eq!(scans[1].actual_rows, Some(3));
        assert!(scans[1].est_rows.is_some());
    }

    #[test]
    fn explain_analyze_counts_ops_rows() {
        let db = rs_db();
        // π_A(R ⋈_{B=B} S): join produces 3 pairs, projection dedups to 2.
        let plan = Plan::Ops {
            root: OpNode::Project {
                cols: vec![0],
                input: Box::new(OpNode::Join {
                    checks: vec![(1, CmpOp::Eq, 0)],
                    left: Box::new(OpNode::Table("R".into())),
                    right: Box::new(OpNode::Table("S".into())),
                }),
            },
            out: TableSchema::new("q", ["A"]),
        };
        let (rel, node) = explain_analyze(&plan, &db).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(node.actual_rows, Some(2));
        let project = &node.children[0];
        assert_eq!(project.kind, "project");
        assert_eq!(project.actual_rows, Some(2));
        let join = &project.children[0];
        assert_eq!(join.actual_rows, Some(3));
        // est: |R|·|S| = 8, one equality key → 8 >> 2 = 2.
        assert_eq!(join.est_rows, Some(2));
        let tables: Vec<(Option<u64>, Option<u64>)> =
            join.children.iter().map(|n| n.rows_pair()).collect();
        assert_eq!(tables, vec![(Some(4), Some(4)), (Some(2), Some(2))]);
    }

    impl ExplainNode {
        fn rows_pair(&self) -> (Option<u64>, Option<u64>) {
            (self.est_rows, self.actual_rows)
        }
    }
}
