//! Domain values.
//!
//! The paper's formalism only needs constants that can be compared with a
//! total order (§2: "we assume a linear order over the active domain").
//! Two *logical* kinds suffice for every query in the paper and in the
//! textbook corpus: integers and strings. At runtime a third variant
//! exists: [`Value::Sym`], an interned string — a `u32` handle into the
//! owning database's [`SymbolTable`](crate::SymbolTable). Stored tuples
//! carry only `Int`/`Sym`, so equality on the evaluation hot path is an
//! integer compare and cloning never allocates; `Str` survives at the
//! edges (parser literals, display, fixtures, the wire protocol) and is
//! interned on entry into a [`Database`](crate::Database).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single domain value: an integer, an interned string, or a raw string.
///
/// No `NULL` exists by design: the paper interprets SQL under binary logic
/// (§2.4), so this engine has no third truth value to propagate.
///
/// The derived total order is `Int < Sym < Str`, with `Sym` ordered by
/// interner id. Within one consistent path (everything interned against
/// one table, or nothing interned at all) this is a valid linear order
/// over the active domain; *lexicographic* comparisons between interned
/// strings go through [`CmpOp::eval_resolved`](crate::CmpOp::eval_resolved),
/// which resolves ids before comparing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An integer constant, e.g. the `5` in `r.B > 5`.
    Int(i64),
    /// An interned string: an id in the owning database's symbol table.
    Sym(u32),
    /// A string constant, e.g. the `'red'` in `b.color = 'red'` (edge
    /// representation; interned into `Sym` when stored).
    Str(String),
}

impl Value {
    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for string values.
    pub fn str(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// Returns `true` if this value is an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// Returns `true` if this value is an interned string handle.
    pub fn is_sym(&self) -> bool {
        matches!(self, Value::Sym(_))
    }

    /// The interner id, if this is a `Sym`.
    pub fn as_sym(&self) -> Option<u32> {
        match self {
            Value::Sym(id) => Some(*id),
            _ => None,
        }
    }

    /// Renders the value as a SQL literal (strings quoted with `'`).
    ///
    /// `Sym` values cannot be rendered without their table; resolve first
    /// (see [`Database::resolve_value`](crate::Database::resolve_value)).
    pub fn sql_literal(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Sym(id) => format!("sym#{id}"),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }

    /// The `(kind, code)` encoding dense join tables index by: `Int`
    /// and `Sym` map to distinct integer kinds (so an `Int` can never
    /// collide with a `Sym` of the same numeric code); raw strings have
    /// no dense encoding and force a hash table.
    pub fn as_dense_key(&self) -> Option<(u8, i64)> {
        match self {
            Value::Int(i) => Some((0, *i)),
            Value::Sym(s) => Some((1, *s as i64)),
            Value::Str(_) => None,
        }
    }

    /// Bytes this value occupies beyond its enum slot (heap payload).
    /// Used by size-aware cache admission.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Value::Int(_) | Value::Sym(_) => 0,
            Value::Str(s) => s.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            // Diagnostic fallback: user-facing paths resolve Sym to Str
            // before display.
            Value::Sym(id) => write!(f, "sym#{id}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_across_variants() {
        assert!(Value::int(99) < Value::str("a"));
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::int(99) < Value::Sym(0));
        assert!(Value::Sym(u32::MAX) < Value::str(""));
        assert!(Value::Sym(1) < Value::Sym(2));
    }

    #[test]
    fn sql_literal_quotes_strings() {
        assert_eq!(Value::int(5).sql_literal(), "5");
        assert_eq!(Value::str("red").sql_literal(), "'red'");
        assert_eq!(Value::str("o'brien").sql_literal(), "'o''brien'");
    }

    #[test]
    fn display_matches_trc_notation() {
        assert_eq!(Value::int(0).to_string(), "0");
        assert_eq!(Value::str("red").to_string(), "'red'");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::Str("y".into()));
    }

    #[test]
    fn sym_accessors_and_sizes() {
        assert_eq!(Value::Sym(7).as_sym(), Some(7));
        assert_eq!(Value::int(7).as_sym(), None);
        assert!(Value::Sym(7).is_sym());
        assert_eq!(Value::Sym(7).heap_bytes(), 0);
        assert_eq!(Value::int(7).heap_bytes(), 0);
        assert_eq!(Value::str("abcd").heap_bytes(), 4);
    }
}
