//! Domain values.
//!
//! The paper's formalism only needs constants that can be compared with a
//! total order (§2: "we assume a linear order over the active domain").
//! Two variants suffice for every query in the paper and in the textbook
//! corpus: integers and strings. Integers order before strings so that the
//! derived [`Ord`] is total across variants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single domain value: an integer or a string.
///
/// No `NULL` exists by design: the paper interprets SQL under binary logic
/// (§2.4), so this engine has no third truth value to propagate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An integer constant, e.g. the `5` in `r.B > 5`.
    Int(i64),
    /// A string constant, e.g. the `'red'` in `b.color = 'red'`.
    Str(String),
}

impl Value {
    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for string values.
    pub fn str(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// Returns `true` if this value is an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// Renders the value as a SQL literal (strings quoted with `'`).
    pub fn sql_literal(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_across_variants() {
        assert!(Value::int(99) < Value::str("a"));
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn sql_literal_quotes_strings() {
        assert_eq!(Value::int(5).sql_literal(), "5");
        assert_eq!(Value::str("red").sql_literal(), "'red'");
        assert_eq!(Value::str("o'brien").sql_literal(), "'o''brien'");
    }

    #[test]
    fn display_matches_trc_notation() {
        assert_eq!(Value::int(0).to_string(), "0");
        assert_eq!(Value::str("red").to_string(), "'red'");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::Str("y".into()));
    }
}
