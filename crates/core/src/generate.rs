//! Random and exhaustive database generation.
//!
//! Pattern isomorphism (Def. 12) reduces to logical equivalence of
//! dissociated queries, which is undecidable in general (Trakhtenbrot, §4.1
//! "Complexity of deciding pattern isomorphism"). `rd-pattern` therefore
//! *refutes* equivalence by searching for a counterexample database. This
//! module supplies the two search strategies:
//!
//! * [`ExhaustiveDbIter`] — every database over a small domain with at most
//!   `k` tuples per relation (complete for refutation within the bound);
//! * [`DbGenerator`] — seeded random databases over a larger domain, which
//!   catches discrepancies the tiny exhaustive domains miss (e.g. ones that
//!   require three distinct values on an ordered domain).

use crate::database::{Database, Relation, Tuple};
use crate::schema::Catalog;
use crate::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random database generator for differential testing.
#[derive(Debug)]
pub struct DbGenerator {
    catalog: Catalog,
    domain: Vec<Value>,
    max_tuples: usize,
    rng: StdRng,
}

impl DbGenerator {
    /// Creates a generator over `domain` producing at most `max_tuples`
    /// tuples per relation, with a fixed RNG seed for reproducibility.
    pub fn new(catalog: Catalog, domain: Vec<Value>, max_tuples: usize, seed: u64) -> Self {
        assert!(!domain.is_empty(), "domain must be non-empty");
        DbGenerator {
            catalog,
            domain,
            max_tuples,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generator with an integer domain `0..n`.
    pub fn with_int_domain(catalog: Catalog, n: i64, max_tuples: usize, seed: u64) -> Self {
        Self::new(catalog, (0..n).map(Value::int).collect(), max_tuples, seed)
    }

    /// Draws the next random database.
    pub fn next_db(&mut self) -> Database {
        let mut db = Database::new();
        for schema in self.catalog.iter() {
            let mut rel = Relation::empty(schema.clone());
            let n = self.rng.random_range(0..=self.max_tuples);
            for _ in 0..n {
                let tuple = Tuple(
                    (0..schema.arity())
                        .map(|_| {
                            let i = self.rng.random_range(0..self.domain.len());
                            self.domain[i].clone()
                        })
                        .collect(),
                );
                rel.insert(tuple).expect("generated tuple has schema arity");
            }
            db.add_relation(rel);
        }
        db
    }
}

impl Iterator for DbGenerator {
    type Item = Database;

    fn next(&mut self) -> Option<Database> {
        Some(self.next_db())
    }
}

/// Exhaustive enumeration of all databases over a finite domain with at
/// most `max_tuples` tuples per relation.
///
/// For each relation of arity `a` over a domain of size `d` there are
/// `d^a` candidate tuples; we enumerate every subset of size ≤ `max_tuples`
/// of each candidate set, taking the cartesian product across relations.
#[derive(Debug)]
pub struct ExhaustiveDbIter {
    /// Candidate tuples per relation (aligned with `schemas`).
    candidates: Vec<Vec<Tuple>>,
    schemas: Vec<crate::schema::TableSchema>,
    /// Current subset selector per relation, encoded as a bitmask.
    state: Vec<u64>,
    max_tuples: usize,
    done: bool,
}

/// Enumerates every database over `domain` for `catalog` with at most
/// `max_tuples` tuples per relation. Panics if any relation has more than
/// 63 candidate tuples (keep `|domain|^arity` small; this iterator is for
/// *tiny* model checking domains).
pub fn enumerate_databases(
    catalog: &Catalog,
    domain: &[Value],
    max_tuples: usize,
) -> ExhaustiveDbIter {
    let mut candidates = Vec::new();
    let mut schemas = Vec::new();
    for schema in catalog.iter() {
        let mut tuples = vec![Tuple(Vec::new())];
        for _ in 0..schema.arity() {
            let mut next = Vec::with_capacity(tuples.len() * domain.len());
            for t in &tuples {
                for v in domain {
                    let mut row = t.0.clone();
                    row.push(v.clone());
                    next.push(Tuple(row));
                }
            }
            tuples = next;
        }
        assert!(
            tuples.len() <= 63,
            "relation {} has {} candidate tuples; exhaustive enumeration only supports <= 63",
            schema.name(),
            tuples.len()
        );
        candidates.push(tuples);
        schemas.push(schema.clone());
    }
    let state = vec![0u64; candidates.len()];
    ExhaustiveDbIter {
        candidates,
        schemas,
        state,
        max_tuples,
        done: false,
    }
}

impl ExhaustiveDbIter {
    fn mask_ok(&self, mask: u64) -> bool {
        (mask.count_ones() as usize) <= self.max_tuples
    }

    fn build(&self) -> Database {
        let mut db = Database::new();
        for (i, schema) in self.schemas.iter().enumerate() {
            let mut rel = Relation::empty(schema.clone());
            let mask = self.state[i];
            for (j, t) in self.candidates[i].iter().enumerate() {
                if mask & (1 << j) != 0 {
                    rel.insert(t.clone()).expect("candidate tuple fits schema");
                }
            }
            db.add_relation(rel);
        }
        db
    }

    /// Advances `state[i]` to the next bitmask with ≤ `max_tuples` bits.
    /// Returns false on overflow of relation `i`.
    fn bump(&mut self, i: usize) -> bool {
        let limit = 1u64 << self.candidates[i].len();
        loop {
            self.state[i] += 1;
            if self.state[i] >= limit {
                self.state[i] = 0;
                return false;
            }
            if self.mask_ok(self.state[i]) {
                return true;
            }
        }
    }
}

impl Iterator for ExhaustiveDbIter {
    type Item = Database;

    fn next(&mut self) -> Option<Database> {
        if self.done {
            return None;
        }
        let db = self.build();
        // Odometer increment across relations.
        let mut i = 0;
        loop {
            if i >= self.state.len() {
                self.done = true;
                break;
            }
            if self.bump(i) {
                break;
            }
            i += 1;
        }
        if self.state.is_empty() {
            self.done = true;
        }
        Some(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn tiny_catalog() -> Catalog {
        Catalog::from_schemas([TableSchema::new("R", ["A"]), TableSchema::new("S", ["A"])]).unwrap()
    }

    #[test]
    fn exhaustive_counts_unary_domain2() {
        // Each unary relation over {0,1} has 4 subsets; 2 relations -> 16 dbs.
        let cat = tiny_catalog();
        let dom = [Value::int(0), Value::int(1)];
        let dbs: Vec<Database> = enumerate_databases(&cat, &dom, 2).collect();
        assert_eq!(dbs.len(), 16);
        // First database is entirely empty.
        assert!(dbs[0].iter().all(Relation::is_empty));
        // All databases are distinct.
        for i in 0..dbs.len() {
            for j in (i + 1)..dbs.len() {
                assert_ne!(dbs[i], dbs[j]);
            }
        }
    }

    #[test]
    fn exhaustive_respects_max_tuples() {
        let cat = Catalog::from_schemas([TableSchema::new("R", ["A"])]).unwrap();
        let dom = [Value::int(0), Value::int(1), Value::int(2)];
        let dbs: Vec<Database> = enumerate_databases(&cat, &dom, 1).collect();
        // Subsets of size <= 1 of a 3-element candidate set: empty + 3.
        assert_eq!(dbs.len(), 4);
        assert!(dbs.iter().all(|db| db.require("R").unwrap().len() <= 1));
    }

    #[test]
    fn exhaustive_binary_relation() {
        let cat = Catalog::from_schemas([TableSchema::new("R", ["A", "B"])]).unwrap();
        let dom = [Value::int(0), Value::int(1)];
        // 4 candidate tuples, all 16 subsets allowed with max_tuples = 4.
        let dbs: Vec<Database> = enumerate_databases(&cat, &dom, 4).collect();
        assert_eq!(dbs.len(), 16);
    }

    #[test]
    fn random_generation_is_reproducible_and_in_bounds() {
        let cat = tiny_catalog();
        let mut g1 = DbGenerator::with_int_domain(cat.clone(), 3, 4, 42);
        let mut g2 = DbGenerator::with_int_domain(cat, 3, 4, 42);
        for _ in 0..10 {
            let a = g1.next_db();
            let b = g2.next_db();
            assert_eq!(a, b);
            for rel in a.iter() {
                assert!(rel.len() <= 4);
                for t in rel.iter() {
                    for v in t.iter() {
                        assert!(matches!(v, Value::Int(i) if (0..3).contains(i)));
                    }
                }
            }
        }
    }
}
