//! Per-column statistics: KMV distinct-value sketches and `Int` min/max
//! ranges, maintained per stored relation.
//!
//! Each [`Relation`](crate::Relation) lazily materializes a
//! [`TableStats`] over its tuples on first request and then keeps it
//! current *incrementally*: inserting a fresh tuple observes its values
//! into the sketches; a delete (which a sketch cannot unobserve)
//! invalidates the cache so the next reader rebuilds. The cost-based
//! planner ([`crate::plan`]) reads these through
//! [`DbStats`](crate::plan::DbStats) to estimate predicate
//! selectivities and join cardinalities.
//!
//! The distinct counter is a K-Minimum-Values sketch (Bar-Yossef et al.):
//! keep the `K` smallest 64-bit hashes ever observed; with `k` distinct
//! hashes seen and the `K`-th smallest at height `h`, the distinct count
//! is estimated as `(K-1) · 2⁶⁴ / h`. Below `K` distinct values the
//! sketch is exact (modulo hash collisions).

use crate::database::Tuple;
use crate::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// Sketch size: the number of minimum hash values retained. 256 keeps
/// the relative error around `1/√(K-2)` ≈ 6% at a few KiB per column.
pub const KMV_K: usize = 256;

fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// A K-Minimum-Values distinct-count sketch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KmvSketch {
    /// The at-most-[`KMV_K`] smallest distinct hashes observed.
    mins: BTreeSet<u64>,
}

impl KmvSketch {
    /// Observes one value. Duplicates are absorbed by hash identity.
    pub fn observe(&mut self, v: &Value) {
        let h = hash_value(v);
        if self.mins.len() >= KMV_K {
            let max = *self.mins.iter().next_back().expect("non-empty at K");
            if h >= max {
                return;
            }
            if self.mins.insert(h) {
                self.mins.remove(&max);
            }
        } else {
            self.mins.insert(h);
        }
    }

    /// The estimated number of distinct values observed.
    pub fn distinct(&self) -> u64 {
        let k = self.mins.len();
        if k < KMV_K {
            k as u64
        } else {
            let kth = *self.mins.iter().next_back().expect("non-empty at K");
            (((KMV_K - 1) as f64) * (u64::MAX as f64) / (kth as f64).max(1.0)) as u64
        }
    }
}

/// Statistics for one column: a distinct sketch plus the observed
/// `Int` range (when the column holds integers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnStats {
    sketch: KmvSketch,
    min_int: Option<i64>,
    max_int: Option<i64>,
}

impl ColumnStats {
    /// Observes one value into the sketch and the `Int` range.
    pub fn observe(&mut self, v: &Value) {
        self.sketch.observe(v);
        if let Value::Int(i) = v {
            self.min_int = Some(self.min_int.map_or(*i, |m| m.min(*i)));
            self.max_int = Some(self.max_int.map_or(*i, |m| m.max(*i)));
        }
    }

    /// Estimated distinct values in this column.
    pub fn distinct(&self) -> u64 {
        self.sketch.distinct()
    }

    /// The observed `Int` min/max, if any integer was seen. The range
    /// only grows — deletes invalidate the whole table's stats instead.
    pub fn int_range(&self) -> Option<(i64, i64)> {
        match (self.min_int, self.max_int) {
            (Some(lo), Some(hi)) => Some((lo, hi)),
            _ => None,
        }
    }
}

/// Statistics for one relation: row count plus per-column
/// [`ColumnStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStats {
    rows: u64,
    cols: Vec<ColumnStats>,
}

impl TableStats {
    /// Empty statistics for a relation of the given arity.
    pub fn new(arity: usize) -> Self {
        TableStats {
            rows: 0,
            cols: (0..arity).map(|_| ColumnStats::default()).collect(),
        }
    }

    /// Builds statistics by scanning `tuples` once.
    pub fn of<'a>(arity: usize, tuples: impl IntoIterator<Item = &'a Tuple>) -> Self {
        let mut st = TableStats::new(arity);
        for t in tuples {
            st.observe(t);
        }
        st
    }

    /// Observes one (fresh — the caller dedups) tuple incrementally.
    pub fn observe(&mut self, t: &Tuple) {
        self.rows += 1;
        for (c, v) in t.iter().enumerate() {
            if let Some(col) = self.cols.get_mut(c) {
                col.observe(v);
            }
        }
    }

    /// Number of rows observed.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The column statistics (one entry per attribute).
    pub fn columns(&self) -> &[ColumnStats] {
        &self.cols
    }

    /// Estimated distinct values in column `col`, clamped to at least 1
    /// on non-empty relations and falling back to the row count for
    /// out-of-range columns.
    pub fn distinct(&self, col: usize) -> u64 {
        match self.cols.get(col) {
            Some(c) => c.distinct().max(u64::from(self.rows > 0)),
            None => self.rows,
        }
    }

    /// The observed `Int` range of column `col`, if known.
    pub fn int_range(&self, col: usize) -> Option<(i64, i64)> {
        self.cols.get(col).and_then(ColumnStats::int_range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmv_exact_below_k() {
        let mut s = KmvSketch::default();
        for i in 0..100i64 {
            s.observe(&Value::Int(i));
            s.observe(&Value::Int(i)); // duplicates absorbed
        }
        assert_eq!(s.distinct(), 100);
    }

    #[test]
    fn kmv_estimates_above_k() {
        let mut s = KmvSketch::default();
        for i in 0..10_000i64 {
            s.observe(&Value::Int(i));
        }
        let est = s.distinct() as f64;
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.25,
            "estimate {est} too far from 10000"
        );
    }

    #[test]
    fn column_tracks_int_range() {
        let mut c = ColumnStats::default();
        c.observe(&Value::Int(5));
        c.observe(&Value::Int(-3));
        c.observe(&Value::Str("x".into()));
        assert_eq!(c.int_range(), Some((-3, 5)));
        let mut s = ColumnStats::default();
        s.observe(&Value::Str("y".into()));
        assert_eq!(s.int_range(), None);
    }

    #[test]
    fn incremental_matches_rebuild() {
        let rows: Vec<Tuple> = (0..500i64).map(|i| Tuple::new([i % 7, i])).collect();
        let scanned = TableStats::of(2, rows.iter());
        let mut inc = TableStats::new(2);
        for t in &rows {
            inc.observe(t);
        }
        assert_eq!(scanned, inc);
        assert_eq!(scanned.rows(), 500);
        assert_eq!(scanned.distinct(0), 7);
        assert_eq!(scanned.int_range(1), Some((0, 499)));
    }
}
