//! Table schemas and catalogs.
//!
//! We follow the *named perspective* (§2): a table schema is a table name
//! plus an ordered list of attribute names. Ordering matters for Datalog's
//! positional atoms and for the dissociation machinery (a dissociated table
//! must have "the same schema" as its origin, Def. 10), so we keep
//! attributes in a `Vec` rather than a set, while still rejecting duplicate
//! names.

use crate::error::{CoreError, CoreResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The schema of one relation: a name and an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableSchema {
    name: String,
    attrs: Vec<String>,
}

impl TableSchema {
    /// Creates a schema. Panics on duplicate attribute names — schemas are
    /// almost always written as literals in code; use
    /// [`TableSchema::try_new`] for untrusted input.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(
        name: impl Into<String>,
        attrs: I,
    ) -> Self {
        Self::try_new(name, attrs).expect("invalid table schema")
    }

    /// Fallible constructor rejecting duplicate attribute names.
    pub fn try_new<S: Into<String>, I: IntoIterator<Item = S>>(
        name: impl Into<String>,
        attrs: I,
    ) -> CoreResult<Self> {
        let name = name.into();
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(CoreError::DuplicateAttribute {
                    table: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(TableSchema { name, attrs })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of `attr`, if present.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// `true` if `attr` is an attribute of this schema.
    pub fn has_attr(&self, attr: &str) -> bool {
        self.attr_index(attr).is_some()
    }

    /// Returns a copy of this schema under a different table name. Used by
    /// dissociation (Def. 10): "every table S'\[i\] has the same schema as
    /// table S\[i\]".
    pub fn renamed(&self, new_name: impl Into<String>) -> TableSchema {
        TableSchema {
            name: new_name.into(),
            attrs: self.attrs.clone(),
        }
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attrs.join(", "))
    }
}

/// A catalog: the set of table schemas a query may reference.
///
/// Catalogs are the "database schema" of the paper's examples, e.g.
/// `Sailor(sid, sname, rating, age), Reserves(sid, bid, day), Boat(bid,
/// bname, color)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a catalog from schemas, rejecting duplicates.
    pub fn from_schemas<I: IntoIterator<Item = TableSchema>>(schemas: I) -> CoreResult<Self> {
        let mut c = Catalog::new();
        for s in schemas {
            c.add(s)?;
        }
        Ok(c)
    }

    /// Adds a schema, rejecting duplicates.
    pub fn add(&mut self, schema: TableSchema) -> CoreResult<()> {
        if self.tables.contains_key(schema.name()) {
            return Err(CoreError::DuplicateTable(schema.name().to_string()));
        }
        self.tables.insert(schema.name().to_string(), schema);
        Ok(())
    }

    /// Looks up a schema by table name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Looks up a schema or returns an error.
    pub fn require(&self, name: &str) -> CoreResult<&TableSchema> {
        self.table(name)
            .ok_or_else(|| CoreError::UnknownTable(name.to_string()))
    }

    /// Iterates over all schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Returns a fresh table name not present in the catalog, derived from
    /// `base` by appending `_1`, `_2`, … Used when dissociating queries.
    pub fn fresh_name(&self, base: &str) -> String {
        if !self.tables.contains_key(base) {
            return base.to_string();
        }
        let mut i = 1usize;
        loop {
            let candidate = format!("{base}_{i}");
            if !self.tables.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in self.tables.values() {
            if !first {
                writeln!(f)?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_basics() {
        let s = TableSchema::new("Sailor", ["sid", "sname", "rating", "age"]);
        assert_eq!(s.name(), "Sailor");
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attr_index("rating"), Some(2));
        assert!(s.has_attr("sid"));
        assert!(!s.has_attr("bid"));
        assert_eq!(s.to_string(), "Sailor(sid, sname, rating, age)");
    }

    #[test]
    fn schema_rejects_duplicate_attrs() {
        let err = TableSchema::try_new("R", ["A", "A"]).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateAttribute { .. }));
    }

    #[test]
    fn renamed_preserves_attrs() {
        let s = TableSchema::new("R", ["A", "B"]);
        let r = s.renamed("R_1");
        assert_eq!(r.name(), "R_1");
        assert_eq!(r.attrs(), s.attrs());
    }

    #[test]
    fn catalog_add_and_lookup() {
        let mut c = Catalog::new();
        c.add(TableSchema::new("R", ["A", "B"])).unwrap();
        c.add(TableSchema::new("S", ["B"])).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.table("R").is_some());
        assert!(c.require("T").is_err());
        assert!(matches!(
            c.add(TableSchema::new("R", ["X"])),
            Err(CoreError::DuplicateTable(_))
        ));
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let mut c = Catalog::new();
        c.add(TableSchema::new("R", ["A"])).unwrap();
        c.add(TableSchema::new("R_1", ["A"])).unwrap();
        assert_eq!(c.fresh_name("R"), "R_2");
        assert_eq!(c.fresh_name("S"), "S");
    }
}
