//! The shared planning layer: relation-size statistics, a selectivity
//! cost model for greedy join ordering, and hash-index construction for
//! equi-joins.
//!
//! All three evaluators (TRC, RA, Datalog) used to extend bindings in
//! source order with nested-loop scans. They now share this module:
//! positive atoms / conjuncts are reordered greedily by
//! [`scan_cost`] — prefer scans with bound equality keys (hash probes),
//! then smaller relations — and every scan with at least one bound
//! equality key probes a [`build_index`] hash map instead of scanning.
//! Negated and quantified subformulas still evaluate only after their
//! bindings are available.

use crate::database::{Database, Tuple};
use crate::error::CoreResult;
use crate::Value;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Per-table size statistics of a database instance — the input to join
/// ordering (the TRC compiler builds one per query; the Datalog planner
/// augments these sizes with its already-computed IDBs). Cheap to build
/// (`BTreeMap` walk, no tuple scans) and valid for the lifetime of the
/// snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbStats {
    sizes: BTreeMap<String, usize>,
    total: usize,
}

impl DbStats {
    /// Collects statistics for `db`.
    pub fn of(db: &Database) -> DbStats {
        let mut sizes = BTreeMap::new();
        let mut total = 0;
        for rel in db.iter() {
            sizes.insert(rel.name().to_string(), rel.len());
            total += rel.len();
        }
        DbStats { sizes, total }
    }

    /// Tuples in `table` (0 for unknown tables).
    pub fn size(&self, table: &str) -> usize {
        self.sizes.get(table).copied().unwrap_or(0)
    }

    /// Total tuples across all tables.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Estimated cost of scanning a relation of `size` tuples with
/// `bound_keys` equality columns already bound.
///
/// The model is deliberately simple — it only has to *rank* candidate
/// scans: an unkeyed scan costs its full size; each bound equality key
/// divides the expected match count by a nominal per-key selectivity of
/// 8 (hash probe + short bucket). `+1.0` keeps empty relations ordered
/// ahead of everything (scanning them short-circuits immediately).
pub fn scan_cost(size: usize, bound_keys: usize) -> f64 {
    let mut cost = size as f64 + 1.0;
    for _ in 0..bound_keys {
        cost = (cost / 8.0).max(1.0);
    }
    cost
}

/// Builds a hash index over `tuples` keyed by the values at `cols`
/// (in the given column order).
///
/// Keys are small `Vec<Value>`s of `Int`/`Sym` values, so building and
/// probing never allocate strings — this is what the interned
/// representation buys on the join hot path.
pub fn build_index<'a, I>(tuples: I, cols: &[usize]) -> HashMap<Vec<crate::Value>, Vec<&'a Tuple>>
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut index: HashMap<Vec<crate::Value>, Vec<&'a Tuple>> = HashMap::new();
    for t in tuples {
        let key: Vec<crate::Value> = cols.iter().map(|&c| t.get(c).clone()).collect();
        index.entry(key).or_default().push(t);
    }
    index
}

/// A hash index: key columns' values → the matching tuples.
pub type Index<'a> = HashMap<Vec<Value>, Vec<&'a Tuple>>;

/// A cache of lazily-built hash indexes, one slot per keyed scan of a
/// compiled query plan. Both the TRC and the Datalog evaluator drive
/// their probes through this, so the build-once/probe-many protocol
/// (and any future key normalization) lives in exactly one place.
pub struct IndexCache<'a> {
    slots: Vec<Option<Rc<Index<'a>>>>,
}

impl<'a> IndexCache<'a> {
    /// A cache with `n` index slots (the plan's keyed-scan count).
    pub fn new(n: usize) -> Self {
        IndexCache {
            slots: vec![None; n],
        }
    }

    /// The index in slot `id`, building it from `tuples` over `cols` on
    /// first use. The `Rc` decouples the returned index from the cache
    /// borrow, so callers can keep probing while scheduling more scans.
    pub fn get_or_build<I, F>(
        &mut self,
        id: usize,
        cols: &[usize],
        tuples: F,
    ) -> CoreResult<Rc<Index<'a>>>
    where
        I: IntoIterator<Item = &'a Tuple>,
        F: FnOnce() -> CoreResult<I>,
    {
        if self.slots[id].is_none() {
            self.slots[id] = Some(Rc::new(build_index(tuples()?, cols)));
        }
        Ok(self.slots[id].clone().expect("just built"))
    }
}

/// A reusable probe-key buffer: filling it allocates nothing once warm,
/// and the returned slice borrows the buffer, so probing a hash index
/// per tuple is allocation-free.
#[derive(Default)]
pub struct KeyBuf(Vec<Value>);

impl KeyBuf {
    /// Clears the buffer, fills it from `values`, and hands back the
    /// slice to probe with.
    pub fn fill(&mut self, values: impl Iterator<Item = Value>) -> &[Value] {
        self.0.clear();
        self.0.extend(values);
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Relation;
    use crate::schema::TableSchema;

    #[test]
    fn stats_track_sizes() {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(TableSchema::new("R", ["A"]), [[1i64], [2], [3]]).unwrap(),
        );
        db.add_relation(Relation::from_rows(TableSchema::new("S", ["B"]), [[1i64]]).unwrap());
        let st = DbStats::of(&db);
        assert_eq!(st.size("R"), 3);
        assert_eq!(st.size("S"), 1);
        assert_eq!(st.size("Nope"), 0);
        assert_eq!(st.total(), 4);
    }

    #[test]
    fn cost_prefers_keys_then_size() {
        // A keyed scan of a big relation beats an unkeyed scan of it.
        assert!(scan_cost(1000, 1) < scan_cost(1000, 0));
        // More keys, cheaper.
        assert!(scan_cost(1000, 2) < scan_cost(1000, 1));
        // With equal keys, smaller relations win.
        assert!(scan_cost(10, 1) < scan_cost(1000, 1));
        // Cost never drops below 1 probe.
        assert!(scan_cost(2, 5) >= 1.0);
    }

    #[test]
    fn index_groups_by_key() {
        let rel = Relation::from_rows(
            TableSchema::new("R", ["A", "B"]),
            [[1i64, 10], [1, 20], [2, 10]],
        )
        .unwrap();
        let idx = build_index(rel.iter(), &[0]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[&vec![Value::int(1)]].len(), 2);
        assert_eq!(idx[&vec![Value::int(2)]].len(), 1);
        assert!(!idx.contains_key(&vec![Value::int(3)]));
        let idx2 = build_index(rel.iter(), &[1, 0]);
        assert_eq!(idx2[&vec![Value::int(10), Value::int(1)]].len(), 1);
    }
}
