//! The shared planning layer: per-table statistics, a cardinality
//! estimator, Selinger-style dynamic programming over join orders, and
//! hash-index construction for equi-joins.
//!
//! All the evaluators (TRC, SQL via the TRC hub, RA, Datalog) lower
//! onto the shared pipeline IR and route their join ordering through
//! this module. Ordering is cost-based by default: [`DbStats`] snapshots
//! per-column distinct sketches and `Int` ranges
//! ([`crate::stats::TableStats`]), the estimator turns equality/range
//! predicates and equi-join classes into cardinalities, and
//! [`order_scans`] runs an exact left-deep dynamic program over the
//! scan set (falling back to an estimator-driven greedy above
//! [`PlannerOpts::dp_threshold`] scans). The legacy one-pass greedy
//! ([`scan_cost`]) survives as [`OrderStrategy::Greedy`] — the
//! differential baseline. Every scan with at least one bound equality
//! key probes a [`build_index`] hash map instead of scanning; negated
//! and quantified subformulas still evaluate only after their bindings
//! are available.

use crate::database::{Database, Tuple};
use crate::error::CoreResult;
use crate::stats::TableStats;
use crate::{CmpOp, Value};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// Per-table statistics of a database instance — the input to join
/// ordering. Holds exact sizes, per-column [`TableStats`] snapshots
/// (distinct sketches + `Int` ranges, materialized lazily by the
/// relations and cached per mutation epoch), and name-keyed row
/// *overrides*: estimated sizes for predicates with no stored relation
/// (Datalog IDBs) and execution-feedback actuals ([`PlanHints`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbStats {
    sizes: BTreeMap<String, usize>,
    tables: BTreeMap<String, Arc<TableStats>>,
    overrides: BTreeMap<String, u64>,
    total: usize,
}

impl DbStats {
    /// Collects statistics for `db`. Column statistics materialize
    /// lazily inside each relation and are cached there, so repeated
    /// snapshots per epoch cost one `Arc` clone per table.
    pub fn of(db: &Database) -> DbStats {
        let mut sizes = BTreeMap::new();
        let mut tables = BTreeMap::new();
        let mut total = 0;
        for rel in db.iter() {
            sizes.insert(rel.name().to_string(), rel.len());
            tables.insert(rel.name().to_string(), rel.stats());
            total += rel.len();
        }
        DbStats {
            sizes,
            tables,
            overrides: BTreeMap::new(),
            total,
        }
    }

    /// Tuples in `table`: a hint override when one is set (IDB
    /// estimates, feedback actuals), else the stored size (0 for
    /// unknown tables).
    pub fn size(&self, table: &str) -> usize {
        match self.overrides.get(table) {
            Some(&rows) => rows as usize,
            None => self.sizes.get(table).copied().unwrap_or(0),
        }
    }

    /// Sets a row-count override for `table` — the planner's estimate
    /// for a name with no stored relation, or a feedback actual that
    /// should outrank the stored size.
    pub fn set_override(&mut self, table: &str, rows: u64) {
        self.overrides.insert(table.to_string(), rows);
    }

    /// Applies execution-feedback hints: each entry overrides the
    /// table's assumed cardinality.
    pub fn apply_hints(&mut self, hints: &PlanHints) {
        for (table, &rows) in &hints.rel_rows {
            self.set_override(table, rows);
        }
    }

    /// Estimated distinct values in `table.col`, clamped to ≥ 1. For
    /// names without column statistics (IDBs, overrides) every row is
    /// assumed distinct — the optimistic default that keeps key probes
    /// attractive.
    pub fn distinct(&self, table: &str, col: usize) -> f64 {
        let fallback = self.size(table).max(1) as f64;
        match self.tables.get(table) {
            Some(st) if self.overrides.contains_key(table) => {
                // An override re-scales the row count; scale distincts
                // proportionally, capped by the observed estimate.
                let rows = st.rows().max(1) as f64;
                (st.distinct(col) as f64 * (fallback / rows)).clamp(1.0, fallback.max(1.0))
            }
            Some(st) => (st.distinct(col) as f64).max(1.0),
            None => fallback,
        }
    }

    /// The observed `Int` range of `table.col`, if known.
    pub fn int_range(&self, table: &str, col: usize) -> Option<(i64, i64)> {
        self.tables.get(table).and_then(|st| st.int_range(col))
    }

    /// Selectivity of `col <op> literal` against this table's column
    /// statistics: equality keeps `1/V(col)`, inequality its
    /// complement, and ordered comparisons interpolate within the
    /// observed `Int` range (defaulting to 1/3 when no range is known —
    /// the classic System R guess).
    pub fn cmp_selectivity(&self, table: &str, col: usize, op: CmpOp, lit: &Value) -> f64 {
        let eq = 1.0 / self.distinct(table, col);
        match op {
            CmpOp::Eq => eq,
            CmpOp::Ne => (1.0 - eq).max(eq),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                match (self.int_range(table, col), lit) {
                    (Some((lo, hi)), Value::Int(b)) => {
                        let width = (hi - lo) as f64 + 1.0;
                        let below = ((b - lo) as f64).clamp(0.0, width);
                        let frac = match op {
                            CmpOp::Lt => below / width,
                            CmpOp::Le => (below + 1.0).min(width) / width,
                            CmpOp::Gt => (width - below - 1.0).max(0.0) / width,
                            _ => (width - below) / width,
                        };
                        frac.clamp(eq, 1.0)
                    }
                    _ => 1.0 / 3.0,
                }
            }
        }
    }

    /// Total tuples across all tables.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Execution-feedback hints for re-planning: actual cardinalities
/// observed by prior executions, keyed by table/predicate name. The
/// engine's plan cache records actuals per query and threads them back
/// through compilation — most usefully replacing the Datalog lowering's
/// IDB size estimates with the sizes the fixpoint actually produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanHints {
    /// Observed rows per table/predicate name.
    pub rel_rows: BTreeMap<String, u64>,
}

impl PlanHints {
    /// `true` when there is nothing to apply.
    pub fn is_empty(&self) -> bool {
        self.rel_rows.is_empty()
    }

    /// Records an observed cardinality for `table`.
    pub fn set(&mut self, table: &str, rows: u64) {
        self.rel_rows.insert(table.to_string(), rows);
    }
}

/// How a lowering orders the scans of one conjunctive block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OrderStrategy {
    /// Cost-based: cardinality estimation over real statistics plus the
    /// [`order_scans`] dynamic program (greedy fallback above the
    /// threshold). The default.
    #[default]
    CostDp,
    /// The legacy one-pass greedy over [`scan_cost`] — kept as the
    /// differential-testing baseline and available as an escape hatch.
    Greedy,
}

/// Planner configuration threaded through the four lowerings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerOpts {
    /// Join-order strategy.
    pub strategy: OrderStrategy,
    /// Above this many scans in one block, [`order_scans`] switches
    /// from the exact `O(2ⁿ·n)` dynamic program to estimator-driven
    /// greedy. 12 scans ≈ 50k DP transitions — well under a
    /// microsecond-scale compile budget.
    pub dp_threshold: usize,
}

impl Default for PlannerOpts {
    fn default() -> Self {
        PlannerOpts {
            strategy: OrderStrategy::CostDp,
            dp_threshold: 12,
        }
    }
}

/// One candidate scan of a conjunctive block, reduced to the numbers
/// the join orderer needs. The lowering estimates `rows` by applying
/// local predicate selectivities to the base cardinality, and maps each
/// equi-join column onto a cross-scan equivalence *class* (two scans
/// sharing a class join on it; a class spanning no placed scan binds
/// nothing).
#[derive(Debug, Clone, Default)]
pub struct ScanCand {
    /// Estimated rows after local (single-scan) predicates.
    pub rows: f64,
    /// `(class, distinct)` per equi-join column: the join-class id this
    /// column belongs to and the estimated distinct values it holds.
    pub join_cols: Vec<(usize, f64)>,
}

/// Estimated cardinality of joining the candidate subset `mask`, under
/// preserved-value-sets: for each join class with `k ≥ 2` members in
/// the subset, divide the row product by the `k-1` largest per-member
/// distinct counts (the pairwise `|R ⋈ S| = |R|·|S| / max(V_R, V_S)`
/// rule, associatively extended). Order-independent by construction.
fn est_card(cands: &[ScanCand], mask: usize) -> f64 {
    let mut card = 1.0f64;
    let mut class_vs: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for (i, cand) in cands.iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        card *= cand.rows.max(0.0);
        let mut seen = Vec::new();
        for &(class, v) in &cand.join_cols {
            // A scan equating two own columns into one class constrains
            // itself once; count each class once per scan.
            if !seen.contains(&class) {
                seen.push(class);
                class_vs.entry(class).or_default().push(v.max(1.0));
            }
        }
    }
    for vs in class_vs.values_mut() {
        if vs.len() >= 2 {
            vs.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            for v in &vs[..vs.len() - 1] {
                card /= v;
            }
        }
    }
    card
}

/// `true` if candidate `j` shares a join class with any candidate in
/// `mask` — i.e. placing it after them executes as a keyed hash probe
/// rather than a per-binding full scan.
fn keyed_against(cands: &[ScanCand], mask: usize, j: usize) -> bool {
    cands[j].join_cols.iter().any(|&(class, _)| {
        cands
            .iter()
            .enumerate()
            .any(|(i, c)| mask & (1 << i) != 0 && c.join_cols.iter().any(|&(cl, _)| cl == class))
    })
}

/// Cost of appending scan `j` to a placed prefix: emitted frontier rows
/// plus the work to produce them — `|prefix|` hash probes (and an
/// amortized index build) when `j` is keyed against the prefix, or
/// `|prefix| · rows(j)` examined pairs when it is not.
fn append_cost(cands: &[ScanCand], prefix_mask: usize, prefix_card: f64, j: usize) -> f64 {
    let out = est_card(cands, prefix_mask | (1 << j));
    if prefix_mask == 0 {
        return out;
    }
    if keyed_against(cands, prefix_mask, j) {
        // Index build is a once-per-execution linear pass — far cheaper
        // per row than emitting frontier tuples, hence the small factor.
        out + prefix_card + cands[j].rows * 0.1
    } else {
        out + prefix_card * cands[j].rows.max(1.0)
    }
}

/// Orders a block's scans by estimated cost: an exact left-deep
/// Selinger dynamic program minimizing the summed intermediate-frontier
/// cost (`C_out` plus probe/scan work) up to
/// [`PlannerOpts::dp_threshold`] scans, estimator-driven greedy above
/// it. Left-deep is the shape the pipeline executor runs — each scan
/// extends the current binding frontier — so the DP searches exactly
/// the executable space; bushy effects (build-side choice) are handled
/// where trees exist, in the RA lowering.
///
/// Returns the scan order (indices into `cands`) and the estimated
/// cardinality of the fully-joined block.
pub fn order_scans(cands: &[ScanCand], opts: &PlannerOpts) -> (Vec<usize>, f64) {
    let n = cands.len();
    let full = (1usize << n.min(usize::BITS as usize - 1)) - 1;
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let total_est = est_card(cands, full);
    if n == 1 {
        return (vec![0], total_est);
    }
    if n > opts.dp_threshold {
        return (order_scans_greedy(cands), total_est);
    }

    // dp over subsets: best[mask] = cheapest cost of any left-deep
    // order placing exactly `mask`; last[mask] = the scan placed last
    // on that best order.
    let mut best = vec![f64::INFINITY; full + 1];
    let mut last = vec![usize::MAX; full + 1];
    let mut cards = vec![0.0f64; full + 1];
    for (mask, card) in cards.iter_mut().enumerate().skip(1) {
        *card = est_card(cands, mask);
    }
    for j in 0..n {
        best[1 << j] = cands[j].rows;
        last[1 << j] = j;
    }
    for mask in 1..=full {
        // Singletons were seeded above; fill composite masks.
        if mask.count_ones() < 2 {
            continue;
        }
        for j in 0..n {
            if mask & (1 << j) == 0 {
                continue;
            }
            let prev = mask & !(1 << j);
            let cost = best[prev] + append_cost(cands, prev, cards[prev], j);
            if cost < best[mask] {
                best[mask] = cost;
                last[mask] = j;
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let j = last[mask];
        debug_assert!(j != usize::MAX, "dp table fully populated");
        order.push(j);
        mask &= !(1 << j);
    }
    order.reverse();
    (order, total_est)
}

/// Estimator-driven greedy fallback for wide blocks: repeatedly place
/// the scan with the cheapest [`append_cost`] against the current
/// prefix. Same cost model as the DP, linearized.
fn order_scans_greedy(cands: &[ScanCand]) -> Vec<usize> {
    let n = cands.len();
    let mut order = Vec::with_capacity(n);
    let mut mask = 0usize;
    let mut card = 0.0f64;
    for _ in 0..n {
        let mut best_j = usize::MAX;
        let mut best_cost = f64::INFINITY;
        for j in 0..n {
            if mask & (1 << j) != 0 {
                continue;
            }
            let cost = append_cost(cands, mask, card, j);
            if cost < best_cost {
                best_cost = cost;
                best_j = j;
            }
        }
        order.push(best_j);
        mask |= 1 << best_j;
        card = est_card(cands, mask);
    }
    order
}

/// Estimated cost of scanning a relation of `size` tuples with
/// `bound_keys` equality columns already bound.
///
/// The model is deliberately simple — it only has to *rank* candidate
/// scans: an unkeyed scan costs its full size; each bound equality key
/// divides the expected match count by a nominal per-key selectivity of
/// 8 (hash probe + short bucket). `+1.0` keeps empty relations ordered
/// ahead of everything (scanning them short-circuits immediately).
pub fn scan_cost(size: usize, bound_keys: usize) -> f64 {
    let mut cost = size as f64 + 1.0;
    for _ in 0..bound_keys {
        cost = (cost / 8.0).max(1.0);
    }
    cost
}

/// Builds a hash index over `tuples` keyed by the values at `cols`
/// (in the given column order).
///
/// Keys are small `Vec<Value>`s of `Int`/`Sym` values, so building and
/// probing never allocate strings — this is what the interned
/// representation buys on the join hot path.
pub fn build_index<'a, I>(tuples: I, cols: &[usize]) -> HashMap<Vec<crate::Value>, Vec<&'a Tuple>>
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut index: HashMap<Vec<crate::Value>, Vec<&'a Tuple>> = HashMap::new();
    for t in tuples {
        let key: Vec<crate::Value> = cols.iter().map(|&c| t.get(c).clone()).collect();
        index.entry(key).or_default().push(t);
    }
    index
}

/// A hash index: key columns' values → the matching tuples.
pub type Index<'a> = HashMap<Vec<Value>, Vec<&'a Tuple>>;

/// A cache of lazily-built hash indexes, one slot per keyed scan of a
/// compiled query plan. Both the TRC and the Datalog evaluator drive
/// their probes through this, so the build-once/probe-many protocol
/// (and any future key normalization) lives in exactly one place.
pub struct IndexCache<'a> {
    slots: Vec<Option<Rc<Index<'a>>>>,
}

impl<'a> IndexCache<'a> {
    /// A cache with `n` index slots (the plan's keyed-scan count).
    pub fn new(n: usize) -> Self {
        IndexCache {
            slots: vec![None; n],
        }
    }

    /// The index in slot `id`, building it from `tuples` over `cols` on
    /// first use. The `Rc` decouples the returned index from the cache
    /// borrow, so callers can keep probing while scheduling more scans.
    pub fn get_or_build<I, F>(
        &mut self,
        id: usize,
        cols: &[usize],
        tuples: F,
    ) -> CoreResult<Rc<Index<'a>>>
    where
        I: IntoIterator<Item = &'a Tuple>,
        F: FnOnce() -> CoreResult<I>,
    {
        if self.slots[id].is_none() {
            self.slots[id] = Some(Rc::new(build_index(tuples()?, cols)));
        }
        Ok(self.slots[id].clone().expect("just built"))
    }
}

/// A reusable probe-key buffer: filling it allocates nothing once warm,
/// and the returned slice borrows the buffer, so probing a hash index
/// per tuple is allocation-free.
#[derive(Default)]
pub struct KeyBuf(Vec<Value>);

impl KeyBuf {
    /// Clears the buffer, fills it from `values`, and hands back the
    /// slice to probe with.
    pub fn fill(&mut self, values: impl Iterator<Item = Value>) -> &[Value] {
        self.0.clear();
        self.0.extend(values);
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Relation;
    use crate::schema::TableSchema;

    #[test]
    fn stats_track_sizes() {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(TableSchema::new("R", ["A"]), [[1i64], [2], [3]]).unwrap(),
        );
        db.add_relation(Relation::from_rows(TableSchema::new("S", ["B"]), [[1i64]]).unwrap());
        let st = DbStats::of(&db);
        assert_eq!(st.size("R"), 3);
        assert_eq!(st.size("S"), 1);
        assert_eq!(st.size("Nope"), 0);
        assert_eq!(st.total(), 4);
    }

    #[test]
    fn cost_prefers_keys_then_size() {
        // A keyed scan of a big relation beats an unkeyed scan of it.
        assert!(scan_cost(1000, 1) < scan_cost(1000, 0));
        // More keys, cheaper.
        assert!(scan_cost(1000, 2) < scan_cost(1000, 1));
        // With equal keys, smaller relations win.
        assert!(scan_cost(10, 1) < scan_cost(1000, 1));
        // Cost never drops below 1 probe.
        assert!(scan_cost(2, 5) >= 1.0);
    }

    /// The skewed 3-way fixture: S(x) ⋈ R(x,y) ⋈ T(y) with |S|=50,
    /// |R|=10⁴, |T|=100. The legacy greedy ranks the unkeyed T scan
    /// (cost 101) below the keyed R probe (cost 10001/8) and
    /// cross-products S×T; the estimator sees the 5000-row frontier
    /// coming and routes S → R → T.
    fn skewed_cands() -> Vec<ScanCand> {
        vec![
            // S: 50 rows, col 0 in class 0 (x), all distinct.
            ScanCand {
                rows: 50.0,
                join_cols: vec![(0, 50.0)],
            },
            // R: 10⁴ rows, x × y grid of 100 × 100 distinct values.
            ScanCand {
                rows: 10_000.0,
                join_cols: vec![(0, 100.0), (1, 100.0)],
            },
            // T: 100 rows, col 0 in class 1 (y), all distinct.
            ScanCand {
                rows: 100.0,
                join_cols: vec![(1, 100.0)],
            },
        ]
    }

    #[test]
    fn est_card_is_order_independent_and_sane() {
        let cands = skewed_cands();
        // S ⋈ R on x: 50·10⁴ / max(50,100) = 5000.
        assert_eq!(est_card(&cands, 0b011).round(), 5000.0);
        // S × T: no shared class → cross product.
        assert_eq!(est_card(&cands, 0b101).round(), 5000.0);
        // Full join: 50·10⁴·100 / (100·100) = 5000.
        assert_eq!(est_card(&cands, 0b111).round(), 5000.0);
    }

    #[test]
    fn dp_picks_small_intermediate_order_on_skewed_fixture() {
        let (order, est) = order_scans(&skewed_cands(), &PlannerOpts::default());
        // S first (smallest), then R (keyed on x), then T (keyed on y)
        // — never the S×T cross product the legacy greedy builds.
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(est.round(), 5000.0);
    }

    #[test]
    fn greedy_fallback_agrees_on_skewed_fixture() {
        let opts = PlannerOpts {
            dp_threshold: 2, // force the fallback
            ..PlannerOpts::default()
        };
        let (order, _) = order_scans(&skewed_cands(), &opts);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn dp_orders_empty_relations_first() {
        let cands = vec![
            ScanCand {
                rows: 1000.0,
                join_cols: vec![(0, 1000.0)],
            },
            ScanCand {
                rows: 0.0,
                join_cols: vec![(0, 1.0)],
            },
        ];
        let (order, est) = order_scans(&cands, &PlannerOpts::default());
        assert_eq!(order, vec![1, 0]);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn overrides_and_hints_reshape_sizes() {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(TableSchema::new("R", ["A"]), [[1i64], [2], [3]]).unwrap(),
        );
        let mut st = DbStats::of(&db);
        assert_eq!(st.size("R"), 3);
        assert_eq!(st.size("Idb"), 0);
        st.set_override("Idb", 42);
        assert_eq!(st.size("Idb"), 42);
        let mut hints = PlanHints::default();
        hints.set("R", 1000);
        st.apply_hints(&hints);
        assert_eq!(st.size("R"), 1000);
        // Distincts scale with the override, capped by the new size.
        assert!(st.distinct("R", 0) > 3.0);
    }

    #[test]
    fn cmp_selectivity_uses_ranges_and_distincts() {
        let mut db = Database::new();
        let rows: Vec<[i64; 1]> = (0..100).map(|i| [i]).collect();
        db.add_relation(Relation::from_rows(TableSchema::new("R", ["A"]), rows).unwrap());
        let st = DbStats::of(&db);
        let eq = st.cmp_selectivity("R", 0, CmpOp::Eq, &Value::int(5));
        assert!((eq - 0.01).abs() < 1e-9);
        let lt = st.cmp_selectivity("R", 0, CmpOp::Lt, &Value::int(25));
        assert!((lt - 0.25).abs() < 0.02, "lt sel {lt}");
        let ge = st.cmp_selectivity("R", 0, CmpOp::Ge, &Value::int(75));
        assert!((ge - 0.25).abs() < 0.02, "ge sel {ge}");
        // No range info → the 1/3 default.
        let s = st.cmp_selectivity("R", 0, CmpOp::Lt, &Value::Str("x".into()));
        assert!((s - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn index_groups_by_key() {
        let rel = Relation::from_rows(
            TableSchema::new("R", ["A", "B"]),
            [[1i64, 10], [1, 20], [2, 10]],
        )
        .unwrap();
        let idx = build_index(rel.iter(), &[0]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[&vec![Value::int(1)]].len(), 2);
        assert_eq!(idx[&vec![Value::int(2)]].len(), 1);
        assert!(!idx.contains_key(&vec![Value::int(3)]));
        let idx2 = build_index(rel.iter(), &[1, 0]);
        assert_eq!(idx2[&vec![Value::int(10), Value::int(1)]].len(), 1);
    }
}
