//! Lightweight tracing primitives: stage spans and log-linear latency
//! histograms.
//!
//! The observability layer threads two small value types through the
//! request path:
//!
//! * [`Span`] — one named, timed stage of a request (`parse`, `plan`,
//!   `execute`, …), in microseconds of monotonic-clock time;
//! * [`Histogram`] — an HDR-style **log-linear** histogram: each power
//!   of two is split into [`SUB_BUCKETS`] equal-width sub-buckets, so
//!   relative error is bounded (≤ 25% of the value) at every scale from
//!   1 µs to `u64::MAX` while the whole histogram stays a few hundred
//!   counters. Values 0–3 get exact buckets.
//!
//! Histograms support the same `accumulate`/`since` merge algebra as the
//! engine's session counters: `accumulate` folds another histogram in
//! bucket-wise, and `since(base)` recovers the interval delta — the two
//! are exact inverses, which is what lets per-session histograms be
//! merged into a server-wide registry and windowed snapshots be computed
//! by subtraction (see the inverse-roundtrip test below).

/// Sub-buckets per power-of-two octave (4 → ≤ 25% relative error).
pub const SUB_BUCKETS: u64 = 4;

/// Highest bucket index a `u64` value can map to (see [`bucket_index`]).
const MAX_INDEX: usize = 251;

/// One timed stage of a request, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`parse`, `plan`, `execute`, `render`, `serialize`).
    pub stage: &'static str,
    /// Monotonic-clock duration of the stage, in microseconds.
    pub micros: u64,
}

impl Span {
    /// A named span of `micros` microseconds.
    pub fn new(stage: &'static str, micros: u64) -> Self {
        Span { stage, micros }
    }
}

/// Maps a value to its log-linear bucket index.
///
/// Values 0–3 map to exact buckets 0–3; from there each octave `[2^e,
/// 2^(e+1))` is split into 4 equal sub-buckets, so index = `(e-2)*4 + 4 +
/// sub`. The scheme is monotone and gap-free: bucket `i`'s range ends
/// exactly where bucket `i+1`'s begins.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64;
    let sub = (v >> (exp - 2)) & (SUB_BUCKETS - 1);
    ((exp - 2) * SUB_BUCKETS + SUB_BUCKETS + sub) as usize
}

/// Lowest value that maps to bucket `index` (inverse of [`bucket_index`]).
fn bucket_floor(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let octave = (index - SUB_BUCKETS as usize) as u64 / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS as usize) as u64 % SUB_BUCKETS;
    (SUB_BUCKETS << octave) + (sub << octave)
}

/// Highest value that maps to bucket `index` (the Prometheus `le` bound).
fn bucket_ceil(index: usize) -> u64 {
    if index >= MAX_INDEX {
        return u64::MAX;
    }
    bucket_floor(index + 1) - 1
}

/// A log-linear latency histogram with bounded relative error.
///
/// Buckets grow on demand, so an idle histogram is a handful of bytes
/// and even a fully populated one is ~2 KiB. All merge operations are
/// bucket-wise, making [`accumulate`](Histogram::accumulate) and
/// [`since`](Histogram::since) exact inverses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` bucket-wise (the histogram analogue of
    /// `SessionStats::accumulate`).
    pub fn accumulate(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The interval delta `self − base` (the histogram analogue of
    /// `SessionStats::since`): exact inverse of
    /// [`accumulate`](Histogram::accumulate).
    pub fn since(&self, base: &Histogram) -> Histogram {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c - base.buckets.get(i).copied().unwrap_or(0))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        Histogram {
            buckets,
            count: self.count - base.count,
            sum: self.sum.saturating_sub(base.sum),
        }
    }

    /// Estimate of the `p`-th percentile (`p` is a fraction, 0.0–1.0;
    /// out-of-range values are clamped). The rank-`⌈p·count⌉`
    /// observation's bucket is located, then the estimate interpolates
    /// linearly between the bucket's edges by the rank's position
    /// inside it — without interpolation every rank in a bucket reports
    /// the same upper edge, which collapses p50/p95/p99 onto one value
    /// whenever a histogram holds only a handful of samples. Never
    /// exceeds the observation sum (so a single sample is reported
    /// exactly). 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Ranks (seen−c, seen] live here; rank's position is
                // `pos` of `c`. 128-bit keeps the top bucket's span
                // (≈ 2^62) from overflowing the multiply.
                let pos = rank - (seen - c);
                let floor = bucket_floor(i);
                let span = (bucket_ceil(i) - floor) as u128;
                let interp = floor + (span * pos as u128 / c as u128) as u64;
                return interp.min(self.sum);
            }
        }
        bucket_ceil(self.buckets.len().saturating_sub(1))
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Iterates the non-empty buckets as `(upper_bound, count)` pairs in
    /// increasing bound order — the raw material for Prometheus-style
    /// cumulative `le` rendering (the `+Inf` bucket is implicit: its
    /// cumulative count is [`count`](Histogram::count)).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_ceil(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_gap_free() {
        // Every bucket's range must end exactly where the next begins.
        for i in 0..MAX_INDEX {
            assert_eq!(
                bucket_ceil(i) + 1,
                bucket_floor(i + 1),
                "gap between buckets {i} and {}",
                i + 1
            );
        }
        // index(floor) and index(ceil) both land back in the bucket.
        for i in 0..=MAX_INDEX {
            assert_eq!(bucket_index(bucket_floor(i)), i);
            assert_eq!(bucket_index(bucket_ceil(i)), i);
        }
        assert_eq!(bucket_index(u64::MAX), MAX_INDEX);
        // Relative error bound: the bucket holding v spans ≤ 25% of v.
        for v in [5u64, 100, 1_000, 123_456, 10_000_000_000] {
            let i = bucket_index(v);
            assert!(bucket_floor(i) <= v && v <= bucket_ceil(i));
            assert!(bucket_ceil(i) - bucket_floor(i) <= v / 4 + 1);
        }
    }

    #[test]
    fn record_count_sum_percentile() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.mean(), 50);
        // Log-linear: percentile is an upper bound within 25% of exact.
        let p50 = h.percentile(0.50);
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(0.99);
        assert!((99..=127).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(1.0), h.percentile(0.999));
    }

    /// Satellite: a handful of identical samples must not collapse
    /// p50 onto p99 — percentile interpolates within the bucket instead
    /// of reporting its ceiling for every rank it contains.
    #[test]
    fn percentiles_interpolate_within_a_bucket() {
        let mut h = Histogram::new();
        for _ in 0..3 {
            h.record(1000);
        }
        let (p50, p99) = (h.percentile(0.50), h.percentile(0.99));
        assert!(p50 < p99, "p50 {p50} must not collapse onto p99 {p99}");
        // Both estimates stay inside the recording bucket [896, 1023].
        assert!((896..=1023).contains(&p50), "p50 = {p50}");
        assert!((896..=1023).contains(&p99), "p99 = {p99}");
        // A single observation is reported exactly: the interpolated
        // edge is clamped by the observation sum.
        let mut one = Histogram::new();
        one.record(1000);
        assert_eq!(one.percentile(0.5), 1000);
        // A caller passing percent points instead of a fraction gets
        // the clamped maximum, not an arbitrary rank.
        assert_eq!(h.percentile(99.0), h.percentile(1.0));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 1), (3, 1)]);
    }

    /// Satellite: `accumulate`/`since` are exact inverses, mirroring the
    /// `SessionStats` counter-parity tests — merging a delta in and
    /// subtracting the base back out recovers the delta bit-for-bit.
    #[test]
    fn accumulate_since_inverse_roundtrip() {
        let mut a = Histogram::new();
        for v in [3u64, 17, 900, 900, 1_000_000] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [1u64, 17, 40_000] {
            b.record(v);
        }
        let mut total = a.clone();
        total.accumulate(&b);
        assert_eq!(total.count(), a.count() + b.count());
        assert_eq!(total.since(&a), b, "total − a must recover b");
        assert_eq!(total.since(&b), a, "total − b must recover a");
        assert_eq!(total.since(&total), Histogram::new());
        // And the window survives further accumulation on top.
        let mut later = total.clone();
        later.record(123);
        let window = later.since(&total);
        assert_eq!(window.count(), 1);
        assert_eq!(window.sum(), 123);
    }

    #[test]
    fn nonzero_bucket_counts_sum_to_total() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 5, 77, 4096, u64::MAX] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, h.count());
        // Bounds strictly increase (required for cumulative `le` output).
        let bounds: Vec<u64> = h.nonzero_buckets().map(|(le, _)| le).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }
}
