//! String interning: the per-database symbol table.
//!
//! `Value::Str(String)` used to travel inside every stored tuple, so each
//! join probe, projection, and `BTreeSet` insert cloned heap strings. The
//! runtime representation now stores [`Value::Sym`](crate::Value::Sym) —
//! a `u32` handle into a [`SymbolTable`] owned by the
//! [`Database`](crate::Database) — and resolves back to text only at the
//! edges (parsing, printing, fixture/CSV import, wire encoding).
//!
//! The table is **append-only**: an id, once handed out, never changes
//! meaning, so epochs that share a table via `Arc` (incremental loads,
//! in-flight snapshots) stay consistent while new strings are interned
//! concurrently. Interior mutability is an `RwLock`; the hot paths
//! (evaluation) only ever *resolve*, which takes the read lock.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// An append-only, thread-safe string ↔ `u32` interner.
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    /// id → string. `Arc<str>` so `resolve` is a refcount bump, not a copy.
    strings: Vec<Arc<str>>,
    /// string → id.
    ids: HashMap<Arc<str>, u32>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable {
            inner: RwLock::new(Inner::default()),
        }
    }

    /// Interns `s`, returning its id (existing or freshly assigned).
    pub fn intern(&self, s: &str) -> u32 {
        if let Some(id) = self.lookup(s) {
            return id;
        }
        let mut inner = self.inner.write().expect("symbol table lock");
        // Double-check under the write lock: another thread may have
        // interned the same string between our read and write.
        if let Some(&id) = inner.ids.get(s) {
            return id;
        }
        let id = u32::try_from(inner.strings.len()).expect("symbol table overflow (> u32::MAX)");
        let shared: Arc<str> = Arc::from(s);
        inner.strings.push(shared.clone());
        inner.ids.insert(shared, id);
        id
    }

    /// The id of `s`, if it has been interned.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.inner
            .read()
            .expect("symbol table lock")
            .ids
            .get(s)
            .copied()
    }

    /// The string behind `id`, if the id was handed out by this table.
    pub fn try_resolve(&self, id: u32) -> Option<Arc<str>> {
        self.inner
            .read()
            .expect("symbol table lock")
            .strings
            .get(id as usize)
            .cloned()
    }

    /// The string behind `id`.
    ///
    /// # Panics
    /// If `id` was not handed out by this table — symbols never cross
    /// tables, so this indicates a bug in the caller.
    pub fn resolve(&self, id: u32) -> Arc<str> {
        self.try_resolve(id)
            .unwrap_or_else(|| panic!("symbol id {id} not in this table"))
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().expect("symbol table lock").strings.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        SymbolTable::new()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolTable({} symbols)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let t = SymbolTable::new();
        let a = t.intern("red");
        let b = t.intern("green");
        assert_eq!(t.intern("red"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(&*t.resolve(a), "red");
        assert_eq!(&*t.resolve(b), "green");
        assert_eq!(t.lookup("green"), Some(b));
        assert_eq!(t.lookup("blue"), None);
        assert_eq!(t.try_resolve(99), None);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let t = Arc::new(SymbolTable::new());
        let handles: Vec<_> = (0..8)
            .map(|k| {
                let t = t.clone();
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| t.intern(&format!("s{}", (i + k) % 50)))
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 50);
        // Every string maps to exactly one id and back.
        for i in 0..50 {
            let s = format!("s{i}");
            let id = t.lookup(&s).unwrap();
            assert_eq!(&*t.resolve(id), s.as_str());
        }
    }
}
