//! The vectorized batch executor: the chunked, columnar fast path under
//! [`exec::execute`](crate::exec::execute).
//!
//! Where the tuple executor walks a pipeline one row at a time through a
//! recursive callback chain, this module materializes each scanned
//! relation once into column vectors ([`RelData`]), drives the pipeline
//! over batches of row ids ([`Batch`]) seeded in fixed-size chunks of
//! [`CHUNK_ROWS`] rows, evaluates filters and comparisons over whole
//! batches with selection vectors, and probes joins through a
//! [`JoinTable`] — a direct-indexed dense array when every key column is
//! interned symbols (or integers) with a small live range, a hash map
//! otherwise.
//!
//! The plan IR, the four language lowerings, and the plan cache are
//! untouched: [`run_query`], [`run_rule`], and [`run_ops`] are drop-in
//! replacements for their tuple-at-a-time counterparts in
//! [`exec`](crate::exec), dispatched per plan (or per rule) by the
//! batchability predicates there. Plans with lazy-error terms
//! (`Unbound`/`Wildcard`) never reach this module — their
//! data-dependent failure semantics stay pinned by the row-at-a-time
//! path. Deferred head-validation conjuncts batch: head-column
//! references rewrite to the head's defining terms, turning the tuple
//! path's per-candidate environment re-entry into ordinary batch
//! filters.
//!
//! Quantifiers are *loop-inverted and grouped*: an `Exists` block first
//! groups the outer rows by the few outer columns its subtree actually
//! reads (rows agreeing there share one verdict), then runs its scans
//! once over the batch of group representatives, each in-flight row
//! carrying the group it is proving; as soon as some full assignment
//! satisfies a group, it is marked and its remaining work is pruned at
//! the next step/chunk boundary.

use crate::database::{Database, Relation, Tuple};
use crate::error::CoreResult;
use crate::exec::{
    bump_n, eval_cond, record, record_build, Block, Formula, IdbMap, OpNode, Pred, QueryPlan,
    RulePlan, Scan, TallyMap, Term,
};
use crate::symbol::SymbolTable;
use crate::value::Value;
use crate::CmpOp;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;

/// Rows per seed chunk: unkeyed scans feed the pipeline in column
/// chunks of this many rows, bounding working-set size independently of
/// relation cardinality.
pub const CHUNK_ROWS: usize = 1024;

/// Hard ceiling on a dense join table's slot count.
const DENSE_MAX_CAPACITY: u64 = 1 << 20;

// ---------------------------------------------------------------------
// Columnar relation data
// ---------------------------------------------------------------------

/// A relation materialized column-major: `cols[c][r]` is row `r`'s value
/// in column `c`. Built once per execution (or once per program, via
/// [`RelCache`]) and shared by `Rc` into every batch step that scans it.
pub(crate) struct RelData {
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl RelData {
    fn from_tuples<'a>(tuples: impl Iterator<Item = &'a Tuple>, arity: usize) -> RelData {
        let mut cols: Vec<Vec<Value>> = vec![Vec::new(); arity];
        let mut len = 0;
        for t in tuples {
            for (c, v) in t.iter().enumerate() {
                cols[c].push(v.clone());
            }
            len += 1;
        }
        RelData { cols, len }
    }

    fn from_relation(rel: &Relation) -> RelData {
        let arity = rel.schema().arity();
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(rel.len()); arity];
        for chunk in rel.column_chunks(CHUNK_ROWS) {
            for (c, col) in chunk.into_iter().enumerate() {
                cols[c].extend(col);
            }
        }
        RelData {
            cols,
            len: rel.len(),
        }
    }

    #[inline]
    fn value(&self, col: usize, row: u32) -> &Value {
        &self.cols[col][row as usize]
    }
}

/// Columnar materializations shared across one program execution
/// (sound because EDB tables are immutable for the execution and a
/// computed IDB never changes once its stratum completes). Keys are
/// prefixed by source (`e:`/`i:`) so an IDB shadowing a same-named EDB
/// table mid-program can never serve stale data.
#[derive(Default)]
pub(crate) struct RelCache {
    map: HashMap<String, Rc<RelData>>,
}

// ---------------------------------------------------------------------
// Join tables: dense direct-index or hash
// ---------------------------------------------------------------------

/// A build-side join table mapping key-column values to matching row
/// ids.
///
/// When every key column holds a single scalar kind (all `Int` or all
/// `Sym`) whose live range is small — the common case for interned
/// symbol columns, whose `u32` ids are allocated densely — the table is
/// a direct-indexed CSR array: probing is subtraction, multiplication,
/// and one slice lookup, no hashing. Otherwise it falls back to a
/// `HashMap` keyed by the value vector (the same shape the tuple path's
/// [`plan::build_index`](crate::plan::build_index) uses).
enum JoinTable {
    Dense {
        /// Per key column: the dense-kind tag ([`Value::as_dense_key`]).
        kinds: Vec<u8>,
        /// Per key column: the smallest encoded key.
        mins: Vec<i64>,
        /// Per key column: `max - min + 1`.
        spans: Vec<u64>,
        /// CSR offsets: slot `i`'s rows live at `rows[starts[i]..starts[i+1]]`.
        starts: Vec<u32>,
        /// Row ids, grouped by slot.
        rows: Vec<u32>,
    },
    Hash(HashMap<Vec<Value>, Vec<u32>>),
}

static NO_ROWS: [u32; 0] = [];

impl JoinTable {
    /// Builds a table over `len` rows with `ncols` key columns, reading
    /// key values through `at(row, keycol)`.
    fn build<'a, F>(len: usize, ncols: usize, at: F) -> JoinTable
    where
        F: Fn(usize, usize) -> &'a Value,
    {
        // Pass 1: per-column kind uniformity and live range.
        let mut kinds = vec![0u8; ncols];
        let mut mins = vec![0i64; ncols];
        let mut maxs = vec![0i64; ncols];
        let mut dense_ok = len > 0 && ncols > 0;
        'scan: for c in 0..ncols {
            for r in 0..len {
                match at(r, c).as_dense_key() {
                    Some((kind, code)) => {
                        if r == 0 {
                            kinds[c] = kind;
                            mins[c] = code;
                            maxs[c] = code;
                        } else if kind != kinds[c] {
                            dense_ok = false;
                            break 'scan;
                        } else {
                            mins[c] = mins[c].min(code);
                            maxs[c] = maxs[c].max(code);
                        }
                    }
                    None => {
                        dense_ok = false;
                        break 'scan;
                    }
                }
            }
        }
        if dense_ok {
            let mut capacity = 1u128;
            let mut spans = vec![0u64; ncols];
            for c in 0..ncols {
                let span = (maxs[c] - mins[c]) as u128 + 1;
                spans[c] = span as u64;
                capacity = capacity.saturating_mul(span);
            }
            // Dense pays capacity slots of memory; keep it proportional
            // to the data (sparse id ranges fall back to hashing).
            if capacity <= DENSE_MAX_CAPACITY as u128 && capacity <= 8 * len as u128 + 1024 {
                let capacity = capacity as usize;
                let slot = |r: usize| {
                    let mut idx = 0usize;
                    for c in 0..ncols {
                        let (_, code) = at(r, c).as_dense_key().expect("pass 1 checked");
                        idx = idx * spans[c] as usize + (code - mins[c]) as usize;
                    }
                    idx
                };
                // Pass 2: counting sort into CSR layout.
                let mut starts = vec![0u32; capacity + 1];
                for r in 0..len {
                    starts[slot(r) + 1] += 1;
                }
                for i in 1..starts.len() {
                    starts[i] += starts[i - 1];
                }
                let mut rows = vec![0u32; len];
                let mut cursor = starts.clone();
                for r in 0..len {
                    let s = slot(r);
                    rows[cursor[s] as usize] = r as u32;
                    cursor[s] += 1;
                }
                return JoinTable::Dense {
                    kinds,
                    mins,
                    spans,
                    starts,
                    rows,
                };
            }
        }
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for r in 0..len {
            let key: Vec<Value> = (0..ncols).map(|c| at(r, c).clone()).collect();
            map.entry(key).or_default().push(r as u32);
        }
        JoinTable::Hash(map)
    }

    /// The row ids matching `key` (empty for misses, including keys of
    /// the wrong kind or outside the dense range — such values cannot
    /// equal any stored key).
    fn probe(&self, key: &[Value]) -> &[u32] {
        match self {
            JoinTable::Dense {
                kinds,
                mins,
                spans,
                starts,
                rows,
            } => {
                let mut idx = 0usize;
                for (c, v) in key.iter().enumerate() {
                    match v.as_dense_key() {
                        Some((kind, code)) if kind == kinds[c] => {
                            let off = code.wrapping_sub(mins[c]);
                            if off < 0 || off as u64 >= spans[c] {
                                return &NO_ROWS;
                            }
                            idx = idx * spans[c] as usize + off as usize;
                        }
                        _ => return &NO_ROWS,
                    }
                }
                &rows[starts[idx] as usize..starts[idx + 1] as usize]
            }
            JoinTable::Hash(map) => map.get(key).map(|v| v.as_slice()).unwrap_or(&NO_ROWS),
        }
    }

    /// Like [`JoinTable::probe`], reading the key through `at` instead
    /// of a materialized slice: the dense path never clones a value, and
    /// the hash path fills `scratch` (reused across calls, so a probe
    /// allocates only when the key outgrows the buffer).
    fn probe_with<'v>(
        &self,
        ncols: usize,
        at: impl Fn(usize) -> &'v Value,
        scratch: &mut Vec<Value>,
    ) -> &[u32] {
        match self {
            JoinTable::Dense {
                kinds,
                mins,
                spans,
                starts,
                rows,
            } => {
                let mut idx = 0usize;
                for c in 0..ncols {
                    match at(c).as_dense_key() {
                        Some((kind, code)) if kind == kinds[c] => {
                            let off = code.wrapping_sub(mins[c]);
                            if off < 0 || off as u64 >= spans[c] {
                                return &NO_ROWS;
                            }
                            idx = idx * spans[c] as usize + off as usize;
                        }
                        _ => return &NO_ROWS,
                    }
                }
                &rows[starts[idx] as usize..starts[idx + 1] as usize]
            }
            JoinTable::Hash(map) => {
                scratch.clear();
                scratch.extend((0..ncols).map(|c| at(c).clone()));
                map.get(scratch.as_slice())
                    .map(|v| v.as_slice())
                    .unwrap_or(&NO_ROWS)
            }
        }
    }

    /// The strategy label `explain analyze` reports.
    fn kind(&self) -> &'static str {
        match self {
            JoinTable::Dense { .. } => "dense-key",
            JoinTable::Hash(_) => "hash",
        }
    }
}

// ---------------------------------------------------------------------
// Quantifier grouping
// ---------------------------------------------------------------------

/// FNV-1a — a cheap non-cryptographic hasher for quantifier grouping,
/// where SipHash's per-call cost would rival the work being deduped.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
    }
    // Word-sized inputs fold in one multiply — the derived `Hash` for
    // `Value` emits a discriminant word plus a payload word, so hashing
    // a `Sym` or `Int` costs two multiplies instead of sixteen.
    fn write_u8(&mut self, n: u8) {
        self.0 = (self.0 ^ n as u64).wrapping_mul(Self::PRIME);
    }
    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ n as u64).wrapping_mul(Self::PRIME);
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(Self::PRIME);
    }
    fn write_usize(&mut self, n: usize) {
        self.0 = (self.0 ^ n as u64).wrapping_mul(Self::PRIME);
    }
    fn write_i64(&mut self, n: i64) {
        self.0 = (self.0 ^ n as u64).wrapping_mul(Self::PRIME);
    }
}

/// Open-addressed interner mapping each row's dependency-value
/// combination to a dense group id — no per-row allocation: values hash
/// in place and equality is verified against the group's representative
/// row.
struct Groups {
    mask: usize,
    slots: Vec<u32>,
    hashes: Vec<u64>,
}

impl Groups {
    fn new(n: usize) -> Groups {
        let cap = (2 * n).next_power_of_two().max(8);
        Groups {
            mask: cap - 1,
            slots: vec![u32::MAX; cap],
            hashes: Vec::new(),
        }
    }

    /// The group id of `row`, allocating a new group (with `row` as its
    /// representative) on first sight of its dep values.
    fn intern(
        &mut self,
        batch: &Batch,
        deps: &[(usize, usize)],
        row: usize,
        reps: &mut Vec<usize>,
    ) -> u32 {
        use std::hash::Hash;
        use std::hash::Hasher as _;
        let mut f = Fnv::default();
        for &(s, c) in deps {
            batch.value(s, c, row).hash(&mut f);
        }
        let h = f.finish();
        let mut i = h as usize & self.mask;
        loop {
            match self.slots[i] {
                u32::MAX => {
                    let g = reps.len() as u32;
                    self.slots[i] = g;
                    self.hashes.push(h);
                    reps.push(row);
                    return g;
                }
                g if self.hashes[g as usize] == h
                    && deps.iter().all(|&(s, c)| {
                        batch.value(s, c, row) == batch.value(s, c, reps[g as usize])
                    }) =>
                {
                    return g;
                }
                _ => i = (i + 1) & self.mask,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Batches and slot resolution
// ---------------------------------------------------------------------

/// A batch of in-flight pipeline rows in columnar form: one row-id
/// column per bound scan step, all the same length, plus the origin id
/// each row is proving (used by quantifier pruning; all zero at the top
/// level).
struct Batch {
    steps: Vec<StepRows>,
    origins: Vec<u32>,
}

/// One bound scan step of a batch: the scanned relation and, per batch
/// row, which of its rows is bound.
struct StepRows {
    rel: Rc<RelData>,
    rows: Vec<u32>,
}

impl Batch {
    /// The seed batch: one virtual row binding nothing (the unit of the
    /// cross product the pipeline builds up).
    fn unit() -> Batch {
        Batch {
            steps: Vec::new(),
            origins: vec![0],
        }
    }

    fn len(&self) -> usize {
        self.origins.len()
    }

    /// The batch restricted to row indices in `keep`.
    fn select(&self, keep: &[usize]) -> Batch {
        Batch {
            steps: self
                .steps
                .iter()
                .map(|s| StepRows {
                    rel: s.rel.clone(),
                    rows: keep.iter().map(|&i| s.rows[i]).collect(),
                })
                .collect(),
            origins: keep.iter().map(|&i| self.origins[i]).collect(),
        }
    }

    /// The value bound at `(step, col)` for batch row `i`.
    #[inline]
    fn value(&self, step: usize, col: usize, i: usize) -> &Value {
        let s = &self.steps[step];
        s.rel.value(col, s.rows[i])
    }
}

/// Where each environment slot's value lives in a batch: tuple slots map
/// to a step, value slots to a `(step, column)` pair. Mirrors the tuple
/// executor's `Env`, but holds coordinates instead of values — the
/// values stay in the shared columns.
struct SlotMap {
    tuple: Vec<usize>,
    value: Vec<(usize, usize)>,
}

const UNBOUND: usize = usize::MAX;

impl SlotMap {
    fn new(tuple_slots: usize, value_slots: usize) -> SlotMap {
        SlotMap {
            tuple: vec![UNBOUND; tuple_slots],
            value: vec![(UNBOUND, 0); value_slots],
        }
    }

    fn bind_scan(&mut self, scan: &Scan, step: usize) {
        if let Some(s) = scan.tuple_slot {
            self.tuple[s] = step;
        }
        for &(col, s) in &scan.bind_cols {
            self.value[s] = (step, col);
        }
    }

    fn unbind_scan(&mut self, scan: &Scan) {
        if let Some(s) = scan.tuple_slot {
            self.tuple[s] = UNBOUND;
        }
        for &(_, s) in &scan.bind_cols {
            self.value[s] = (UNBOUND, 0);
        }
    }
}

/// A term resolved against a [`SlotMap`]: either a constant or a batch
/// coordinate.
enum TermRef<'t> {
    Const(&'t Value),
    Col { step: usize, col: usize },
}

fn term_ref<'t>(t: &'t Term, sm: &SlotMap) -> TermRef<'t> {
    match t {
        Term::Const(v) => TermRef::Const(v),
        Term::Col { slot, col } => {
            let step = sm.tuple[*slot];
            debug_assert_ne!(step, UNBOUND, "terms attach only after their slot binds");
            TermRef::Col { step, col: *col }
        }
        Term::Var(s) => {
            let (step, col) = sm.value[*s];
            debug_assert_ne!(step, UNBOUND, "lowering only emits Var for bound slots");
            TermRef::Col { step, col }
        }
        Term::Unbound(_) | Term::Wildcard => {
            unreachable!("lazy-error terms never reach the batched path")
        }
    }
}

impl TermRef<'_> {
    #[inline]
    fn value<'b>(&'b self, batch: &'b Batch, i: usize) -> &'b Value {
        match self {
            TermRef::Const(v) => v,
            TermRef::Col { step, col } => batch.value(*step, *col, i),
        }
    }
}

// ---------------------------------------------------------------------
// Execution context
// ---------------------------------------------------------------------

/// Per-execution state of the batched pipeline driver: relation
/// materializations, lazily-built join tables (one slot per keyed scan
/// or negation probe, like the tuple path's `IndexCache`), and the
/// optional analyze tally.
struct BatchCtx<'d, 'c> {
    db: &'d Database,
    symbols: &'d SymbolTable,
    idbs: &'d IdbMap,
    cache: &'c mut RelCache,
    tables: Vec<Option<Rc<JoinTable>>>,
    tally: Option<TallyMap>,
}

impl<'d, 'c> BatchCtx<'d, 'c> {
    fn new(
        db: &'d Database,
        idbs: &'d IdbMap,
        n_indexes: usize,
        cache: &'c mut RelCache,
        tally: Option<TallyMap>,
    ) -> Self {
        BatchCtx {
            db,
            symbols: db.symbols(),
            idbs,
            cache,
            tables: vec![None; n_indexes],
            tally,
        }
    }

    /// The columnar materialization of `rel` (IDB shadows EDB, exactly
    /// like [`tuples_of`]), built on first use.
    fn rel_data(&mut self, rel: &str) -> CoreResult<Rc<RelData>> {
        let key = if self.idbs.contains_key(rel) {
            format!("i:{rel}")
        } else {
            format!("e:{rel}")
        };
        if let Some(data) = self.cache.map.get(&key) {
            return Ok(data.clone());
        }
        let data = match self.idbs.get(rel) {
            Some(rows) => {
                let arity = rows.iter().next().map(Tuple::arity).unwrap_or(0);
                Rc::new(RelData::from_tuples(rows.iter(), arity))
            }
            None => Rc::new(RelData::from_relation(self.db.require(rel)?)),
        };
        self.cache.map.insert(key, data.clone());
        Ok(data)
    }

    /// The join table in slot `id` over `rel`'s `cols`, built on first
    /// probe.
    fn table_for(&mut self, rel: &Rc<RelData>, cols: &[usize], id: usize) -> Rc<JoinTable> {
        if let Some(t) = &self.tables[id] {
            return t.clone();
        }
        let table = Rc::new(JoinTable::build(rel.len, cols.len(), |r, c| {
            rel.value(cols[c], r as u32)
        }));
        self.tables[id] = Some(table.clone());
        table
    }
}

// ---------------------------------------------------------------------
// The pipeline driver
// ---------------------------------------------------------------------

/// Where finished assignments go: collected by the caller at the top
/// level, or marking origins satisfied inside a quantifier (which also
/// prunes that origin's remaining work at the next step boundary).
enum Sink<'s> {
    Collect(&'s mut dyn FnMut(&Batch, &mut SlotMap, &mut BatchCtx) -> CoreResult<()>),
    Exists { satisfied: &'s mut [bool] },
}

impl Sink<'_> {
    #[inline]
    fn alive(&self, origin: u32) -> bool {
        match self {
            Sink::Collect(_) => true,
            Sink::Exists { satisfied } => !satisfied[origin as usize],
        }
    }

    fn emit(&mut self, batch: &Batch, sm: &mut SlotMap, ctx: &mut BatchCtx) -> CoreResult<()> {
        match self {
            Sink::Collect(f) => f(batch, sm, ctx),
            Sink::Exists { satisfied } => {
                for &o in &batch.origins {
                    satisfied[o as usize] = true;
                }
                Ok(())
            }
        }
    }
}

/// Drops rows whose origin is already satisfied (no-op batches pass
/// through untouched).
fn retain_alive(batch: Batch, sink: &Sink<'_>) -> Batch {
    if batch.origins.iter().all(|&o| sink.alive(o)) {
        return batch;
    }
    let keep: Vec<usize> = (0..batch.len())
        .filter(|&i| sink.alive(batch.origins[i]))
        .collect();
    batch.select(&keep)
}

/// Runs scans `si..` of a pipeline over `batch`, sending every full
/// assignment to `sink`.
fn run_scans(
    scans: &[Scan],
    si: usize,
    batch: Batch,
    sm: &mut SlotMap,
    ctx: &mut BatchCtx,
    sink: &mut Sink<'_>,
) -> CoreResult<()> {
    let batch = retain_alive(batch, sink);
    if batch.len() == 0 {
        return Ok(());
    }
    if si == scans.len() {
        return sink.emit(&batch, sm, ctx);
    }
    let scan = &scans[si];
    let rel = ctx.rel_data(&scan.rel)?;
    let step = batch.steps.len();
    if scan.is_keyed() {
        // Resolve key terms against the *outer* bindings, then bind this
        // scan's slots for the checks/filters below.
        let key_refs: Vec<TermRef> = scan.key_terms.iter().map(|t| term_ref(t, sm)).collect();
        let table = ctx.table_for(&rel, &scan.key_cols, scan.index_id);
        record_build(&mut ctx.tally, scan, table.kind());
        let mut nb = expand_empty(&batch, &rel);
        let mut key: Vec<Value> = Vec::with_capacity(key_refs.len());
        for i in 0..batch.len() {
            let rows = table.probe_with(key_refs.len(), |c| key_refs[c].value(&batch, i), &mut key);
            for &r in rows {
                push_expanded(&mut nb, &batch, i, r);
            }
        }
        sm.bind_scan(scan, step);
        descend(scans, si, nb, sm, ctx, sink)?;
    } else {
        sm.bind_scan(scan, step);
        // Full scan: cross the batch with the relation one chunk at a
        // time, re-checking origin liveness between chunks so satisfied
        // quantifier rows stop generating work. Existence checks start
        // with tiny chunks (rows decided by the relation's first few
        // tuples never touch the rest) and grow geometrically so a
        // scan-everything workload still amortizes to CHUNK_ROWS.
        let mut chunk = match sink {
            Sink::Exists { .. } => 4,
            Sink::Collect(_) => CHUNK_ROWS,
        };
        let mut start = 0usize;
        while start < rel.len {
            let end = (start + chunk).min(rel.len);
            chunk = (chunk * 2).min(CHUNK_ROWS);
            let alive: Vec<usize> = (0..batch.len())
                .filter(|&i| sink.alive(batch.origins[i]))
                .collect();
            if alive.is_empty() {
                break;
            }
            let mut nb = expand_empty(&batch, &rel);
            for &i in &alive {
                for r in start..end {
                    push_expanded(&mut nb, &batch, i, r as u32);
                }
            }
            descend(scans, si, nb, sm, ctx, sink)?;
            start = end;
        }
    }
    sm.unbind_scan(scan);
    Ok(())
}

/// An empty batch shaped like `base` plus one new step scanning `rel`.
fn expand_empty(base: &Batch, rel: &Rc<RelData>) -> Batch {
    let mut steps: Vec<StepRows> = base
        .steps
        .iter()
        .map(|s| StepRows {
            rel: s.rel.clone(),
            rows: Vec::new(),
        })
        .collect();
    steps.push(StepRows {
        rel: rel.clone(),
        rows: Vec::new(),
    });
    Batch {
        steps,
        origins: Vec::new(),
    }
}

/// Appends base row `i` extended with new-step row `r` to `nb`.
#[inline]
fn push_expanded(nb: &mut Batch, base: &Batch, i: usize, r: u32) {
    let last = nb.steps.len() - 1;
    for (s, col) in nb.steps[..last].iter_mut().enumerate() {
        col.rows.push(base.steps[s].rows[i]);
    }
    nb.steps[last].rows.push(r);
    nb.origins.push(base.origins[i]);
}

/// Applies scan `si`'s intra-tuple checks and filters to the expanded
/// batch, tallies the survivors, and recurses into the next scan.
fn descend(
    scans: &[Scan],
    si: usize,
    nb: Batch,
    sm: &mut SlotMap,
    ctx: &mut BatchCtx,
    sink: &mut Sink<'_>,
) -> CoreResult<()> {
    let scan = &scans[si];
    let step = nb.steps.len() - 1;
    if scan.check_cols.is_empty() && scan.filters.is_empty() {
        // Nothing to verify: every expanded row survives.
        bump_n(&mut ctx.tally, scan, nb.len());
        return run_scans(scans, si + 1, nb, sm, ctx, sink);
    }
    let mut mask = vec![true; nb.len()];
    // Repeated variables inside one atom: column equals earlier-bound
    // column of the same step.
    for &(col, s) in &scan.check_cols {
        let (vstep, vcol) = sm.value[s];
        for (i, m) in mask.iter_mut().enumerate() {
            if *m && nb.value(step, col, i) != nb.value(vstep, vcol, i) {
                *m = false;
            }
        }
    }
    let mut sel: Vec<usize> = (0..nb.len()).filter(|&i| mask[i]).collect();
    for f in &scan.filters {
        if sel.is_empty() {
            break;
        }
        let fm = eval_mask(f, &nb, &sel, sm, ctx)?;
        sel = sel
            .into_iter()
            .zip(&fm)
            .filter_map(|(i, &ok)| ok.then_some(i))
            .collect();
    }
    if sel.is_empty() {
        return Ok(());
    }
    bump_n(&mut ctx.tally, scan, sel.len());
    let survivors = if sel.len() == nb.len() {
        nb
    } else {
        nb.select(&sel)
    };
    run_scans(scans, si + 1, survivors, sm, ctx, sink)
}

// ---------------------------------------------------------------------
// Vectorized formula evaluation
// ---------------------------------------------------------------------

/// Evaluates `f` for the batch rows in `sel`, returning one truth value
/// per selected row. Conjunctions and disjunctions refine the selection
/// as they go (a row decided by an earlier operand is never evaluated by
/// a later one), matching the tuple path's per-row short-circuit.
fn eval_mask(
    f: &Formula,
    batch: &Batch,
    sel: &[usize],
    sm: &mut SlotMap,
    ctx: &mut BatchCtx,
) -> CoreResult<Vec<bool>> {
    match f {
        Formula::And(fs) => {
            let mut mask = vec![true; sel.len()];
            for sub in fs {
                let live: Vec<usize> = sel
                    .iter()
                    .zip(&mask)
                    .filter_map(|(&i, &m)| m.then_some(i))
                    .collect();
                if live.is_empty() {
                    break;
                }
                let sub_mask = eval_mask(sub, batch, &live, sm, ctx)?;
                let mut it = sub_mask.iter();
                for m in mask.iter_mut().filter(|m| **m) {
                    *m = *it.next().expect("one verdict per live row");
                }
            }
            Ok(mask)
        }
        Formula::Or(fs) => {
            let mut mask = vec![false; sel.len()];
            for sub in fs {
                let live: Vec<usize> = sel
                    .iter()
                    .zip(&mask)
                    .filter_map(|(&i, &m)| (!m).then_some(i))
                    .collect();
                if live.is_empty() {
                    break;
                }
                let sub_mask = eval_mask(sub, batch, &live, sm, ctx)?;
                let mut it = sub_mask.iter();
                for m in mask.iter_mut().filter(|m| !**m) {
                    *m = *it.next().expect("one verdict per live row");
                }
            }
            Ok(mask)
        }
        Formula::Not(sub) => {
            let mut mask = eval_mask(sub, batch, sel, sm, ctx)?;
            for m in &mut mask {
                *m = !*m;
            }
            Ok(mask)
        }
        Formula::Pred(p) => {
            let l = term_ref(&p.left, sm);
            let r = term_ref(&p.right, sm);
            Ok(sel
                .iter()
                .map(|&i| {
                    p.op.eval_resolved(l.value(batch, i), r.value(batch, i), ctx.symbols)
                })
                .collect())
        }
        Formula::NegProbe {
            rel,
            cols,
            terms,
            index_id,
        } => {
            if cols.is_empty() {
                // `not P(_ …)`: one emptiness check answers every row.
                let empty = match ctx.idbs.get(rel) {
                    Some(rows) => rows.is_empty(),
                    None => ctx.db.require(rel)?.is_empty(),
                };
                return Ok(vec![empty; sel.len()]);
            }
            let data = ctx.rel_data(rel)?;
            let table = ctx.table_for(&data, cols, *index_id);
            record_build(&mut ctx.tally, f, table.kind());
            let key_refs: Vec<TermRef> = terms.iter().map(|t| term_ref(t, sm)).collect();
            let mut key: Vec<Value> = Vec::with_capacity(key_refs.len());
            Ok(sel
                .iter()
                .map(|&i| {
                    table
                        .probe_with(key_refs.len(), |c| key_refs[c].value(batch, i), &mut key)
                        .is_empty()
                })
                .collect())
        }
        Formula::Exists(block) => {
            let mut satisfied = vec![false; sel.len()];
            // Pre-scan conjuncts of the block constrain the outer rows.
            let mut live: Vec<usize> = (0..sel.len()).collect();
            for pre in &block.pre {
                if live.is_empty() {
                    break;
                }
                let live_rows: Vec<usize> = live.iter().map(|&p| sel[p]).collect();
                let pm = eval_mask(pre, batch, &live_rows, sm, ctx)?;
                live = live
                    .into_iter()
                    .zip(&pm)
                    .filter_map(|(p, &ok)| ok.then_some(p))
                    .collect();
            }
            if block.scans.is_empty() {
                for &p in &live {
                    satisfied[p] = true;
                }
                return Ok(satisfied);
            }
            if !live.is_empty() {
                // A single keyed probe with no residual checks answers
                // existence in O(1) per row — probe the join table
                // directly instead of seeding the scan machinery (no
                // batch clone, no match materialization, no grouping).
                let cheap = block.scans.len() == 1
                    && block.scans[0].is_keyed()
                    && block.scans[0].filters.is_empty()
                    && block.scans[0].check_cols.is_empty();
                if cheap {
                    let scan = &block.scans[0];
                    let rel = ctx.rel_data(&scan.rel)?;
                    let key_refs: Vec<TermRef> =
                        scan.key_terms.iter().map(|t| term_ref(t, sm)).collect();
                    let table = ctx.table_for(&rel, &scan.key_cols, scan.index_id);
                    record_build(&mut ctx.tally, scan, table.kind());
                    let mut key: Vec<Value> = Vec::with_capacity(key_refs.len());
                    let mut hits = 0usize;
                    for &p in &live {
                        let i = sel[p];
                        let rows = table.probe_with(
                            key_refs.len(),
                            |c| key_refs[c].value(batch, i),
                            &mut key,
                        );
                        hits += rows.len();
                        satisfied[p] = !rows.is_empty();
                    }
                    bump_n(&mut ctx.tally, scan, hits);
                    return Ok(satisfied);
                }
                // Loop inversion, with one twist: the quantified subtree
                // reads only a handful of outer columns (`deps`), so
                // rows agreeing on them share one verdict. Grouping the
                // live rows by their dep values and running the scans
                // once per *group* turns O(rows × inner) quantifier work
                // into O(distinct bindings × inner) — the batched
                // counterpart of the tuple path's per-row short-circuit.
                let mut deps: Vec<(usize, usize)> = Vec::new();
                block_deps(block, sm, &mut deps);
                deps.sort_unstable();
                deps.dedup();
                let mut groups = Groups::new(live.len());
                let mut group_of: Vec<u32> = Vec::with_capacity(live.len());
                let mut reps: Vec<usize> = Vec::new();
                for &p in &live {
                    group_of.push(groups.intern(batch, &deps, sel[p], &mut reps));
                }
                let mut sat_groups = vec![false; reps.len()];
                let mut seed = batch.select(&reps);
                seed.origins = (0..reps.len() as u32).collect();
                let mut sink = Sink::Exists {
                    satisfied: &mut sat_groups,
                };
                run_scans(&block.scans, 0, seed, sm, ctx, &mut sink)?;
                for (k, &p) in live.iter().enumerate() {
                    satisfied[p] = sat_groups[group_of[k] as usize];
                }
            }
            Ok(satisfied)
        }
    }
}

// ---------------------------------------------------------------------
// Quantifier dependency analysis
// ---------------------------------------------------------------------

/// Records the batch coordinate `t` resolves to, if its slot is already
/// bound — i.e. bound *outside* the subtree under analysis. Slots the
/// subtree's own scans bind are still [`UNBOUND`] when this runs, so
/// they are correctly skipped.
fn term_deps(t: &Term, sm: &SlotMap, out: &mut Vec<(usize, usize)>) {
    match t {
        Term::Col { slot, col } => {
            let step = sm.tuple[*slot];
            if step != UNBOUND {
                out.push((step, *col));
            }
        }
        Term::Var(v) => {
            let (step, col) = sm.value[*v];
            if step != UNBOUND {
                out.push((step, col));
            }
        }
        Term::Const(_) | Term::Unbound(_) | Term::Wildcard => {}
    }
}

/// Collects every outer-bound batch coordinate `f` can read.
fn formula_deps(f: &Formula, sm: &SlotMap, out: &mut Vec<(usize, usize)>) {
    match f {
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                formula_deps(sub, sm, out);
            }
        }
        Formula::Not(sub) => formula_deps(sub, sm, out),
        Formula::Pred(p) => {
            term_deps(&p.left, sm, out);
            term_deps(&p.right, sm, out);
        }
        Formula::NegProbe { terms, .. } => {
            for t in terms {
                term_deps(t, sm, out);
            }
        }
        Formula::Exists(block) => block_deps(block, sm, out),
    }
}

/// Collects every outer-bound batch coordinate the block's subtree can
/// read: pre conjuncts, scan keys, intra-scan checks, and filters.
fn block_deps(block: &Block, sm: &SlotMap, out: &mut Vec<(usize, usize)>) {
    for pre in &block.pre {
        formula_deps(pre, sm, out);
    }
    for scan in &block.scans {
        for t in &scan.key_terms {
            term_deps(t, sm, out);
        }
        for &(_, s) in &scan.check_cols {
            let (step, col) = sm.value[s];
            if step != UNBOUND {
                out.push((step, col));
            }
        }
        for f in &scan.filters {
            formula_deps(f, sm, out);
        }
    }
}

// ---------------------------------------------------------------------
// Entry points: pipelines
// ---------------------------------------------------------------------

/// Runs a pipeline block end to end, handing every surviving batch of
/// full assignments to `emit`.
fn run_pipeline(
    block: &Block,
    tuple_slots: usize,
    value_slots: usize,
    ctx: &mut BatchCtx,
    emit: &mut dyn FnMut(&Batch, &mut SlotMap, &mut BatchCtx) -> CoreResult<()>,
) -> CoreResult<()> {
    let mut sm = SlotMap::new(tuple_slots, value_slots);
    let seed = Batch::unit();
    for pre in &block.pre {
        let mask = eval_mask(pre, &seed, &[0], &mut sm, ctx)?;
        if !mask[0] {
            return Ok(());
        }
    }
    let mut sink = Sink::Collect(emit);
    run_scans(&block.scans, 0, seed, &mut sm, ctx, &mut sink)
}

/// `t` with references to the output head's columns replaced by the
/// head's defining terms: column `c` of the head tuple *is* `defs[c]`
/// evaluated on the same assignment, so the substitution is exact.
fn subst_term(t: &Term, head_slot: usize, defs: &[Term]) -> Term {
    match t {
        Term::Col { slot, col } if *slot == head_slot => defs[*col].clone(),
        _ => t.clone(),
    }
}

fn subst_formula(f: &Formula, head_slot: usize, defs: &[Term]) -> Formula {
    let sub = |f: &Formula| subst_formula(f, head_slot, defs);
    let term = |t: &Term| subst_term(t, head_slot, defs);
    match f {
        Formula::And(fs) => Formula::And(fs.iter().map(sub).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(sub).collect()),
        Formula::Not(f) => Formula::Not(Box::new(sub(f))),
        Formula::Pred(p) => Formula::Pred(Pred {
            left: term(&p.left),
            op: p.op,
            right: term(&p.right),
        }),
        Formula::NegProbe {
            rel,
            cols,
            terms,
            index_id,
        } => Formula::NegProbe {
            rel: rel.clone(),
            cols: cols.clone(),
            terms: terms.iter().map(term).collect(),
            index_id: *index_id,
        },
        Formula::Exists(b) => Formula::Exists(Block {
            pre: b.pre.iter().map(sub).collect(),
            scans: b
                .scans
                .iter()
                .map(|s| Scan {
                    key_terms: s.key_terms.iter().map(term).collect(),
                    filters: s.filters.iter().map(sub).collect(),
                    ..s.clone()
                })
                .collect(),
        }),
    }
}

/// A conjunct the head substitution made vacuous: `x = x` holds for
/// every row (values are `Int`/`Sym`/`Str`, so equality is reflexive),
/// which is what the common `q.A = r.A` head-defining pattern becomes
/// once head columns are rewritten to their defining terms.
fn trivially_true(f: &Formula) -> bool {
    match f {
        Formula::Pred(p) => p.op == CmpOp::Eq && p.left == p.right,
        Formula::And(fs) => fs.iter().all(trivially_true),
        _ => false,
    }
}

/// Batched [`exec::run_query`](crate::exec::run_query): executes one
/// query branch over column chunks. Callers guarantee
/// [`query_batchable`](crate::exec::execute) held.
pub(crate) fn run_query(
    q: &QueryPlan,
    db: &Database,
    tally: &mut Option<TallyMap>,
) -> CoreResult<Relation> {
    let idbs = IdbMap::new();
    let mut cache = RelCache::default();
    let mut ctx = BatchCtx::new(db, &idbs, q.shape.indexes, &mut cache, tally.take());
    let mut out = db.fresh_relation(q.out.clone());
    // Deferred head validation, vectorized: instead of re-entering the
    // environment with each candidate tuple bound (the tuple path's
    // `venv`), rewrite head-column references to the head's defining
    // terms once and run the deferred conjuncts as ordinary
    // selection-refining filters over the whole batch.
    let deferred: Vec<Formula> = q
        .deferred
        .iter()
        .map(|f| subst_formula(f, q.head_slot, &q.defs))
        .filter(|f| !trivially_true(f))
        .collect();
    // A shadow hash set dedups candidates before touching the ordered
    // output set: duplicate-heavy projections pay one (FNV) hash lookup
    // per row instead of an allocation plus a B-tree descent.
    let mut seen: HashSet<Vec<Value>, std::hash::BuildHasherDefault<Fnv>> = HashSet::default();
    let mut scratch: Vec<Value> = Vec::with_capacity(q.defs.len());
    let result = run_pipeline(
        &q.root,
        q.shape.tuple_slots,
        q.shape.value_slots,
        &mut ctx,
        &mut |batch, sm, ctx| {
            let defs: Vec<TermRef> = q.defs.iter().map(|t| term_ref(t, sm)).collect();
            let mut project = |batch: &Batch, i: usize| -> CoreResult<()> {
                scratch.clear();
                scratch.extend(defs.iter().map(|d| d.value(batch, i).clone()));
                if !seen.contains(&scratch) {
                    seen.insert(scratch.clone());
                    out.insert(Tuple(scratch.clone()))?;
                }
                Ok(())
            };
            if deferred.is_empty() {
                for i in 0..batch.len() {
                    project(batch, i)?;
                }
                return Ok(());
            }
            let mut sel: Vec<usize> = (0..batch.len()).collect();
            for f in &deferred {
                if sel.is_empty() {
                    break;
                }
                let fm = eval_mask(f, batch, &sel, sm, ctx)?;
                sel = sel
                    .into_iter()
                    .zip(&fm)
                    .filter_map(|(i, &ok)| ok.then_some(i))
                    .collect();
            }
            for i in sel {
                project(batch, i)?;
            }
            Ok(())
        },
    );
    *tally = ctx.tally.take();
    result?;
    record(tally, q, out.len());
    Ok(out)
}

/// Batched [`run_rule`](crate::exec): executes one Datalog rule body,
/// returning head projections (duplicates included — the stratum dedups,
/// exactly like the tuple path).
pub(crate) fn run_rule(
    rule: &RulePlan,
    db: &Database,
    idbs: &IdbMap,
    tally: &mut Option<TallyMap>,
    cache: &mut RelCache,
) -> CoreResult<Vec<Tuple>> {
    let mut ctx = BatchCtx::new(db, idbs, rule.shape.indexes, cache, tally.take());
    let mut out: Vec<Tuple> = Vec::new();
    let result = run_pipeline(
        &rule.block,
        rule.shape.tuple_slots,
        rule.shape.value_slots,
        &mut ctx,
        &mut |batch, sm, _ctx| {
            let head: Vec<TermRef> = rule.head.iter().map(|t| term_ref(t, sm)).collect();
            for i in 0..batch.len() {
                out.push(Tuple(
                    head.iter().map(|d| d.value(batch, i).clone()).collect(),
                ));
            }
            Ok(())
        },
    );
    *tally = ctx.tally.take();
    result?;
    record(tally, rule, out.len());
    Ok(out)
}

// ---------------------------------------------------------------------
// Entry points: bulk operators
// ---------------------------------------------------------------------

/// Batched [`exec::run_ops`](crate::exec::run_ops): evaluates an RA\*
/// operator tree bottom-up over row vectors instead of `BTreeSet`s,
/// deduplicating only where duplicates can appear (projection, union) —
/// so every node's cardinality matches the tuple path's set sizes.
pub(crate) fn run_ops(
    op: &OpNode,
    db: &Database,
    tally: &mut Option<TallyMap>,
) -> CoreResult<BTreeSet<Tuple>> {
    let rows = eval_ops(op, db, tally)?;
    Ok(rows.into_iter().collect())
}

/// Hash-keyable equality column pairs plus the residual (non-equality)
/// checks of a theta-join.
type SplitChecks = (Vec<(usize, usize)>, Vec<(usize, CmpOp, usize)>);

/// Splits theta-join checks into the hash-keyable equalities and the
/// residual.
fn split_checks(checks: &[(usize, CmpOp, usize)]) -> SplitChecks {
    let eq = checks
        .iter()
        .filter(|(_, op, _)| *op == CmpOp::Eq)
        .map(|&(l, _, r)| (l, r))
        .collect();
    let residual = checks
        .iter()
        .filter(|(_, op, _)| *op != CmpOp::Eq)
        .copied()
        .collect();
    (eq, residual)
}

/// Probes `right` per left row through a [`JoinTable`] over the equality
/// key columns (dense-indexed when eligible), verifying residual checks
/// per candidate pair; falls back to a nested loop when no equality key
/// exists. `pair` receives every qualifying `(left_row, right_row)`.
fn join_pairs(
    node: &OpNode,
    left: &[Tuple],
    right: &[Tuple],
    checks: &[(usize, CmpOp, usize)],
    symbols: &SymbolTable,
    tally: &mut Option<TallyMap>,
    mut pair: impl FnMut(usize, usize),
) {
    let (eq, residual) = split_checks(checks);
    if eq.is_empty() {
        for (li, lt) in left.iter().enumerate() {
            for (ri, rt) in right.iter().enumerate() {
                if checks
                    .iter()
                    .all(|(lc, op, rc)| op.eval_resolved(lt.get(*lc), rt.get(*rc), symbols))
                {
                    pair(li, ri);
                }
            }
        }
        return;
    }
    let table = JoinTable::build(right.len(), eq.len(), |r, c| right[r].get(eq[c].1));
    record_build(tally, node, table.kind());
    let mut key: Vec<Value> = Vec::with_capacity(eq.len());
    for (li, lt) in left.iter().enumerate() {
        key.clear();
        key.extend(eq.iter().map(|&(lc, _)| lt.get(lc).clone()));
        for &ri in table.probe(&key) {
            let rt = &right[ri as usize];
            if residual
                .iter()
                .all(|(lc, op, rc)| op.eval_resolved(lt.get(*lc), rt.get(*rc), symbols))
            {
                pair(li, ri as usize);
            }
        }
    }
}

fn eval_ops(op: &OpNode, db: &Database, tally: &mut Option<TallyMap>) -> CoreResult<Vec<Tuple>> {
    let symbols = db.symbols();
    let rows = match op {
        OpNode::Table(name) => db.require(name)?.iter().cloned().collect(),
        OpNode::Project { cols, input } => {
            let inner = eval_ops(input, db, tally)?;
            let set: BTreeSet<Tuple> = inner.iter().map(|t| t.project(cols)).collect();
            set.into_iter().collect()
        }
        OpNode::Select { cond, input } => {
            let mut inner = eval_ops(input, db, tally)?;
            inner.retain(|t| eval_cond(cond, t, symbols));
            inner
        }
        OpNode::Product(l, r) => {
            let lv = eval_ops(l, db, tally)?;
            let rv = eval_ops(r, db, tally)?;
            let mut rows = Vec::with_capacity(lv.len().saturating_mul(rv.len()));
            for lt in &lv {
                for rt in &rv {
                    rows.push(lt.concat(rt));
                }
            }
            rows
        }
        OpNode::Join {
            checks,
            left,
            right,
        } => {
            let lv = eval_ops(left, db, tally)?;
            let rv = eval_ops(right, db, tally)?;
            let mut rows = Vec::new();
            join_pairs(op, &lv, &rv, checks, symbols, tally, |li, ri| {
                rows.push(lv[li].concat(&rv[ri]));
            });
            rows
        }
        OpNode::NaturalJoin {
            checks,
            keep_right,
            left,
            right,
        } => {
            let lv = eval_ops(left, db, tally)?;
            let rv = eval_ops(right, db, tally)?;
            let mut rows = Vec::new();
            join_pairs(op, &lv, &rv, checks, symbols, tally, |li, ri| {
                let mut row = lv[li].0.clone();
                row.extend(keep_right.iter().map(|&c| rv[ri].get(c).clone()));
                rows.push(Tuple(row));
            });
            rows
        }
        OpNode::Diff(l, r) => {
            let lv = eval_ops(l, db, tally)?;
            let rv = eval_ops(r, db, tally)?;
            let right: HashSet<&Tuple> = rv.iter().collect();
            lv.into_iter().filter(|t| !right.contains(t)).collect()
        }
        OpNode::Union(l, r) => {
            let lv = eval_ops(l, db, tally)?;
            let rv = eval_ops(r, db, tally)?;
            let set: BTreeSet<Tuple> = lv.into_iter().chain(rv).collect();
            set.into_iter().collect()
        }
        OpNode::Antijoin {
            checks,
            left,
            right,
        } => {
            let lv = eval_ops(left, db, tally)?;
            let rv = eval_ops(right, db, tally)?;
            let mut matched = vec![false; lv.len()];
            join_pairs(op, &lv, &rv, checks, symbols, tally, |li, _| {
                matched[li] = true;
            });
            lv.into_iter()
                .zip(&matched)
                .filter_map(|(t, &m)| (!m).then_some(t))
                .collect()
        }
    };
    record(tally, op, rows.len());
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn rel_data_of(rows: &[[i64; 2]]) -> RelData {
        let tuples: Vec<Tuple> = rows.iter().map(|r| Tuple::new(r.to_vec())).collect();
        RelData::from_tuples(tuples.iter(), 2)
    }

    #[test]
    fn dense_table_builds_for_small_int_ranges() {
        let data = rel_data_of(&[[1, 10], [2, 10], [1, 20], [3, 30]]);
        let table = JoinTable::build(data.len, 1, |r, _| data.value(0, r as u32));
        assert_eq!(table.kind(), "dense-key");
        assert_eq!(table.probe(&[Value::int(1)]).len(), 2);
        assert_eq!(table.probe(&[Value::int(3)]).len(), 1);
        assert!(table.probe(&[Value::int(99)]).is_empty());
        assert!(table.probe(&[Value::str("x")]).is_empty());
    }

    #[test]
    fn composite_dense_key_indexes_both_columns() {
        let data = rel_data_of(&[[1, 10], [2, 10], [1, 20]]);
        let table = JoinTable::build(data.len, 2, |r, c| data.value(c, r as u32));
        assert_eq!(table.kind(), "dense-key");
        assert_eq!(table.probe(&[Value::int(1), Value::int(10)]).len(), 1);
        assert_eq!(table.probe(&[Value::int(2), Value::int(20)]).len(), 0);
    }

    #[test]
    fn sparse_ranges_fall_back_to_hash() {
        let data = rel_data_of(&[[1, 0], [1_000_000_000, 0]]);
        let table = JoinTable::build(data.len, 1, |r, _| data.value(0, r as u32));
        assert_eq!(table.kind(), "hash");
        assert_eq!(table.probe(&[Value::int(1)]).len(), 1);
        assert_eq!(table.probe(&[Value::int(1_000_000_000)]).len(), 1);
        assert!(table.probe(&[Value::int(2)]).is_empty());
    }

    #[test]
    fn mixed_kind_columns_fall_back_to_hash() {
        let tuples = [
            Tuple(vec![Value::int(1)]),
            Tuple(vec![Value::Sym(0)]),
            Tuple(vec![Value::int(2)]),
        ];
        let data = RelData::from_tuples(tuples.iter(), 1);
        let table = JoinTable::build(data.len, 1, |r, _| data.value(0, r as u32));
        assert_eq!(table.kind(), "hash");
        assert_eq!(table.probe(&[Value::Sym(0)]).len(), 1);
    }

    #[test]
    fn sym_columns_use_dense_tables() {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(TableSchema::new("T", ["x"]), [["red"], ["green"], ["blue"]])
                .unwrap(),
        );
        let data = RelData::from_relation(db.require("T").unwrap());
        let table = JoinTable::build(data.len, 1, |r, _| data.value(0, r as u32));
        assert_eq!(table.kind(), "dense-key");
        let red = db.lookup_value(&Value::str("red"));
        assert_eq!(table.probe(&[red]).len(), 1);
        // An un-interned probe string can't match any stored symbol.
        assert!(table.probe(&[Value::str("red")]).is_empty());
    }

    #[test]
    fn empty_relations_build_hash_tables() {
        let data = RelData::from_tuples(std::iter::empty(), 2);
        let table = JoinTable::build(data.len, 1, |r, _| data.value(0, r as u32));
        assert_eq!(table.kind(), "hash");
        assert!(table.probe(&[Value::int(1)]).is_empty());
    }
}
