//! # rd-core — an in-memory, set-semantics relational engine
//!
//! This crate provides the substrate shared by every language front-end in
//! the workspace: values, schemas, tuples, relation instances, databases,
//! comparison operators, and (random as well as exhaustive) database
//! generation used by the bounded model-checking machinery in `rd-pattern`.
//!
//! The engine deliberately follows the assumptions of the paper
//! (Gatterbauer & Dunne, SIGMOD 2024, §2.4):
//!
//! * **set semantics** — relations are sets of tuples; duplicates never
//!   exist (we store tuples in a [`std::collections::BTreeSet`], which also
//!   gives deterministic iteration order);
//! * **binary logic** — there is no `NULL` value; every predicate evaluates
//!   to `true` or `false`;
//! * **ordered active domain** — a linear order over all values, so the
//!   built-in predicates `<, <=, >, >=` are meaningful in addition to
//!   `=` and `!=` (§2, first paragraph).
//!
//! # Quick example
//!
//! ```
//! use rd_core::{Database, Relation, TableSchema, Value};
//!
//! let schema = TableSchema::new("R", ["A", "B"]);
//! let mut r = Relation::empty(schema);
//! r.insert_values([Value::int(1), Value::int(2)]).unwrap();
//! r.insert_values([Value::int(1), Value::int(2)]).unwrap(); // set semantics: no-op
//! assert_eq!(r.len(), 1);
//!
//! let mut db = Database::new();
//! db.add_relation(r);
//! assert_eq!(db.relation("R").unwrap().len(), 1);
//! ```

pub(crate) mod batch;
pub mod cmp;
pub mod database;
pub mod error;
pub mod exec;
pub mod generate;
pub mod plan;
pub mod pretty;
pub mod schema;
pub mod stats;
pub mod symbol;
pub mod trace;
pub mod value;

pub use cmp::CmpOp;
pub use database::{combine_fingerprints, Database, Relation, Tuple};
pub use error::{CoreError, CoreResult};
pub use generate::{enumerate_databases, DbGenerator, ExhaustiveDbIter};
pub use plan::{build_index, scan_cost, DbStats, OrderStrategy, PlanHints, PlannerOpts};
pub use schema::{Catalog, TableSchema};
pub use stats::{ColumnStats, KmvSketch, TableStats};
pub use symbol::SymbolTable;
pub use trace::{Histogram, Span};
pub use value::Value;
