//! Comparison operators shared by all four languages.
//!
//! The paper fixes the operator set θ ∈ {=, ≠, <, ≤, >, ≥} (§2.2). Each
//! language renders the operators with its own syntax (`<>` in SQL, `≠` in
//! TRC, `!=` in our ASCII TRC syntax); this module owns the semantics and
//! the two algebraic involutions used throughout the translations:
//!
//! * [`CmpOp::flipped`] — swap the two sides (`a < b` ⇔ `b > a`), used when
//!   normalizing arrow directions in Relational Diagrams (§3.1 point 3);
//! * [`CmpOp::negated`] — logical complement (`¬(a < b)` ⇔ `a >= b`), used
//!   when eliminating unguarded negations (§2.3) and when rewriting `ALL`
//!   subqueries to `NOT EXISTS` (Fig. 14b).

use crate::symbol::SymbolTable;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator θ ∈ {=, ≠, <, ≤, >, ≥}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` (SQL `<>`, paper `≠`)
    Ne,
    /// `<`
    Lt,
    /// `<=` (paper `≤`)
    Le,
    /// `>`
    Gt,
    /// `>=` (paper `≥`)
    Ge,
}

impl CmpOp {
    /// All six operators, in display order.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Evaluates `left θ right` under the total order on [`Value`].
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }

    /// Evaluates `left θ right` with interned strings compared
    /// *lexicographically* (resolved through `symbols`).
    ///
    /// This is the evaluators' entry point. Equality and inequality stay
    /// integer compares (`Sym` ids are equal iff the strings are, within
    /// one table); only the order operators `< <= > >=` between two
    /// string-kinded values pay a resolution, which the symbol table
    /// serves as an `Arc<str>` clone under a read lock.
    pub fn eval_resolved(self, left: &Value, right: &Value, symbols: &SymbolTable) -> bool {
        match self {
            // Fast path: ids (and ints) compare directly; the mixed
            // Sym/Str case resolves so equality agrees with the order
            // operators' text semantics.
            CmpOp::Eq => match (left, right) {
                (Value::Sym(_), Value::Str(_)) | (Value::Str(_), Value::Sym(_)) => {
                    resolved_order(left, right, symbols) == Ordering::Equal
                }
                _ => left == right,
            },
            CmpOp::Ne => !CmpOp::Eq.eval_resolved(left, right, symbols),
            CmpOp::Lt => resolved_order(left, right, symbols) == Ordering::Less,
            CmpOp::Le => resolved_order(left, right, symbols) != Ordering::Greater,
            CmpOp::Gt => resolved_order(left, right, symbols) == Ordering::Greater,
            CmpOp::Ge => resolved_order(left, right, symbols) != Ordering::Less,
        }
    }

    /// The operator obtained by swapping the operands: `a θ b ⇔ b θ' a`.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical complement: `¬(a θ b) ⇔ a θ' b`.
    ///
    /// This is the `O'` of Fig. 14b ("the complement operator of O, for
    /// example `<` for `>=`").
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// `true` for the symmetric operators `=` and `!=`, which need no
    /// arrowhead in a Relational Diagram (§3.1 point 3).
    pub fn is_symmetric(self) -> bool {
        matches!(self, CmpOp::Eq | CmpOp::Ne)
    }

    /// ASCII rendering used by the TRC, RA and Datalog printers.
    pub fn ascii(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// SQL rendering (`<>` instead of `!=`, per the Fig. 3 grammar).
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Ne => "<>",
            other => other.ascii(),
        }
    }

    /// Unicode rendering used in diagram labels (`≠`, `≤`, `≥`).
    pub fn unicode(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        }
    }

    /// Parses any of the accepted spellings (`=`, `!=`, `<>`, `≠`, `<`,
    /// `<=`, `≤`, `>`, `>=`, `≥`).
    pub fn parse(s: &str) -> Option<CmpOp> {
        match s {
            "=" | "==" => Some(CmpOp::Eq),
            "!=" | "<>" | "≠" => Some(CmpOp::Ne),
            "<" => Some(CmpOp::Lt),
            "<=" | "≤" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" | "≥" => Some(CmpOp::Ge),
            _ => None,
        }
    }
}

/// The linear order over the active domain with interned strings compared
/// by their *text*: integers first (matching `Int < Sym < Str`), then
/// strings lexicographically, whether they arrive as `Sym` or `Str`.
fn resolved_order(left: &Value, right: &Value, symbols: &SymbolTable) -> Ordering {
    match (left, right) {
        (Value::Int(a), Value::Int(b)) => a.cmp(b),
        (Value::Int(_), _) => Ordering::Less,
        (_, Value::Int(_)) => Ordering::Greater,
        (Value::Sym(a), Value::Sym(b)) if a == b => Ordering::Equal,
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (Value::Sym(a), Value::Str(b)) => symbols.resolve(*a).as_ref().cmp(b.as_str()),
        (Value::Str(a), Value::Sym(b)) => a.as_str().cmp(symbols.resolve(*b).as_ref()),
        (Value::Sym(a), Value::Sym(b)) => symbols.resolve(*a).cmp(&symbols.resolve(*b)),
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_on_ints() {
        let (a, b) = (Value::int(1), Value::int(2));
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &b));
        assert!(CmpOp::Ne.eval(&a, &b));
        assert!(!CmpOp::Eq.eval(&a, &b));
        assert!(!CmpOp::Gt.eval(&a, &b));
        assert!(!CmpOp::Ge.eval(&a, &b));
    }

    #[test]
    fn flip_is_involution_and_swaps_sides() {
        for op in CmpOp::ALL {
            assert_eq!(op.flipped().flipped(), op);
            let (a, b) = (Value::int(3), Value::int(7));
            assert_eq!(op.eval(&a, &b), op.flipped().eval(&b, &a));
        }
    }

    #[test]
    fn negate_is_involution_and_complements() {
        for op in CmpOp::ALL {
            assert_eq!(op.negated().negated(), op);
            let (a, b) = (Value::int(3), Value::int(7));
            assert_eq!(op.eval(&a, &b), !op.negated().eval(&a, &b));
            let (a, b) = (Value::int(5), Value::int(5));
            assert_eq!(op.eval(&a, &b), !op.negated().eval(&a, &b));
        }
    }

    #[test]
    fn parse_all_spellings() {
        assert_eq!(CmpOp::parse("<>"), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse("≠"), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse("!="), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse("≥"), Some(CmpOp::Ge));
        assert_eq!(CmpOp::parse("bogus"), None);
        for op in CmpOp::ALL {
            assert_eq!(CmpOp::parse(op.ascii()), Some(op));
            assert_eq!(CmpOp::parse(op.sql()), Some(op));
            assert_eq!(CmpOp::parse(op.unicode()), Some(op));
        }
    }

    #[test]
    fn eval_resolved_orders_syms_lexicographically() {
        let t = SymbolTable::new();
        // Intern out of lexicographic order so id order disagrees with
        // string order.
        let zebra = Value::Sym(t.intern("zebra"));
        let apple = Value::Sym(t.intern("apple"));
        assert!(CmpOp::Lt.eval_resolved(&apple, &zebra, &t));
        assert!(!CmpOp::Lt.eval_resolved(&zebra, &apple, &t));
        assert!(CmpOp::Ge.eval_resolved(&zebra, &apple, &t));
        assert!(CmpOp::Eq.eval_resolved(&apple, &apple, &t));
        assert!(CmpOp::Ne.eval_resolved(&apple, &zebra, &t));
        // Ints order before any string, as before.
        assert!(CmpOp::Lt.eval_resolved(&Value::int(99), &apple, &t));
        // Mixed Sym/Str (uninterned reference path) compares by text —
        // including equality, so the linear-order axioms hold.
        assert!(CmpOp::Lt.eval_resolved(&apple, &Value::str("banana"), &t));
        assert!(CmpOp::Gt.eval_resolved(&Value::str("banana"), &apple, &t));
        assert!(CmpOp::Eq.eval_resolved(&apple, &Value::str("apple"), &t));
        assert!(!CmpOp::Ne.eval_resolved(&Value::str("apple"), &apple, &t));
        for op in CmpOp::ALL {
            // On plain values eval_resolved agrees with eval.
            let (a, b) = (Value::int(3), Value::int(7));
            assert_eq!(op.eval(&a, &b), op.eval_resolved(&a, &b, &t));
            let (a, b) = (Value::str("a"), Value::str("b"));
            assert_eq!(op.eval(&a, &b), op.eval_resolved(&a, &b, &t));
        }
    }

    #[test]
    fn symmetry() {
        assert!(CmpOp::Eq.is_symmetric());
        assert!(CmpOp::Ne.is_symmetric());
        assert!(!CmpOp::Lt.is_symmetric());
    }
}
