//! Plain-text rendering of relations and query answers.
//!
//! Used by the examples and the benchmark harnesses to print result tables
//! in the familiar `psql`-like box format.

use crate::database::{Relation, Tuple};
use crate::schema::TableSchema;

/// Renders a relation as an aligned text table with its name as header.
/// Interned values are resolved back to strings through the relation's
/// attached symbol table.
pub fn render_relation(rel: &Relation) -> String {
    let resolved = rel.resolved();
    render_table(
        resolved.name(),
        resolved.schema().attrs(),
        resolved.iter().cloned().collect::<Vec<_>>().as_slice(),
    )
}

/// Renders an anonymous result set (e.g. a query answer) with column names.
pub fn render_result(name: &str, schema: &TableSchema, tuples: &[Tuple]) -> String {
    render_table(name, schema.attrs(), tuples)
}

fn render_table(name: &str, attrs: &[String], tuples: &[Tuple]) -> String {
    let mut widths: Vec<usize> = attrs.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = tuples
        .iter()
        .map(|t| t.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    let mut out = String::new();
    out.push_str(name);
    if attrs.is_empty() {
        // A Boolean query: render truth value instead of a table.
        out.push_str(if tuples.is_empty() {
            " = false"
        } else {
            " = true"
        });
        return out;
    }
    out.push('\n');
    sep(&mut out);
    out.push('|');
    for (a, w) in attrs.iter().zip(&widths) {
        out.push_str(&format!(" {a:w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in &rendered {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out.push_str(&format!("({} rows)", tuples.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Relation;
    use crate::schema::TableSchema;

    #[test]
    fn renders_aligned_table() {
        let rel = Relation::from_rows(
            TableSchema::new("Sailor", ["sid", "sname"]),
            vec![
                vec![crate::Value::int(1), crate::Value::str("Dustin")],
                vec![crate::Value::int(2), crate::Value::str("Lubber")],
            ],
        )
        .unwrap();
        let s = render_relation(&rel);
        assert!(s.starts_with("Sailor\n"));
        assert!(s.contains("| sid | sname    |"));
        assert!(s.contains("| 1   | 'Dustin' |"));
        assert!(s.ends_with("(2 rows)"));
    }

    #[test]
    fn renders_boolean_result() {
        let schema = TableSchema::new("Q", Vec::<String>::new());
        let s = render_result("Q", &schema, &[]);
        assert_eq!(s, "Q = false");
        let s = render_result("Q", &schema, &[Tuple::new(Vec::<crate::Value>::new())]);
        assert_eq!(s, "Q = true");
    }
}
