//! Error type shared across the workspace's substrate layer.

use std::fmt;

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A tuple's arity did not match its relation's schema.
    ArityMismatch {
        /// Table whose schema was violated.
        table: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A referenced table does not exist in the database or catalog.
    UnknownTable(String),
    /// A referenced attribute does not exist in a table schema.
    UnknownAttribute {
        /// Table that was searched.
        table: String,
        /// Attribute that was not found.
        attribute: String,
    },
    /// A table was defined twice in the same catalog or database.
    DuplicateTable(String),
    /// An attribute name appears twice in one table schema.
    DuplicateAttribute {
        /// Table with the duplicate.
        table: String,
        /// The repeated attribute name.
        attribute: String,
    },
    /// Generic invariant violation with a human-readable message.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                table,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for table '{table}': schema has {expected} attributes, tuple has {actual}"
            ),
            CoreError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            CoreError::UnknownAttribute { table, attribute } => {
                write!(f, "table '{table}' has no attribute '{attribute}'")
            }
            CoreError::DuplicateTable(t) => write!(f, "table '{t}' defined twice"),
            CoreError::DuplicateAttribute { table, attribute } => {
                write!(f, "attribute '{attribute}' duplicated in table '{table}'")
            }
            CoreError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ArityMismatch {
            table: "R".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("'R'"));
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));
        assert_eq!(
            CoreError::UnknownTable("S".into()).to_string(),
            "unknown table 'S'"
        );
    }
}
