//! Datalog\* → TRC\* (Appendix C, proof part 3).
//!
//! Each rule translates into an existential block: positive EDB atoms
//! become quantified tuple variables with equality predicates wiring up
//! shared Datalog variables; negated EDB atoms become `¬(∃…)` blocks; IDB
//! atoms are *inlined* (legal because Datalog\* uses every IDB at most
//! once), which keeps the translation pattern-preserving — the TRC query
//! has exactly one table reference per EDB atom of the program.

use rd_core::{Catalog, CmpOp, CoreError, CoreResult};
use rd_datalog::ast::{Atom, DlProgram, DlTerm, Literal, Rule};
use rd_trc::ast::{Binding, Formula, OutputSpec, Predicate, Term, TrcQuery};
use std::collections::BTreeMap;

struct Ctx<'a> {
    program: &'a DlProgram,
    catalog: &'a Catalog,
    idbs: std::collections::BTreeSet<String>,
    fresh: usize,
}

impl<'a> Ctx<'a> {
    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("t{}", self.fresh)
    }

    fn rule_for(&self, idb: &str) -> CoreResult<&'a Rule> {
        self.program
            .rules
            .iter()
            .find(|r| r.head.pred == idb)
            .ok_or_else(|| CoreError::Invalid(format!("IDB '{idb}' has no rule")))
    }

    /// Expands a rule body into (bindings, conjunct parts) under `env`
    /// (Datalog variable → TRC term). `env` is extended with
    /// representatives for variables first bound here.
    fn expand_body(
        &mut self,
        rule: &'a Rule,
        env: &mut BTreeMap<String, Term>,
    ) -> CoreResult<(Vec<Binding>, Vec<Formula>)> {
        let mut bindings = Vec::new();
        let mut parts = Vec::new();

        // Pass 1: positive EDB atoms bind tuple variables and establish
        // representatives.
        for lit in &rule.body {
            if let Literal::Pos(atom) = lit {
                if self.idbs.contains(&atom.pred) {
                    continue;
                }
                let schema = self.catalog.require(&atom.pred)?;
                let tv = self.fresh_var();
                bindings.push(Binding::new(tv.clone(), atom.pred.clone()));
                for (i, term) in atom.terms.iter().enumerate() {
                    let attr = schema.attrs()[i].clone();
                    let local = Term::attr(tv.clone(), attr);
                    match term {
                        DlTerm::Wildcard => {}
                        DlTerm::Const(c) => parts.push(Formula::Pred(Predicate::new(
                            local,
                            CmpOp::Eq,
                            Term::Const(c.clone()),
                        ))),
                        DlTerm::Var(v) => match env.get(v) {
                            Some(rep) => parts.push(Formula::Pred(Predicate::new(
                                local,
                                CmpOp::Eq,
                                rep.clone(),
                            ))),
                            None => {
                                env.insert(v.clone(), local);
                            }
                        },
                    }
                }
            }
        }

        // Pass 2: positive IDB atoms are inlined into this scope.
        for lit in &rule.body {
            if let Literal::Pos(atom) = lit {
                if !self.idbs.contains(&atom.pred) {
                    continue;
                }
                let inner_rule = self.rule_for(&atom.pred)?;
                let mut inner_env: BTreeMap<String, Term> = BTreeMap::new();
                // Seed bound arguments; remember positions of unbound ones.
                let mut exports: Vec<(usize, String)> = Vec::new();
                for (i, (callee, caller)) in
                    inner_rule.head.terms.iter().zip(&atom.terms).enumerate()
                {
                    let hv = match callee {
                        DlTerm::Var(v) => v.clone(),
                        other => {
                            return Err(CoreError::Invalid(format!(
                                "IDB head term {other} is not a variable"
                            )))
                        }
                    };
                    match caller {
                        DlTerm::Const(c) => {
                            inner_env.insert(hv, Term::Const(c.clone()));
                        }
                        DlTerm::Var(v) => match env.get(v) {
                            Some(rep) => {
                                // The callee head var may repeat; add an
                                // equality if already seeded.
                                if let Some(prev) = inner_env.get(&hv) {
                                    parts.push(Formula::Pred(Predicate::new(
                                        prev.clone(),
                                        CmpOp::Eq,
                                        rep.clone(),
                                    )));
                                } else {
                                    inner_env.insert(hv, rep.clone());
                                }
                            }
                            None => exports.push((i, v.clone())),
                        },
                        DlTerm::Wildcard => {}
                    }
                }
                let (inner_bindings, inner_parts) = self.expand_body(inner_rule, &mut inner_env)?;
                bindings.extend(inner_bindings);
                parts.extend(inner_parts);
                // Export representatives for caller variables first bound
                // by this IDB atom.
                for (i, caller_var) in exports {
                    let hv = inner_rule.head.terms[i]
                        .as_var()
                        .expect("checked above")
                        .to_string();
                    let rep = inner_env.get(&hv).cloned().ok_or_else(|| {
                        CoreError::Invalid(format!(
                            "head variable '{hv}' of IDB '{}' unbound after expansion",
                            atom.pred
                        ))
                    })?;
                    env.insert(caller_var, rep);
                }
            }
        }

        // Pass 3: built-ins and negated atoms (all variables now bound).
        for lit in &rule.body {
            match lit {
                Literal::Pos(_) => {}
                Literal::Cmp(b) => {
                    let term = |t: &DlTerm, env: &BTreeMap<String, Term>| -> CoreResult<Term> {
                        Ok(match t {
                            DlTerm::Var(v) => env.get(v).cloned().ok_or_else(|| {
                                CoreError::Invalid(format!("unbound variable '{v}'"))
                            })?,
                            DlTerm::Const(c) => Term::Const(c.clone()),
                            DlTerm::Wildcard => {
                                return Err(CoreError::Invalid("wildcard in built-in".into()))
                            }
                        })
                    };
                    parts.push(Formula::Pred(Predicate::new(
                        term(&b.left, env)?,
                        b.op,
                        term(&b.right, env)?,
                    )));
                }
                Literal::Neg(atom) => {
                    parts.push(self.negated_atom(atom, env)?);
                }
            }
        }
        Ok((bindings, parts))
    }

    fn negated_atom(&mut self, atom: &Atom, env: &BTreeMap<String, Term>) -> CoreResult<Formula> {
        if self.idbs.contains(&atom.pred) {
            // Inline the IDB rule under the negation.
            let inner_rule = self.rule_for(&atom.pred)?;
            let mut inner_env: BTreeMap<String, Term> = BTreeMap::new();
            let mut extra_eq: Vec<Formula> = Vec::new();
            for (callee, caller) in inner_rule.head.terms.iter().zip(&atom.terms) {
                let hv = match callee {
                    DlTerm::Var(v) => v.clone(),
                    other => {
                        return Err(CoreError::Invalid(format!(
                            "IDB head term {other} is not a variable"
                        )))
                    }
                };
                let arg = match caller {
                    DlTerm::Const(c) => Term::Const(c.clone()),
                    DlTerm::Var(v) => env
                        .get(v)
                        .cloned()
                        .ok_or_else(|| CoreError::Invalid(format!("unbound variable '{v}'")))?,
                    DlTerm::Wildcard => {
                        return Err(CoreError::Invalid(
                            "wildcard argument to negated IDB unsupported".into(),
                        ))
                    }
                };
                if let Some(prev) = inner_env.get(&hv) {
                    extra_eq.push(Formula::Pred(Predicate::new(prev.clone(), CmpOp::Eq, arg)));
                } else {
                    inner_env.insert(hv, arg);
                }
            }
            let (bindings, mut parts) = self.expand_body(inner_rule, &mut inner_env)?;
            parts.extend(extra_eq);
            let body = Formula::and(parts);
            Ok(Formula::not(if bindings.is_empty() {
                body
            } else {
                Formula::exists(bindings, body)
            }))
        } else {
            // Negated EDB atom: ¬(∃t ∈ R [t.Aᵢ = repᵢ ∧ …]).
            let schema = self.catalog.require(&atom.pred)?;
            let tv = self.fresh_var();
            let mut parts = Vec::new();
            for (i, term) in atom.terms.iter().enumerate() {
                let local = Term::attr(tv.clone(), schema.attrs()[i].clone());
                match term {
                    DlTerm::Wildcard => {}
                    DlTerm::Const(c) => parts.push(Formula::Pred(Predicate::new(
                        local,
                        CmpOp::Eq,
                        Term::Const(c.clone()),
                    ))),
                    DlTerm::Var(v) => {
                        let rep = env
                            .get(v)
                            .cloned()
                            .ok_or_else(|| CoreError::Invalid(format!("unbound variable '{v}'")))?;
                        parts.push(Formula::Pred(Predicate::new(local, CmpOp::Eq, rep)));
                    }
                }
            }
            Ok(Formula::not(Formula::exists(
                vec![Binding::new(tv, atom.pred.clone())],
                Formula::and(parts),
            )))
        }
    }
}

/// Translates a Datalog\* program into a pattern-isomorphic TRC\* query.
pub fn datalog_to_trc(p: &DlProgram, catalog: &Catalog) -> CoreResult<TrcQuery> {
    rd_datalog::check::check_program(p, catalog)?;
    if !rd_datalog::check::is_datalog_star(p) {
        return Err(CoreError::Invalid(
            "program is outside Datalog* (Definition 1)".into(),
        ));
    }
    let mut ctx = Ctx {
        program: p,
        catalog,
        idbs: p.idbs(),
        fresh: 0,
    };
    let query_rule = ctx.rule_for(&p.query)?;
    let mut env = BTreeMap::new();
    let (bindings, mut parts) = ctx.expand_body(query_rule, &mut env)?;
    // Output head: one attribute per head variable, named after it.
    let head_vars: Vec<String> = query_rule
        .head
        .terms
        .iter()
        .map(|t| match t {
            DlTerm::Var(v) => Ok(v.clone()),
            other => Err(CoreError::Invalid(format!(
                "query head term {other} is not a variable"
            ))),
        })
        .collect::<CoreResult<_>>()?;
    let mut defining = Vec::with_capacity(head_vars.len());
    for v in &head_vars {
        let rep = env
            .get(v)
            .cloned()
            .ok_or_else(|| CoreError::Invalid(format!("head variable '{v}' unbound")))?;
        defining.push(Formula::Pred(Predicate::new(
            Term::attr("q", v.clone()),
            CmpOp::Eq,
            rep,
        )));
    }
    defining.append(&mut parts);
    let q = TrcQuery::query(
        OutputSpec::new("q", head_vars),
        Formula::exists(bindings, Formula::and(defining)),
    );
    q.check(catalog)?;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::{Database, Relation, TableSchema};
    use rd_datalog::eval::eval_program;
    use rd_datalog::parser::parse_program;
    use rd_trc::check::is_nondisjunctive;
    use rd_trc::eval::eval_query;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
            TableSchema::new("T", ["A"]),
        ])
        .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db.add_relation(Relation::from_rows(TableSchema::new("T", ["A"]), [[1i64], [9]]).unwrap());
        db
    }

    fn agree_and_preserve(program: &str) {
        let p = parse_program(program, &catalog()).unwrap();
        let q = datalog_to_trc(&p, &catalog()).unwrap();
        assert!(is_nondisjunctive(&q), "not TRC*: {q}");
        // Pattern isomorphism is defined up to permutation (Def. 12), so
        // compare signatures as multisets.
        let mut a = q.signature();
        let mut b = p.signature();
        a.sort();
        b.sort();
        assert_eq!(a, b, "signature not preserved for:\n{program}\ntrc: {q}");
        let dl_out = eval_program(&p, &db()).unwrap();
        let trc_out = eval_query(&q, &db()).unwrap();
        assert_eq!(
            trc_out.tuples(),
            dl_out.tuples(),
            "mismatch for:\n{program}\ntrc: {q}"
        );
    }

    #[test]
    fn conjunctive_rules() {
        agree_and_preserve("Q(x) :- R(x, y), S(y).");
        agree_and_preserve("Q(x, y) :- R(x, y), y > 15.");
        agree_and_preserve("Q(x) :- R(x, 10).");
        agree_and_preserve("Q(x) :- R(x, _), T(x).");
    }

    #[test]
    fn single_negation() {
        agree_and_preserve("Q(x, y) :- R(x, y), not S(y).");
    }

    #[test]
    fn division_with_idb_inlining() {
        agree_and_preserve("I(x) :- R(x, _), S(y), not R(x, y).\nQ(x) :- R(x, _), not I(x).");
    }

    #[test]
    fn positive_idb_inlines_into_same_scope() {
        agree_and_preserve("I(y) :- R(_, y), not S(y).\nQ(x, y) :- R(x, y), I(y).");
    }

    #[test]
    fn positive_idb_binding_a_fresh_variable() {
        // x is first bound inside the positive IDB atom.
        agree_and_preserve("I(x) :- T(x).\nQ(x) :- I(x).");
    }

    #[test]
    fn three_level_negation_chain() {
        agree_and_preserve(
            "I1(y) :- S(y), not R(1, y).\nI2(x, y) :- R(x, y), not I1(y).\nQ(x) :- T(x), I2(x, _).",
        );
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut d = db();
        d.relation_mut("R")
            .unwrap()
            .insert_values([7i64, 7])
            .unwrap();
        let p = parse_program("Q(x) :- R(x, x).", &catalog()).unwrap();
        let q = datalog_to_trc(&p, &catalog()).unwrap();
        let out = eval_query(&q, &d).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn rejects_disjunctive_programs() {
        let p =
            rd_datalog::parser::parse_program_unchecked("Q(x) :- T(x).\nQ(x) :- R(x, _).").unwrap();
        assert!(datalog_to_trc(&p, &catalog()).is_err());
    }
}
