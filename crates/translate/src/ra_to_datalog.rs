//! RA\* → Datalog\* (Appendix C, proof part 1) plus the antijoin case of
//! Theorem 21 (part 1).
//!
//! SPJR (select/project/join/rename) sub-expressions compile into a single
//! rule body; each difference or antijoin introduces one fresh IDB for its
//! right operand, exactly mirroring the paper's case analysis. The
//! translation is pattern-preserving: every base-table leaf of the RA
//! expression becomes exactly one EDB atom.

use rd_core::{Catalog, CoreError, CoreResult};
use rd_datalog::ast::{Atom, BuiltIn, DlProgram, DlTerm, Literal, Rule};
use rd_ra::ast::{Condition, RaExpr, RaTerm};

/// State threaded through the compilation.
struct Compiler<'a> {
    catalog: &'a Catalog,
    rules: Vec<Rule>,
    next_idb: usize,
    next_var: usize,
}

/// A compiled sub-expression: body literals plus the mapping from the
/// expression's schema attributes to Datalog variables.
struct Body {
    literals: Vec<Literal>,
    /// (attribute name, variable) in schema order.
    attr_vars: Vec<(String, String)>,
}

impl Body {
    fn var_of(&self, attr: &str) -> CoreResult<&str> {
        self.attr_vars
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| CoreError::Invalid(format!("attribute '{attr}' missing in body")))
    }
}

impl<'a> Compiler<'a> {
    fn fresh_var(&mut self) -> String {
        self.next_var += 1;
        format!("v{}", self.next_var)
    }

    fn fresh_idb(&mut self) -> String {
        self.next_idb += 1;
        format!("I{}", self.next_idb)
    }

    /// Compiles `e` into a conjunctive body (emitting auxiliary rules for
    /// difference / antijoin right-hand sides).
    fn compile(&mut self, e: &RaExpr) -> CoreResult<Body> {
        match e {
            RaExpr::Table(t) => {
                let schema = self.catalog.require(t)?;
                let attr_vars: Vec<(String, String)> = schema
                    .attrs()
                    .iter()
                    .map(|a| (a.clone(), self.fresh_var()))
                    .collect();
                let terms: Vec<DlTerm> = attr_vars
                    .iter()
                    .map(|(_, v)| DlTerm::var(v.clone()))
                    .collect();
                Ok(Body {
                    literals: vec![Literal::Pos(Atom::new(t.clone(), terms))],
                    attr_vars,
                })
            }
            RaExpr::Project(attrs, inner) => {
                let body = self.compile(inner)?;
                let attr_vars = attrs
                    .iter()
                    .map(|a| Ok((a.clone(), body.var_of(a)?.to_string())))
                    .collect::<CoreResult<_>>()?;
                Ok(Body {
                    literals: body.literals,
                    attr_vars,
                })
            }
            RaExpr::Select(cond, inner) => {
                let mut body = self.compile(inner)?;
                let mut builtins = Vec::new();
                self.condition(cond, &body, &mut builtins)?;
                body.literals.extend(builtins.into_iter().map(Literal::Cmp));
                Ok(body)
            }
            RaExpr::Rename(renames, inner) => {
                let mut body = self.compile(inner)?;
                for (from, to) in renames {
                    let slot = body
                        .attr_vars
                        .iter_mut()
                        .find(|(a, _)| a == from)
                        .ok_or_else(|| {
                            CoreError::Invalid(format!("rename source '{from}' missing"))
                        })?;
                    slot.0 = to.clone();
                }
                Ok(body)
            }
            RaExpr::Product(l, r) => {
                let lb = self.compile(l)?;
                let rb = self.compile(r)?;
                let mut literals = lb.literals;
                literals.extend(rb.literals);
                let mut attr_vars = lb.attr_vars;
                attr_vars.extend(rb.attr_vars);
                Ok(Body {
                    literals,
                    attr_vars,
                })
            }
            RaExpr::Join(cond, l, r) => {
                let lb = self.compile(l)?;
                let rb = self.compile(r)?;
                let mut builtins = Vec::new();
                for (la, op, ra) in &cond.0 {
                    builtins.push(BuiltIn::new(
                        DlTerm::var(lb.var_of(la)?),
                        *op,
                        DlTerm::var(rb.var_of(ra)?),
                    ));
                }
                let mut literals = lb.literals;
                literals.extend(rb.literals);
                literals.extend(builtins.into_iter().map(Literal::Cmp));
                let mut attr_vars = lb.attr_vars;
                attr_vars.extend(rb.attr_vars);
                Ok(Body {
                    literals,
                    attr_vars,
                })
            }
            RaExpr::NaturalJoin(l, r) => {
                let lb = self.compile(l)?;
                let rb = self.compile(r)?;
                // Unify shared attribute variables via equality built-ins.
                let mut literals = lb.literals;
                literals.extend(rb.literals.clone());
                let mut attr_vars = lb.attr_vars.clone();
                for (a, rv) in &rb.attr_vars {
                    match lb.attr_vars.iter().find(|(la, _)| la == a) {
                        Some((_, lv)) => literals.push(Literal::Cmp(BuiltIn::new(
                            DlTerm::var(lv.clone()),
                            rd_core::CmpOp::Eq,
                            DlTerm::var(rv.clone()),
                        ))),
                        None => attr_vars.push((a.clone(), rv.clone())),
                    }
                }
                Ok(Body {
                    literals,
                    attr_vars,
                })
            }
            RaExpr::Diff(l, r) => {
                let lb = self.compile(l)?;
                // Right side becomes its own IDB (paper case 5) unless it
                // is a plain table, which is negated in place.
                let neg = self.negatable(r, &lb, None)?;
                let mut literals = lb.literals;
                literals.push(neg);
                Ok(Body {
                    literals,
                    attr_vars: lb.attr_vars,
                })
            }
            RaExpr::Antijoin(cond, l, r) => {
                // Theorem 21, case 6.
                let lb = self.compile(l)?;
                let pairs: Vec<(String, String)> = if cond.0.is_empty() {
                    // Natural antijoin: shared attribute names.
                    let rs = r.schema(self.catalog)?;
                    lb.attr_vars
                        .iter()
                        .filter(|(a, _)| rs.contains(a))
                        .map(|(a, _)| (a.clone(), a.clone()))
                        .collect()
                } else {
                    cond.0
                        .iter()
                        .map(|(la, _, ra)| (la.clone(), ra.clone()))
                        .collect()
                };
                let neg = self.negatable(r, &lb, Some(&pairs))?;
                let mut literals = lb.literals;
                literals.push(neg);
                Ok(Body {
                    literals,
                    attr_vars: lb.attr_vars,
                })
            }
            RaExpr::Union(..) => Err(CoreError::Invalid(
                "union is outside RA*; translate branches separately (Datalog expresses \
                 disjunction by repeating the head IDB)"
                    .into(),
            )),
        }
    }

    /// Builds the negated literal for a difference/antijoin right operand.
    /// `pairs` maps left attribute → right attribute for antijoins (`None`
    /// means full-schema equality, i.e. set difference).
    fn negatable(
        &mut self,
        r: &RaExpr,
        left: &Body,
        pairs: Option<&[(String, String)]>,
    ) -> CoreResult<Literal> {
        let rb = self.compile(r)?;
        let join_pairs: Vec<(String, String)> = match pairs {
            Some(ps) => ps.to_vec(),
            None => rb
                .attr_vars
                .iter()
                .map(|(a, _)| (a.clone(), a.clone()))
                .collect(),
        };
        // Fast path: the right side is a single positive EDB atom with no
        // extra conditions — negate it in place (paper's inline form, as
        // in eq. 16). The atom's joined positions take the left's
        // variables; remaining positions become wildcards.
        if rb.literals.len() == 1 {
            if let Literal::Pos(atom) = &rb.literals[0] {
                let mut terms = Vec::with_capacity(atom.terms.len());
                for (i, t) in atom.terms.iter().enumerate() {
                    let attr = &rb
                        .attr_vars
                        .iter()
                        .find(|(_, v)| matches!(t, DlTerm::Var(tv) if tv == v));
                    let joined = attr.as_ref().and_then(|(a, _)| {
                        join_pairs
                            .iter()
                            .find(|(_, ra)| ra == a)
                            .map(|(la, _)| la.clone())
                    });
                    match joined {
                        Some(la) => terms.push(DlTerm::var(left.var_of(&la)?)),
                        None => {
                            let _ = i;
                            terms.push(DlTerm::Wildcard);
                        }
                    }
                }
                return Ok(Literal::Neg(Atom::new(atom.pred.clone(), terms)));
            }
        }
        // General path: fresh IDB for the right side, negated with the
        // left's variables at the joined positions.
        let idb = self.fresh_idb();
        let head_terms: Vec<DlTerm> = join_pairs
            .iter()
            .map(|(_, ra)| Ok(DlTerm::var(rb.var_of(ra)?)))
            .collect::<CoreResult<_>>()?;
        self.rules
            .push(Rule::new(Atom::new(idb.clone(), head_terms), rb.literals));
        let call_terms: Vec<DlTerm> = join_pairs
            .iter()
            .map(|(la, _)| Ok(DlTerm::var(left.var_of(la)?)))
            .collect::<CoreResult<_>>()?;
        Ok(Literal::Neg(Atom::new(idb, call_terms)))
    }

    fn condition(
        &mut self,
        cond: &Condition,
        body: &Body,
        out: &mut Vec<BuiltIn>,
    ) -> CoreResult<()> {
        match cond {
            Condition::Cmp(l, op, r) => {
                let lt = self.term(l, body)?;
                let rt = self.term(r, body)?;
                out.push(BuiltIn::new(lt, *op, rt));
                Ok(())
            }
            Condition::And(cs) => {
                for c in cs {
                    self.condition(c, body, out)?;
                }
                Ok(())
            }
            Condition::Or(_) => Err(CoreError::Invalid(
                "disjunctive selection is outside RA* (Definition 2)".into(),
            )),
        }
    }

    fn term(&self, t: &RaTerm, body: &Body) -> CoreResult<DlTerm> {
        Ok(match t {
            RaTerm::Attr(a) => DlTerm::var(body.var_of(a)?),
            RaTerm::Const(v) => DlTerm::Const(v.clone()),
        })
    }
}

/// Translates an RA\* (or RA\*⊲) expression into a Datalog\* program with
/// query predicate `Q`.
pub fn ra_to_datalog(e: &RaExpr, catalog: &Catalog) -> CoreResult<DlProgram> {
    let mut c = Compiler {
        catalog,
        rules: Vec::new(),
        next_idb: 0,
        next_var: 0,
    };
    let body = c.compile(e)?;
    let head_terms: Vec<DlTerm> = body
        .attr_vars
        .iter()
        .map(|(_, v)| DlTerm::var(v.clone()))
        .collect();
    let mut rules = c.rules;
    rules.push(Rule::new(Atom::new("Q", head_terms), body.literals));
    let program = DlProgram::new(rules);
    rd_datalog::check::check_program(&program, catalog)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::{Database, Relation, TableSchema};
    use rd_datalog::check::is_datalog_star;
    use rd_datalog::eval::eval_program;
    use rd_ra::eval::eval as ra_eval;
    use rd_ra::parser::parse as ra_parse;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
            TableSchema::new("T", ["A"]),
        ])
        .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db.add_relation(Relation::from_rows(TableSchema::new("T", ["A"]), [[1i64], [9]]).unwrap());
        db
    }

    fn agree(ra_text: &str) {
        let e = ra_parse(ra_text, &catalog()).unwrap();
        let p = ra_to_datalog(&e, &catalog()).unwrap();
        assert!(is_datalog_star(&p), "not Datalog*:\n{p}");
        let ra_out = ra_eval(&e, &db()).unwrap();
        let dl_out = eval_program(&p, &db()).unwrap();
        assert_eq!(
            &ra_out.tuples,
            dl_out.tuples(),
            "mismatch for {ra_text}\nprogram:\n{p}"
        );
    }

    #[test]
    fn spj_expressions_agree() {
        agree("pi[A](R)");
        agree("sigma[B>15](R)");
        agree("pi[A](sigma[B=10](R))");
        agree("R join[B=B2] rho[B->B2](S)");
        agree("pi[A](R) x rho[B->C](S)");
        agree("R join S");
    }

    #[test]
    fn difference_against_table_inlines_negation() {
        let e = ra_parse("pi[B](R) - S", &catalog()).unwrap();
        let p = ra_to_datalog(&e, &catalog()).unwrap();
        // The S reference must appear as a single negated EDB atom.
        assert_eq!(p.signature(), vec!["R", "S"]);
        agree("pi[B](R) - S");
    }

    #[test]
    fn division_agrees_and_preserves_signature() {
        let text = "pi[A](R) - pi[A]((pi[A](R) x S) - R)";
        let e = ra_parse(text, &catalog()).unwrap();
        let p = ra_to_datalog(&e, &catalog()).unwrap();
        let (mut a, mut b) = (p.signature(), e.signature());
        a.sort();
        b.sort();
        assert_eq!(a, b);
        agree(text);
    }

    #[test]
    fn antijoin_translates_per_theorem21() {
        let text = "R antijoin[B=B] S";
        let e = ra_parse(text, &catalog()).unwrap();
        let p = ra_to_datalog(&e, &catalog()).unwrap();
        assert!(is_datalog_star(&p));
        assert_eq!(p.signature(), vec!["R", "S"]);
        let ra_out = ra_eval(&e, &db()).unwrap();
        let dl_out = eval_program(&p, &db()).unwrap();
        assert_eq!(&ra_out.tuples, dl_out.tuples());
    }

    #[test]
    fn nested_antijoin_division_example17() {
        let text = "pi[A](R) antijoin pi[A]((pi[A](R) x S) antijoin R)";
        let e = ra_parse(text, &catalog()).unwrap();
        let p = ra_to_datalog(&e, &catalog()).unwrap();
        let (mut a, mut b) = (p.signature(), e.signature());
        a.sort();
        b.sort();
        assert_eq!(a, b);
        agree(text);
    }

    #[test]
    fn union_rejected() {
        let e = ra_parse("pi[B](R) union S", &catalog()).unwrap();
        assert!(ra_to_datalog(&e, &catalog()).is_err());
    }

    #[test]
    fn disjunctive_selection_rejected() {
        let e = ra_parse("sigma[A=1 or B=2](R)", &catalog()).unwrap();
        assert!(ra_to_datalog(&e, &catalog()).is_err());
    }
}
