//! TRC\* → Datalog\* (Appendix C, proof part 4).
//!
//! The canonical TRC\* query decomposes into *query components*, one per
//! negation scope. Each component becomes one rule whose head carries the
//! outer attribute references the component (or its descendants) uses.
//! Two repairs make components safe exactly as in the paper:
//!
//! * **case (i)** — a parameter passed *through* a component to a deeper
//!   one, without being used locally, gets an additional positive atom of
//!   its source table ("r3 ∈ R" in Example 11);
//! * **case (ii)** — a parameter connected to local tables only through a
//!   built-in (non-equality) predicate likewise gets a source-table atom
//!   ("r2 ∈ R" in Example 12).
//!
//! These repairs add table references, which is unavoidable: Datalog\*
//! cannot pattern-represent all of TRC\* (Lemma 20). When no repair fires
//! the translation is pattern-preserving.

use rd_core::{Catalog, CmpOp, CoreError, CoreResult};
use rd_datalog::ast::{Atom, BuiltIn, DlProgram, DlTerm, Literal, Rule};
use rd_trc::ast::{AttrRef, Binding, Formula, Term, TrcQuery};
use std::collections::{BTreeMap, BTreeSet};

/// Global translation state.
struct Ctx<'a> {
    catalog: &'a Catalog,
    /// Maps every tuple variable to its table (for repair atoms).
    var_tables: BTreeMap<String, String>,
    rules: Vec<Rule>,
    next_idb: usize,
}

/// Result of compiling one negation scope.
struct ScopeOut {
    idb: String,
    /// Ordered outer references the component takes as parameters.
    params: Vec<AttrRef>,
}

/// Datalog variable for an attribute reference.
fn dl_name(r: &AttrRef) -> String {
    format!("{}_{}", r.var, r.attr)
}

/// Union-find over equality classes of local positions / parameters.
#[derive(Default)]
struct Unify {
    parent: BTreeMap<String, String>,
}

impl Unify {
    fn find(&mut self, x: &str) -> String {
        let p = match self.parent.get(x) {
            Some(p) if p != x => p.clone(),
            _ => return x.to_string(),
        };
        let root = self.find(&p);
        self.parent.insert(x.to_string(), root.clone());
        root
    }

    /// Unions two names; the *second* becomes the representative (used to
    /// prefer parameter names so head variables appear in atoms).
    fn union_prefer(&mut self, a: &str, rep: &str) {
        let ra = self.find(a);
        let rb = self.find(rep);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

impl<'a> Ctx<'a> {
    fn fresh_idb(&mut self) -> String {
        self.next_idb += 1;
        format!("Q{}", self.next_idb)
    }

    /// Splits a canonical scope formula into bindings and conjuncts.
    fn split(f: &Formula) -> (Vec<Binding>, Vec<Formula>) {
        match f {
            Formula::Exists(b, body) => {
                let parts = match body.as_ref() {
                    Formula::And(fs) => fs.clone(),
                    other => vec![other.clone()],
                };
                (b.clone(), parts)
            }
            Formula::And(fs) => (Vec::new(), fs.clone()),
            other => (Vec::new(), vec![other.clone()]),
        }
    }

    /// Compiles a negation scope into a rule. `head_override` is used for
    /// the root component (output attributes instead of parameters).
    fn compile_scope(
        &mut self,
        bindings: &[Binding],
        parts: &[Formula],
        output: Option<&rd_trc::ast::OutputSpec>,
    ) -> CoreResult<ScopeOut> {
        let local: BTreeMap<String, String> = bindings
            .iter()
            .map(|b| (b.var.clone(), b.table.clone()))
            .collect();
        let is_local = |r: &AttrRef| local.contains_key(&r.var);
        let head_name = output.map(|o| o.name.clone());

        let mut unify = Unify::default();
        let mut params: Vec<AttrRef> = Vec::new();
        let mut bound_params: Vec<AttrRef> = Vec::new();
        let mut builtins: Vec<BuiltIn> = Vec::new();
        let mut neg_calls: Vec<(String, Vec<AttrRef>)> = Vec::new();
        let mut head_defs: BTreeMap<String, String> = BTreeMap::new(); // output attr -> class key

        let add_param = |params: &mut Vec<AttrRef>, r: &AttrRef| {
            if !params.contains(r) {
                params.push(r.clone());
            }
        };

        // Classify predicates.
        for part in parts {
            match part {
                Formula::Pred(p) => {
                    let head_side = |t: &Term| -> Option<AttrRef> {
                        match t {
                            Term::Attr(a) if Some(&a.var) == head_name.as_ref() => Some(a.clone()),
                            _ => None,
                        }
                    };
                    // Output-defining predicate (root scope only).
                    if let Some(h) = head_side(&p.left).or_else(|| head_side(&p.right)) {
                        let other = if head_side(&p.left).is_some() {
                            &p.right
                        } else {
                            &p.left
                        };
                        let key = match other {
                            Term::Attr(a) if is_local(a) => dl_name(a),
                            _ => {
                                return Err(CoreError::Invalid(
                                    "output attribute must be defined from a root table".into(),
                                ))
                            }
                        };
                        head_defs.insert(h.attr.clone(), key);
                        continue;
                    }
                    let loc_l = matches!(&p.left, Term::Attr(a) if is_local(a));
                    let loc_r = matches!(&p.right, Term::Attr(a) if is_local(a));
                    if !loc_l && !loc_r {
                        return Err(CoreError::Invalid(format!(
                            "unguarded predicate '{p}' — query is outside TRC* (Definition 4)"
                        )));
                    }
                    if p.op == CmpOp::Eq {
                        match (&p.left, &p.right) {
                            (Term::Attr(a), Term::Attr(b)) if loc_l && loc_r => {
                                unify.union_prefer(&dl_name(b), &dl_name(a));
                            }
                            (Term::Attr(a), Term::Attr(b)) => {
                                // One side outer: prefer the outer (param)
                                // name so the head variable is bound at the
                                // local position.
                                let (inner, outer) = if loc_l { (a, b) } else { (b, a) };
                                add_param(&mut params, outer);
                                bound_params.push(outer.clone());
                                unify.union_prefer(&dl_name(inner), &dl_name(outer));
                            }
                            (Term::Attr(a), Term::Const(c)) | (Term::Const(c), Term::Attr(a)) => {
                                builtins.push(BuiltIn::new(
                                    DlTerm::var(dl_name(a)),
                                    CmpOp::Eq,
                                    DlTerm::Const(c.clone()),
                                ));
                            }
                            _ => {
                                return Err(CoreError::Invalid(format!(
                                    "unsupported predicate shape '{p}'"
                                )))
                            }
                        }
                    } else {
                        // Non-equality built-in; outer sides become params
                        // needing a case (ii) repair if not bound elsewhere.
                        let mut term = |t: &Term| -> DlTerm {
                            match t {
                                Term::Const(c) => DlTerm::Const(c.clone()),
                                Term::Attr(a) => {
                                    if !is_local(a) {
                                        add_param(&mut params, a);
                                    }
                                    DlTerm::var(dl_name(a))
                                }
                            }
                        };
                        let l = term(&p.left);
                        let r = term(&p.right);
                        builtins.push(BuiltIn::new(l, p.op, r));
                    }
                }
                Formula::Not(inner) => {
                    let (b2, p2) = Self::split(inner);
                    let child = self.compile_scope(&b2, &p2, None)?;
                    // Child params referencing *our* locals are supplied
                    // locally; others pass through and become our params.
                    for r in &child.params {
                        if !is_local(r) {
                            add_param(&mut params, r);
                        }
                    }
                    neg_calls.push((child.idb, child.params));
                }
                Formula::Or(_) => {
                    return Err(CoreError::Invalid(
                        "disjunction is outside TRC* (Definition 4)".into(),
                    ))
                }
                other => {
                    return Err(CoreError::Invalid(format!(
                        "unexpected canonical part: {other:?}"
                    )))
                }
            }
        }

        let _ = bound_params; // superseded by the class analysis below

        // Resolution: decide one Datalog variable per parameter.
        //
        // A parameter is *bound* if its equality class contains a local
        // atom position (the class representative then appears inside a
        // positive atom). Two parameters sharing a class would produce a
        // repeated head variable; the later one keeps its own name, gets a
        // source-table repair atom (case i/ii) plus an explicit equality
        // built-in to the class representative. Parameters with no local
        // equality at all (pass-through / built-in-only) are repaired the
        // same way.
        let local_reps: BTreeSet<String> = bindings
            .iter()
            .flat_map(|b| {
                let schema = self.catalog.table(&b.table);
                let attrs: Vec<String> = schema.map(|s| s.attrs().to_vec()).unwrap_or_default();
                attrs
                    .into_iter()
                    .map(|a| dl_name(&AttrRef::new(b.var.clone(), a)))
                    .collect::<Vec<_>>()
            })
            .map(|key| unify.find(&key))
            .collect();
        let param_names: BTreeSet<String> = params.iter().map(dl_name).collect();
        let mut param_term: BTreeMap<AttrRef, String> = BTreeMap::new();
        let mut taken: BTreeSet<String> = BTreeSet::new();
        let mut repairs: Vec<&AttrRef> = Vec::new();
        let mut extra_eqs: Vec<BuiltIn> = Vec::new();
        // Pass A: a parameter whose own name is its class representative
        // (and the class touches a local position) owns that name.
        for p in &params {
            let n = dl_name(p);
            if unify.find(&n) == n && local_reps.contains(&n) {
                param_term.insert(p.clone(), n.clone());
                taken.insert(n);
            }
        }
        // Pass B: remaining parameters take their representative if free
        // and not another parameter's name; otherwise they are repaired.
        for p in &params {
            if param_term.contains_key(p) {
                continue;
            }
            let n = dl_name(p);
            let rep = unify.find(&n);
            if local_reps.contains(&rep) && !taken.contains(&rep) && !param_names.contains(&rep) {
                param_term.insert(p.clone(), rep.clone());
                taken.insert(rep);
            } else {
                // Repair atom binds the parameter's own name (cases i/ii).
                param_term.insert(p.clone(), n.clone());
                repairs.push(p);
                if rep != n && local_reps.contains(&rep) {
                    extra_eqs.push(BuiltIn::new(DlTerm::var(n), CmpOp::Eq, DlTerm::var(rep)));
                }
            }
        }
        let mut repair_atoms: Vec<Atom> = Vec::new();
        for p in repairs {
            let table = self.var_tables.get(&p.var).ok_or_else(|| {
                CoreError::Invalid(format!("unknown source table for parameter {p}"))
            })?;
            let schema = self.catalog.require(table)?;
            let idx = schema
                .attr_index(&p.attr)
                .ok_or_else(|| CoreError::UnknownAttribute {
                    table: table.clone(),
                    attribute: p.attr.clone(),
                })?;
            let terms: Vec<DlTerm> = (0..schema.arity())
                .map(|i| {
                    if i == idx {
                        DlTerm::var(dl_name(p))
                    } else {
                        DlTerm::Wildcard
                    }
                })
                .collect();
            repair_atoms.push(Atom::new(table.clone(), terms));
        }

        // Resolver for raw variable names: parameters map to their chosen
        // term, everything else goes through the union-find.
        let param_by_name: BTreeMap<String, String> = params
            .iter()
            .map(|p| (dl_name(p), param_term[p].clone()))
            .collect();

        // Assemble local atoms with unified variable names.
        let mut body: Vec<Literal> = Vec::new();
        for b in bindings {
            let schema = self.catalog.require(&b.table)?;
            let terms: Vec<DlTerm> = schema
                .attrs()
                .iter()
                .map(|a| {
                    let key = dl_name(&AttrRef::new(b.var.clone(), a.clone()));
                    DlTerm::var(unify.find(&key))
                })
                .collect();
            body.push(Literal::Pos(Atom::new(b.table.clone(), terms)));
        }
        body.extend(repair_atoms.into_iter().map(Literal::Pos));
        for bi in builtins {
            let mut fix = |t: DlTerm| match t {
                DlTerm::Var(v) => DlTerm::Var(match param_by_name.get(&v) {
                    Some(t) => t.clone(),
                    None => unify.find(&v),
                }),
                other => other,
            };
            let left = fix(bi.left);
            let right = fix(bi.right);
            body.push(Literal::Cmp(BuiltIn::new(left, bi.op, right)));
        }
        body.extend(extra_eqs.into_iter().map(Literal::Cmp));
        for (idb, child_params) in &neg_calls {
            let args: Vec<DlTerm> = child_params
                .iter()
                .map(|r| {
                    if is_local(r) {
                        DlTerm::Var(unify.find(&dl_name(r)))
                    } else {
                        DlTerm::Var(param_term[r].clone())
                    }
                })
                .collect();
            body.push(Literal::Neg(Atom::new(idb.clone(), args)));
        }

        // Head.
        let (idb, head_terms) = match output {
            Some(o) => {
                let mut terms = Vec::with_capacity(o.attrs.len());
                for attr in &o.attrs {
                    let key = head_defs.get(attr).ok_or_else(|| {
                        CoreError::Invalid(format!(
                            "output attribute '{attr}' has no defining equality"
                        ))
                    })?;
                    terms.push(DlTerm::Var(unify.find(key)));
                }
                ("Q".to_string(), terms)
            }
            None => {
                let idb = self.fresh_idb();
                let terms: Vec<DlTerm> = params
                    .iter()
                    .map(|r| DlTerm::Var(param_term[r].clone()))
                    .collect();
                (idb, terms)
            }
        };
        self.rules
            .push(Rule::new(Atom::new(idb.clone(), head_terms), body));
        Ok(ScopeOut { idb, params })
    }
}

/// Translates a TRC\* query (or Boolean sentence) into a Datalog\*
/// program. The query predicate is `Q` (zero-ary for sentences).
pub fn trc_to_datalog(q: &TrcQuery, catalog: &Catalog) -> CoreResult<DlProgram> {
    if !rd_trc::check::is_nondisjunctive(q) {
        return Err(CoreError::Invalid(
            "query is outside TRC* (Definition 4): disjunctive or unguarded".into(),
        ));
    }
    let canon = rd_trc::canon::canonicalize(q);
    let mut ctx = Ctx {
        catalog,
        var_tables: rd_trc::check::var_tables(&canon)?,
        rules: Vec::new(),
        next_idb: 0,
    };
    let (bindings, parts) = Ctx::split(&canon.formula);
    match &canon.output {
        Some(head) => {
            ctx.compile_scope(&bindings, &parts, Some(head))?;
        }
        None => {
            // Sentence: a zero-ary root component named Q.
            let out = ctx.compile_scope(&bindings, &parts, None)?;
            if !out.params.is_empty() {
                return Err(CoreError::Invalid(
                    "sentence root scope cannot reference outer variables".into(),
                ));
            }
            // Rename the root component to Q.
            let idb = out.idb.clone();
            for rule in &mut ctx.rules {
                if rule.head.pred == idb {
                    rule.head.pred = "Q".to_string();
                }
            }
        }
    }
    // Children were emitted before parents; the query rule is last.
    let mut rules = ctx.rules;
    for rule in &mut rules {
        wildcardize(rule);
    }
    let mut program = DlProgram::new(rules);
    program.query = "Q".to_string();
    rd_datalog::check::check_program(&program, catalog)?;
    Ok(program)
}

/// Replaces variables that occur exactly once in a rule (necessarily in a
/// positive atom) with the anonymous `_`. This matches the paper's
/// convention (`R(x, _)`) and matters downstream: the eq. (5) complement
/// set `z` in the Datalog→RA translation only counts *named* variables.
fn wildcardize(rule: &mut Rule) {
    use std::collections::HashMap;
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut bump = |t: &DlTerm| {
        if let DlTerm::Var(v) = t {
            *counts.entry(v.clone()).or_default() += 1;
        }
    };
    for t in &rule.head.terms {
        bump(t);
    }
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => a.terms.iter().for_each(&mut bump),
            Literal::Cmp(b) => {
                bump(&b.left);
                bump(&b.right);
            }
        }
    }
    for lit in &mut rule.body {
        if let Literal::Pos(a) = lit {
            for t in &mut a.terms {
                if let DlTerm::Var(v) = t {
                    if counts.get(v) == Some(&1) {
                        *t = DlTerm::Wildcard;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::{Database, Relation, TableSchema};
    use rd_datalog::check::is_datalog_star;
    use rd_datalog::eval::eval_program;
    use rd_trc::eval::{eval_query, eval_sentence};
    use rd_trc::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
            TableSchema::new("T", ["A"]),
            TableSchema::new("U", ["A"]),
        ])
        .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db.add_relation(Relation::from_rows(TableSchema::new("T", ["A"]), [[1i64], [9]]).unwrap());
        db.add_relation(Relation::from_rows(TableSchema::new("U", ["A"]), [[2i64]]).unwrap());
        db
    }

    fn agree(trc_text: &str) -> DlProgram {
        let q = parse_query(trc_text, &catalog()).unwrap();
        let p = trc_to_datalog(&q, &catalog()).unwrap();
        assert!(is_datalog_star(&p), "not Datalog*:\n{p}");
        let trc_out = eval_query(&q, &db()).unwrap();
        let dl_out = eval_program(&p, &db()).unwrap();
        assert_eq!(
            trc_out.tuples(),
            dl_out.tuples(),
            "mismatch for {trc_text}\nprogram:\n{p}"
        );
        p
    }

    #[test]
    fn conjunctive_query() {
        let p = agree("{ q(A) | exists r in R, s in S [ q.A = r.A and r.B = s.B ] }");
        assert_eq!(p.signature(), vec!["R", "S"]);
    }

    #[test]
    fn single_negation_pattern_preserved() {
        let p =
            agree("{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ s.B = r.B ]) ] }");
        let mut sig = p.signature();
        sig.sort();
        assert_eq!(sig, vec!["R", "S"]);
    }

    #[test]
    fn division_triggers_case_i_repair() {
        // Eq. (14): the join r2.A = r.A crosses two negations; Datalog*
        // needs an extra R reference (Example 11 / Lemma 20).
        let p = agree(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
        );
        assert_eq!(p.signature().len(), 4); // R, S, R + one repair R
        assert_eq!(
            p.signature().iter().filter(|t| *t == "R").count(),
            3,
            "expected 3 R references as in eq. (16):\n{p}"
        );
    }

    #[test]
    fn builtin_crossing_triggers_case_ii_repair() {
        // Example 12: values of T with no smaller value in S.
        let p =
            agree("{ q(A) | exists t in T [ q.A = t.A and not (exists s in S [ s.B < t.A ]) ] }");
        // T, S plus one repair T (the paper's Q1(x) :- R(x), S(y), x > y).
        assert_eq!(p.signature().iter().filter(|t| *t == "T").count(), 2);
    }

    #[test]
    fn selection_constants_and_theta_joins() {
        agree("{ q(A) | exists r in R [ q.A = r.A and r.B = 10 ] }");
        agree("{ q(A) | exists r in R, s in S [ q.A = r.A and r.B > s.B ] }");
        agree("{ q(A) | exists r in R [ q.A = r.A and r.B != 10 and r.B < 25 ] }");
    }

    #[test]
    fn sentences_translate_to_boolean_programs() {
        let cat = catalog();
        for (text, expected) in [
            ("exists r in R [ r.A = 3 ]", true),
            ("exists r in R [ r.A = 99 ]", false),
            (
                "not (exists r in R [ not (exists s in S [ s.B = r.B ]) ])",
                false,
            ),
        ] {
            let q = parse_query(text, &cat).unwrap();
            let p = trc_to_datalog(&q, &cat).unwrap();
            let out = eval_program(&p, &db()).unwrap();
            assert_eq!(!out.is_empty(), expected, "sentence: {text}\n{p}");
            assert_eq!(
                eval_sentence(&q, &db()).unwrap(),
                expected,
                "TRC eval disagrees for {text}"
            );
        }
    }

    #[test]
    fn double_negation_empty_partition() {
        // ∃r∈R[q.A=r.A ∧ ¬(¬(∃t∈T[t.A = r.A]))] — Fig. 5's q1-style empty
        // partition.
        let p = agree(
            "{ q(A) | exists r in R [ q.A = r.A and not (not (exists t in T [ t.A = r.A ])) ] }",
        );
        assert!(p.rules.len() >= 3);
    }

    #[test]
    fn multiple_children_and_shared_params() {
        agree(
            "{ q(A) | exists r in R [ q.A = r.A and \
             not (exists s in S [ s.B = r.B ]) and \
             not (exists t in T [ t.A = r.A ]) ] }",
        );
    }

    #[test]
    fn local_equality_chains_unify() {
        let mut d = db();
        d.relation_mut("R")
            .unwrap()
            .insert_values([5i64, 5])
            .unwrap();
        let q = parse_query(
            "{ q(A) | exists r in R, s in S [ q.A = r.A and r.A = r.B and r.B = s.B ] }",
            &catalog(),
        )
        .unwrap();
        let p = trc_to_datalog(&q, &catalog()).unwrap();
        let a = eval_query(&q, &d).unwrap();
        let b = eval_program(&p, &d).unwrap();
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn rejects_disjunctive_or_unguarded() {
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and (r.B = 1 or r.B = 2) ] }",
            &catalog(),
        )
        .unwrap();
        assert!(trc_to_datalog(&q, &catalog()).is_err());
        let q = rd_trc::parser::parse_query_unchecked(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ r.A = 0 and s.B = r.B ]) ] }",
        )
        .unwrap();
        assert!(trc_to_datalog(&q, &catalog()).is_err());
    }
}
