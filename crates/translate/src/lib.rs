//! # rd-translate — cross-language translations (Theorems 6 & 21)
//!
//! Implements the constructive translations from the proofs in Appendix C
//! and Appendix G.1 of the paper:
//!
//! | direction | module | pattern-preserving? |
//! |-----------|--------|---------------------|
//! | RA\* → Datalog\* | [`ra_to_datalog`](mod@ra_to_datalog) | yes (proof part 1) |
//! | Datalog\* → RA\* | [`datalog_to_ra`](mod@datalog_to_ra) | no — eq. (5) may duplicate positives (Lemma 19) |
//! | Datalog\* → RA\*⊲ | [`datalog_to_ra`](mod@datalog_to_ra) (antijoin mode) | yes (Theorem 21) |
//! | Datalog\* → TRC\* | [`datalog_to_trc`](mod@datalog_to_trc) | yes (proof part 3) |
//! | TRC\* → Datalog\* | [`trc_to_datalog`](mod@trc_to_datalog) | no — safety repairs may add references (cases i/ii, Lemma 20) |
//! | TRC\* ↔ SQL\* | re-exported from `rd-sql` | yes, 1-to-1 (proof part 5) |
//!
//! TRC\* serves as the hub: any fragment query can be carried into any of
//! the other languages by composing these maps, and [`differential`]
//! provides the Theorem 6 checker that evaluates all four translations on
//! (random or exhaustive) databases and compares results.

pub mod datalog_to_ra;
pub mod datalog_to_trc;
pub mod differential;
pub mod ra_to_datalog;
pub mod trc_to_datalog;

pub use datalog_to_ra::{datalog_to_ra, datalog_to_ra_antijoin};
pub use datalog_to_trc::datalog_to_trc;
pub use differential::{check_equivalent_results, FourWay};
pub use ra_to_datalog::ra_to_datalog;
pub use trc_to_datalog::trc_to_datalog;
