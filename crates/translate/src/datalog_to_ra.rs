//! Datalog\* → RA (Appendix C, proof part 2) in two modes:
//!
//! * **basic** ([`datalog_to_ra`]): only the RA\* operators, using the
//!   eq. (5) construction for negated atoms — when the negated atom binds
//!   only a strict subset `y` of the positive variables, the complement
//!   set `z` is supplied by a cartesian product with a projection of the
//!   positive side. This *duplicates table references* and is therefore
//!   not pattern-preserving (the content of Lemma 19).
//! * **antijoin** ([`datalog_to_ra_antijoin`]): the RA\*⊲ construction of
//!   Theorem 21 part 2, eq. (10) — each negated atom becomes one antijoin,
//!   preserving the signature.
//!
//! IDB atoms are inlined (each IDB is used at most once in Datalog\*), so
//! the output is a single expression.

use rd_core::{Catalog, CmpOp, CoreError, CoreResult};
use rd_datalog::ast::{Atom, DlProgram, DlTerm, Literal, Rule};
use rd_ra::ast::{Condition, JoinCond, RaExpr, RaTerm};
use std::collections::BTreeMap;

/// Translation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Basic,
    Antijoin,
}

/// Translates a Datalog\* program to basic RA\* (union-free, conjunctive
/// selections). Logic-preserving; may duplicate table references (eq. 5).
pub fn datalog_to_ra(p: &DlProgram, catalog: &Catalog) -> CoreResult<RaExpr> {
    translate(p, catalog, Mode::Basic)
}

/// Translates a Datalog\* program to RA\*⊲ (with antijoins), preserving
/// the signature (Theorem 21).
pub fn datalog_to_ra_antijoin(p: &DlProgram, catalog: &Catalog) -> CoreResult<RaExpr> {
    translate(p, catalog, Mode::Antijoin)
}

fn translate(p: &DlProgram, catalog: &Catalog, mode: Mode) -> CoreResult<RaExpr> {
    rd_datalog::check::check_program(p, catalog)?;
    if !rd_datalog::check::is_datalog_star(p) {
        return Err(CoreError::Invalid(
            "program is outside Datalog* (Definition 1); RA* cannot express its disjunction".into(),
        ));
    }
    // Translate IDBs in dependency order; store normalized expressions
    // with canonical attribute names c1..ck.
    let mut idb_exprs: BTreeMap<String, RaExpr> = BTreeMap::new();
    for idb in rd_datalog::check::topo_order(p) {
        let rule = p
            .rules
            .iter()
            .find(|r| r.head.pred == idb)
            .expect("topo order lists defined IDBs");
        let expr = rule_to_ra(rule, catalog, &idb_exprs, mode)?;
        idb_exprs.insert(idb, expr);
    }
    idb_exprs
        .remove(&p.query)
        .ok_or_else(|| CoreError::Invalid(format!("query IDB '{}' missing", p.query)))
}

/// Canonical attribute name for position `i` (0-based).
fn canon_attr(i: usize) -> String {
    format!("c{}", i + 1)
}

/// Builds the RA expression for one atom occurrence: attributes renamed to
/// the atom's variable names, constants and repeated variables folded into
/// selections, wildcards dropped via projection.
fn atom_expr(
    atom: &Atom,
    catalog: &Catalog,
    idb_exprs: &BTreeMap<String, RaExpr>,
    uniq: &mut usize,
) -> CoreResult<RaExpr> {
    let (mut expr, attrs): (RaExpr, Vec<String>) = match idb_exprs.get(&atom.pred) {
        Some(e) => {
            let arity = atom.terms.len();
            (e.clone(), (0..arity).map(canon_attr).collect())
        }
        None => {
            let schema = catalog.require(&atom.pred)?;
            (RaExpr::table(&atom.pred), schema.attrs().to_vec())
        }
    };
    // Step 1: rename every position to a unique placeholder.
    let placeholders: Vec<String> = (0..atom.terms.len())
        .map(|_| {
            *uniq += 1;
            format!("p{uniq}")
        })
        .collect();
    expr = RaExpr::rename(
        attrs.iter().cloned().zip(placeholders.iter().cloned()),
        expr,
    );
    // Step 2: selections for constants and repeated variables.
    let mut first_pos: BTreeMap<&str, usize> = BTreeMap::new();
    let mut conds = Vec::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            DlTerm::Const(c) => conds.push(Condition::Cmp(
                RaTerm::attr(placeholders[i].clone()),
                CmpOp::Eq,
                RaTerm::Const(c.clone()),
            )),
            DlTerm::Var(v) => match first_pos.get(v.as_str()) {
                Some(&j) => conds.push(Condition::Cmp(
                    RaTerm::attr(placeholders[i].clone()),
                    CmpOp::Eq,
                    RaTerm::attr(placeholders[j].clone()),
                )),
                None => {
                    first_pos.insert(v, i);
                }
            },
            DlTerm::Wildcard => {}
        }
    }
    if !conds.is_empty() {
        expr = RaExpr::select(Condition::And(conds), expr);
    }
    // Step 3: project the first occurrence of each variable and rename to
    // the variable names.
    let mut keep: Vec<(String, String)> = Vec::new(); // (placeholder, var)
    for (i, term) in atom.terms.iter().enumerate() {
        if let DlTerm::Var(v) = term {
            if first_pos.get(v.as_str()) == Some(&i) {
                keep.push((placeholders[i].clone(), v.clone()));
            }
        }
    }
    if keep.is_empty() {
        // All-wildcard atom (e.g. `T(_)` in eq. 3): keep one column under a
        // synthetic name; the cross join acts as the non-emptiness check
        // and the head projection removes the column again.
        *uniq += 1;
        keep.push((placeholders[0].clone(), format!("w{uniq}")));
    }
    expr = RaExpr::project(keep.iter().map(|(p, _)| p.clone()), expr);
    expr = RaExpr::rename(keep, expr);
    Ok(expr)
}

fn rule_to_ra(
    rule: &Rule,
    catalog: &Catalog,
    idb_exprs: &BTreeMap<String, RaExpr>,
    mode: Mode,
) -> CoreResult<RaExpr> {
    let mut uniq = 0usize;
    // Join positive atoms naturally (shared variable names join).
    let mut positive: Option<RaExpr> = None;
    for lit in &rule.body {
        if let Literal::Pos(atom) = lit {
            let e = atom_expr(atom, catalog, idb_exprs, &mut uniq)?;
            positive = Some(match positive {
                Some(acc) => RaExpr::natural_join(acc, e),
                None => e,
            });
        }
    }
    let positive =
        positive.ok_or_else(|| CoreError::Invalid("rule without positive atoms".into()))?;
    let pos_schema = positive.schema(catalog)?;

    let mut expr = positive.clone();
    for lit in &rule.body {
        if let Literal::Neg(atom) = lit {
            let natom = atom_expr(atom, catalog, idb_exprs, &mut uniq)?;
            let neg_vars = natom.schema(catalog)?;
            match mode {
                Mode::Antijoin => {
                    // eq. (10): one antijoin per negated atom on the
                    // shared variables.
                    let cond = JoinCond(
                        neg_vars
                            .iter()
                            .map(|v| (v.clone(), CmpOp::Eq, v.clone()))
                            .collect(),
                    );
                    expr = RaExpr::antijoin(cond, expr, natom);
                }
                Mode::Basic => {
                    // eq. (5): complement-pad the negated side with z (the
                    // positive variables it misses), then subtract.
                    let z: Vec<String> = pos_schema
                        .iter()
                        .filter(|a| !neg_vars.contains(a))
                        .cloned()
                        .collect();
                    let padded = if z.is_empty() {
                        natom
                    } else {
                        RaExpr::product(natom, RaExpr::project(z, positive.clone()))
                    };
                    // Align attribute order with the current expression.
                    let cur_schema = expr.schema(catalog)?;
                    let aligned = RaExpr::project(cur_schema.clone(), padded);
                    expr = RaExpr::diff(expr, aligned);
                }
            }
        }
    }
    // Built-ins become selections.
    let mut conds = Vec::new();
    for b in rule.builtins() {
        let term = |t: &DlTerm| -> CoreResult<RaTerm> {
            Ok(match t {
                DlTerm::Var(v) => RaTerm::attr(v.clone()),
                DlTerm::Const(c) => RaTerm::Const(c.clone()),
                DlTerm::Wildcard => return Err(CoreError::Invalid("wildcard in built-in".into())),
            })
        };
        conds.push(Condition::Cmp(term(&b.left)?, b.op, term(&b.right)?));
    }
    if !conds.is_empty() {
        expr = RaExpr::select(Condition::And(conds), expr);
    }
    // Project the head variables (in head order) and normalize names.
    let head_vars: Vec<String> = rule
        .head
        .terms
        .iter()
        .map(|t| match t {
            DlTerm::Var(v) => Ok(v.clone()),
            other => Err(CoreError::Invalid(format!(
                "head term {other} is not a variable (constants in heads unsupported)"
            ))),
        })
        .collect::<CoreResult<_>>()?;
    // Reject duplicate head variables (q(x,x)): RA projection would need
    // a copy operator.
    for (i, v) in head_vars.iter().enumerate() {
        if head_vars[..i].contains(v) {
            return Err(CoreError::Invalid(format!(
                "duplicate head variable '{v}' unsupported in RA translation"
            )));
        }
    }
    expr = RaExpr::project(head_vars.clone(), expr);
    expr = RaExpr::rename(
        head_vars
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, canon_attr(i))),
        expr,
    );
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::{Database, Relation, TableSchema};
    use rd_datalog::eval::eval_program;
    use rd_datalog::parser::parse_program;
    use rd_ra::check::{is_ra_star, is_ra_star_antijoin};
    use rd_ra::eval::eval as ra_eval;

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
            TableSchema::new("T", ["A"]),
        ])
        .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db.add_relation(Relation::from_rows(TableSchema::new("T", ["A"]), [[1i64], [9]]).unwrap());
        db
    }

    fn agree_both_modes(program: &str) {
        let p = parse_program(program, &catalog()).unwrap();
        let dl_out = eval_program(&p, &db()).unwrap();
        for (name, expr) in [
            ("basic", datalog_to_ra(&p, &catalog()).unwrap()),
            ("antijoin", datalog_to_ra_antijoin(&p, &catalog()).unwrap()),
        ] {
            let ra_out = ra_eval(&expr, &db()).unwrap();
            assert_eq!(
                &ra_out.tuples,
                dl_out.tuples(),
                "{name} mode mismatch for program:\n{program}\nexpr: {expr}"
            );
        }
    }

    #[test]
    fn conjunctive_rules_agree() {
        agree_both_modes("Q(x) :- R(x, y), S(y).");
        agree_both_modes("Q(x, y) :- R(x, y), y > 15.");
        agree_both_modes("Q(x) :- R(x, 10).");
        agree_both_modes("Q(x) :- R(x, _), T(x).");
    }

    #[test]
    fn fig13g_negation_needs_padding_in_basic_mode() {
        // Q(x,y) :- R(x,y), ¬S(y)  (eq. 8, Lemma 19's witness)
        let p = parse_program("Q(x, y) :- R(x, y), not S(y).", &catalog()).unwrap();
        let basic = datalog_to_ra(&p, &catalog()).unwrap();
        assert!(is_ra_star(&basic));
        // Basic mode duplicates R (the paper's point):
        assert!(basic.signature().len() > p.signature().len());
        // Antijoin mode preserves the signature (Theorem 21):
        let anti = datalog_to_ra_antijoin(&p, &catalog()).unwrap();
        assert!(is_ra_star_antijoin(&anti));
        assert_eq!(anti.signature(), vec!["R", "S"]);
        agree_both_modes("Q(x, y) :- R(x, y), not S(y).");
    }

    #[test]
    fn division_agrees() {
        agree_both_modes("I(x) :- R(x, _), S(y), not R(x, y).\nQ(x) :- R(x, _), not I(x).");
    }

    #[test]
    fn equal_schema_negation_stays_pattern_preserving_in_basic_mode() {
        // ¬ atom binds ALL positive variables: z = ∅, no duplication.
        let p = parse_program("Q(y) :- S(y), not R(1, y).", &catalog()).unwrap();
        let basic = datalog_to_ra(&p, &catalog()).unwrap();
        assert_eq!(basic.signature(), vec!["S", "R"]);
        agree_both_modes("Q(y) :- S(y), not R(1, y).");
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut d = db();
        d.relation_mut("R")
            .unwrap()
            .insert_values([7i64, 7])
            .unwrap();
        let p = parse_program("Q(x) :- R(x, x).", &catalog()).unwrap();
        let e = datalog_to_ra(&p, &catalog()).unwrap();
        let out = ra_eval(&e, &d).unwrap();
        assert_eq!(out.tuples.len(), 1);
    }

    #[test]
    fn disjunctive_program_rejected() {
        let p =
            rd_datalog::parser::parse_program_unchecked("Q(x) :- R(x, _).\nQ(x) :- T(x).").unwrap();
        assert!(datalog_to_ra(&p, &catalog()).is_err());
    }

    #[test]
    fn builtin_only_connection_example12() {
        // Q1(x) :- R(x), S(y), x > y  over unary R — use T(A) as unary here.
        agree_both_modes("Q(x) :- T(x), S(y), x > y.");
    }
}
