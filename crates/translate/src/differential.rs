//! Theorem 6 as an executable check: translate a TRC\* query into all four
//! languages and compare the evaluations over databases.

use rd_core::{Catalog, CoreResult, Database, Tuple};
use rd_datalog::ast::DlProgram;
use rd_ra::ast::RaExpr;
use rd_sql::ast::SqlUnion;
use rd_trc::ast::{TrcQuery, TrcUnion};
use std::collections::BTreeSet;

/// A TRC\* query carried into all four languages (plus RA\*⊲).
#[derive(Debug, Clone)]
pub struct FourWay {
    /// The source TRC\* query.
    pub trc: TrcQuery,
    /// Datalog\* program (via the Appendix C part-4 translation).
    pub datalog: DlProgram,
    /// Basic RA\* expression (via Datalog, eq. 5).
    pub ra: RaExpr,
    /// RA\*⊲ expression (antijoins, Theorem 21).
    pub ra_antijoin: RaExpr,
    /// Canonical SQL\*.
    pub sql: SqlUnion,
}

impl FourWay {
    /// Builds all translations from a TRC\* query.
    pub fn from_trc(q: &TrcQuery, catalog: &Catalog) -> CoreResult<FourWay> {
        let datalog = crate::trc_to_datalog::trc_to_datalog(q, catalog)?;
        let ra = crate::datalog_to_ra::datalog_to_ra(&datalog, catalog)?;
        let ra_antijoin = crate::datalog_to_ra::datalog_to_ra_antijoin(&datalog, catalog)?;
        let sql = SqlUnion::single(rd_sql::translate::trc_to_sql(q)?);
        Ok(FourWay {
            trc: q.clone(),
            datalog,
            ra,
            ra_antijoin,
            sql,
        })
    }

    /// Evaluates all five representations on `db` and returns the five
    /// result tuple-sets (TRC, Datalog, RA, RA⊲, SQL).
    pub fn eval_all(&self, db: &Database) -> CoreResult<Vec<BTreeSet<Tuple>>> {
        let trc = rd_trc::eval::eval_query(&self.trc, db)?.tuples().clone();
        let dl = rd_datalog::eval::eval_program(&self.datalog, db)?
            .tuples()
            .clone();
        let ra = rd_ra::eval::eval(&self.ra, db)?.tuples;
        let raa = rd_ra::eval::eval(&self.ra_antijoin, db)?.tuples;
        let sql = rd_sql::translate::eval_sql(&self.sql, db)?.tuples().clone();
        Ok(vec![trc, dl, ra, raa, sql])
    }
}

/// Evaluates all translations of `q` on every database produced by `dbs`
/// and returns `Ok(count)` when all agree, or the offending database.
pub fn check_equivalent_results<I: IntoIterator<Item = Database>>(
    q: &TrcQuery,
    catalog: &Catalog,
    dbs: I,
) -> Result<usize, Box<(Database, String)>> {
    let four = match FourWay::from_trc(q, catalog) {
        Ok(f) => f,
        Err(e) => {
            return Err(Box::new((
                Database::new(),
                format!("translation failed: {e}"),
            )))
        }
    };
    let mut count = 0usize;
    for db in dbs {
        let results = match four.eval_all(&db) {
            Ok(r) => r,
            Err(e) => return Err(Box::new((db, format!("evaluation failed: {e}")))),
        };
        let first = &results[0];
        for (i, r) in results.iter().enumerate().skip(1) {
            if r != first {
                let lang = ["TRC", "Datalog", "RA", "RA-antijoin", "SQL"][i];
                return Err(Box::new((
                    db,
                    format!("{lang} disagrees with TRC: {r:?} vs {first:?}"),
                )));
            }
        }
        count += 1;
    }
    Ok(count)
}

/// Translates a TRC union into a SQL union (re-export convenience used by
/// benches; unions are outside the Datalog\*/RA\* fragments).
pub fn trc_union_to_sql(u: &TrcUnion) -> CoreResult<SqlUnion> {
    rd_sql::translate::trc_union_to_sql(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rd_core::{DbGenerator, TableSchema};
    use rd_trc::parser::parse_query;
    use rd_trc::random::{GenConfig, QueryGenerator};

    fn catalog() -> Catalog {
        Catalog::from_schemas([
            TableSchema::new("R", ["A", "B"]),
            TableSchema::new("S", ["B"]),
            TableSchema::new("T", ["A"]),
        ])
        .unwrap()
    }

    #[test]
    fn division_agrees_everywhere_on_random_dbs() {
        let q = parse_query(
            "{ q(A) | exists r in R [ q.A = r.A and not (exists s in S [ \
             not (exists r2 in R [ r2.B = s.B and r2.A = r.A ]) ]) ] }",
            &catalog(),
        )
        .unwrap();
        let gen = DbGenerator::with_int_domain(catalog(), 3, 4, 99);
        let n = check_equivalent_results(&q, &catalog(), gen.take(60))
            .unwrap_or_else(|e| panic!("counterexample: {}\n{}", e.1, e.0));
        assert_eq!(n, 60);
    }

    #[test]
    fn random_trc_star_queries_agree_across_languages() {
        // The Theorem 6 differential test, seeded and bounded.
        let mut qgen = QueryGenerator::new(catalog(), GenConfig::default(), 2024);
        for i in 0..25 {
            let q = qgen.next_query();
            let dbs = DbGenerator::with_int_domain(catalog(), 3, 3, 1000 + i);
            check_equivalent_results(&q, &catalog(), dbs.take(15))
                .unwrap_or_else(|e| panic!("query {i} ({q}) disagrees: {}\non db\n{}", e.1, e.0));
        }
    }

    #[test]
    fn theta_join_queries_agree() {
        let q = parse_query(
            "{ q(A) | exists t in T [ q.A = t.A and not (exists s in S [ s.B < t.A ]) ] }",
            &catalog(),
        )
        .unwrap();
        let gen = DbGenerator::with_int_domain(catalog(), 4, 3, 7);
        assert_eq!(
            check_equivalent_results(&q, &catalog(), gen.take(40))
                .map_err(|e| e.1)
                .unwrap(),
            40
        );
    }
}
