//! Differential check for the cost-based join orderer: DP-ordered
//! plans, greedy-ordered plans, and plans compiled against an
//! uninterned copy of the database must all produce identical results
//! in all four languages (plus RA\*⊲) — the optimizer may only change
//! *how* a query runs, never *what* it returns. Also pins the DP
//! orderer's choice on a skewed three-relation fixture where the
//! syntactic scan order is catastrophically bad.

use rd_core::exec::{self, Plan};
use rd_core::plan::{OrderStrategy, PlanHints, PlannerOpts};
use rd_core::{Catalog, Database, DbGenerator, Relation, TableSchema, Tuple};
use rd_translate::FourWay;
use rd_trc::ast::TrcUnion;
use rd_trc::random::{GenConfig, QueryGenerator};
use std::collections::BTreeSet;

fn catalog() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("R", ["A", "B"]),
        TableSchema::new("S", ["B"]),
        TableSchema::new("T", ["A"]),
    ])
    .unwrap()
}

fn greedy() -> PlannerOpts {
    PlannerOpts {
        strategy: OrderStrategy::Greedy,
        ..PlannerOpts::default()
    }
}

/// Rebuilds `db` without a symbol table: raw string storage, same
/// content. Lowering consults per-relation statistics and interned
/// constants, so plans compiled against this copy must still agree.
fn uninterned_copy(db: &Database) -> Database {
    let mut raw = Database::uninterned();
    for schema in db.catalog().iter() {
        let rel = db.require(schema.name()).unwrap();
        raw.add_relation(db.resolve_relation(rel));
    }
    raw
}

/// Lowers every representation of `four` with `opts`, executes on
/// `db`, and returns the symbol-resolved result sets, labeled.
fn eval_all(
    four: &FourWay,
    db: &Database,
    opts: &PlannerOpts,
) -> Vec<(&'static str, BTreeSet<Tuple>)> {
    let hints = PlanHints::default();
    let plans: Vec<(&'static str, Plan)> = vec![
        (
            "trc",
            rd_trc::eval::lower_union_with(&TrcUnion::single(four.trc.clone()), db, opts, &hints)
                .expect("trc lowering"),
        ),
        (
            "datalog",
            Plan::Program(
                rd_datalog::eval::lower_program_with(&four.datalog, db, opts, &hints)
                    .expect("datalog lowering"),
            ),
        ),
        (
            "ra",
            rd_ra::eval::lower_with(&four.ra, db, opts, &hints).expect("ra lowering"),
        ),
        (
            "ra-antijoin",
            rd_ra::eval::lower_with(&four.ra_antijoin, db, opts, &hints)
                .expect("ra-antijoin lowering"),
        ),
        (
            "sql",
            rd_sql::translate::lower_sql_with(&four.sql, db, opts, &hints).expect("sql lowering"),
        ),
    ];
    plans
        .into_iter()
        .map(|(lang, plan)| {
            let rel = exec::execute(&plan, db).expect("execution");
            let tuples = rel.tuples().iter().map(|t| db.resolve_tuple(t)).collect();
            (lang, tuples)
        })
        .collect()
}

/// The property: over random TRC\* queries and random databases, every
/// (language × strategy × interning) combination returns the same rows.
#[test]
fn dp_greedy_and_uninterned_agree_across_languages() {
    let mut qgen = QueryGenerator::new(catalog(), GenConfig::default(), 4242);
    for i in 0..15u64 {
        let q = qgen.next_query();
        let four = FourWay::from_trc(&q, &catalog())
            .unwrap_or_else(|e| panic!("query {i} ({q}) failed to translate: {e}"));
        let mut dbs = DbGenerator::with_int_domain(catalog(), 3, 4, 9000 + i);
        for round in 0..8 {
            let db = dbs.next_db();
            let raw = uninterned_copy(&db);
            let baseline = eval_all(&four, &db, &PlannerOpts::default());
            let expected = &baseline[0].1;
            for (variant, results) in [
                ("dp", &baseline),
                ("greedy", &eval_all(&four, &db, &greedy())),
                (
                    "dp+uninterned",
                    &eval_all(&four, &raw, &PlannerOpts::default()),
                ),
                ("greedy+uninterned", &eval_all(&four, &raw, &greedy())),
            ] {
                for (lang, tuples) in results {
                    assert_eq!(
                        tuples, expected,
                        "query {i} ({q}), db round {round}, {variant}/{lang} \
                         disagrees with dp/trc on\n{db}"
                    );
                }
            }
        }
    }
}

/// A skewed three-relation instance: R is large with a near-constant
/// join column B, S is tiny, T is small and highly selective against
/// R.A. The syntactic order (R first) enumerates all of R before any
/// filtering.
fn skewed_db() -> Database {
    let mut db = Database::new();
    db.add_relation(
        Relation::from_rows(
            TableSchema::new("R", ["A", "B"]),
            (0..10_000i64).map(|i| [i, i % 2]).collect::<Vec<_>>(),
        )
        .unwrap(),
    );
    db.add_relation(
        Relation::from_rows(
            TableSchema::new("S", ["B"]),
            (0..5i64).map(|i| [i]).collect::<Vec<_>>(),
        )
        .unwrap(),
    );
    db.add_relation(
        Relation::from_rows(
            TableSchema::new("T", ["A"]),
            (0..100i64).map(|i| [i * 3]).collect::<Vec<_>>(),
        )
        .unwrap(),
    );
    db
}

/// Scan order (relation names) of the single conjunctive block in a
/// lowered TRC query plan.
fn scan_order(plan: &Plan) -> Vec<String> {
    match plan {
        Plan::Union(branches) => {
            assert_eq!(branches.len(), 1, "fixture query has one branch");
            branches[0]
                .root
                .scans
                .iter()
                .map(|s| s.rel.clone())
                .collect()
        }
        other => panic!("expected a union plan, got {other:?}"),
    }
}

/// Pins the DP orderer's decision on the skewed fixture: the written
/// order leads with the 10k-row R, but T⋈R keeps only ~100 rows while
/// S⋈R keeps all 10k, so the cheapest left-deep order starts at T,
/// probes R keyed on A, then probes S keyed on B. Greedy (size-ordered
/// seed) starts from tiny S instead — the estimator-blind choice this
/// PR replaces.
#[test]
fn dp_picks_the_selective_order_on_the_skewed_fixture() {
    let db = skewed_db();
    let q = rd_trc::parser::parse_query(
        "{ q(A) | exists r in R, s in S, t in T [ \
           q.A = r.A and r.B = s.B and r.A = t.A ] }",
        &db.catalog(),
    )
    .unwrap();
    let union = TrcUnion::single(q);
    let dp =
        rd_trc::eval::lower_union_with(&union, &db, &PlannerOpts::default(), &PlanHints::default())
            .unwrap();
    assert_eq!(
        scan_order(&dp),
        ["T", "R", "S"],
        "DP must start from the selective T⋈R edge"
    );
    let greedy_plan =
        rd_trc::eval::lower_union_with(&union, &db, &greedy(), &PlanHints::default()).unwrap();
    assert_ne!(
        scan_order(&greedy_plan)[0],
        "R",
        "even greedy must not lead with the 10k-row scan"
    );
    // Both orders agree on the result, and the estimate is sane: the
    // true join has 100 rows (every T.A hits R, every R.B hits S).
    let a = exec::execute(&dp, &db).unwrap();
    let b = exec::execute(&greedy_plan, &db).unwrap();
    assert_eq!(a.tuples(), b.tuples());
    assert_eq!(a.len(), 100);
}
