//! Structural classification of corpus queries into the six
//! representations of Fig. 10.
//!
//! All classifiers are computed, not curated:
//!
//! * **Relational Diagrams** — every union branch lies in TRC\*
//!   (Theorem 14: TRC\* ≡rep RD\*; union cells handle the root union);
//! * **non-disjunctive fragment** — a single TRC\* branch;
//! * **QueryVis** — non-disjunctive, nesting depth < 4, no empty
//!   negation scopes, not a Boolean sentence, no union (§7.2);
//! * **Datalog** — no disjunction anywhere (body disjunction does not
//!   exist; §6.1), and the Appendix C part-4 translation preserves the
//!   number of table references (no safety repair fired); root unions are
//!   fine (repeated head IDB);
//! * **QBE** — as Datalog for the non-disjunctive structure (QBE shares
//!   Datalog's safety conditions) but with antijoin-level pattern power
//!   (Theorem 21: RA\*⊲ ≡rep Datalog\*) and same-relation disjunction
//!   allowed;
//! * **RA** — as QBE minus the antijoin: additionally the eq. (5)
//!   Datalog→RA translation must not duplicate references (Lemma 19), but
//!   with predicate-level disjunction allowed (`σ` conditions may use ∨).

use crate::corpus::{corpus, Book, CorpusEntry};
use rd_core::Catalog;
use rd_trc::ast::{Formula, TrcQuery, TrcUnion};
use serde::Serialize;
use std::collections::BTreeSet;

/// Which representations can express the query pattern-isomorphically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Classification {
    /// Relational Diagrams (§3 + §5 union cells).
    pub relational_diagrams: bool,
    /// The non-disjunctive fragment (TRC\*).
    pub nondisjunctive: bool,
    /// QueryVis \[26\].
    pub queryvis: bool,
    /// QBE \[81\].
    pub qbe: bool,
    /// Relational algebra (basic operators + ∪ + disjunctive selections).
    pub ra: bool,
    /// Datalog¬ (standard, no body disjunction).
    pub datalog: bool,
}

/// Classifies one corpus entry.
pub fn classify(entry: &CorpusEntry) -> Classification {
    let u = entry.parse();
    let catalog = entry.book.catalog();
    classify_union(&u, &catalog)
}

/// Classifies a parsed union against a catalog.
pub fn classify_union(u: &TrcUnion, catalog: &Catalog) -> Classification {
    let branches = &u.branches;
    let single = branches.len() == 1;
    let all_star = branches.iter().all(rd_trc::check::is_nondisjunctive);

    let relational_diagrams = all_star; // union cells cover multi-branch
    let nondisjunctive = single && all_star;
    let queryvis = nondisjunctive
        && branches[0].formula.negation_depth() < 4
        && !branches[0].is_sentence()
        && no_empty_scopes(&branches[0].formula);

    let mut datalog = true;
    let mut qbe = true;
    let mut ra = true;
    for b in branches {
        let (d, q, r) = classify_branch(b, catalog);
        datalog &= d;
        qbe &= q;
        ra &= r;
    }
    Classification {
        relational_diagrams,
        nondisjunctive,
        queryvis,
        qbe,
        ra,
        datalog,
    }
}

/// Returns (datalog, qbe, ra) for one branch.
fn classify_branch(b: &TrcQuery, catalog: &Catalog) -> (bool, bool, bool) {
    if b.formula.contains_or() {
        // Datalog has no body disjunction; splitting rules duplicates
        // references (§6.1 "Standard Datalog cannot express disjunctions
        // in the body").
        let datalog = false;
        // Predicate-level disjunction (no quantifiers inside the ∨, no
        // enclosing negation) is a disjunctive selection in RA.
        let pred_only = or_nodes_pred_only(&b.formula) && b.formula.negation_depth() == 0;
        let ra = pred_only;
        // QBE can express disjunction only "within the same relation"
        // (§6.1): all attributes in the ∨ must belong to one tuple
        // variable.
        let qbe = pred_only && or_nodes_single_var(&b.formula);
        return (datalog, qbe, ra);
    }
    // Non-disjunctive branch: run the constructive translations and check
    // for reference duplication.
    let n = b.signature().len();
    match rd_translate::trc_to_datalog(b, catalog) {
        Ok(program) => {
            let datalog = program.signature().len() == n;
            // QBE ≈ RA*⊲: the antijoin translation is pattern-preserving
            // whenever the Datalog one is (Theorem 21).
            let qbe = datalog;
            let ra = datalog
                && match rd_translate::datalog_to_ra(&program, catalog) {
                    Ok(expr) => expr.signature().len() == n,
                    Err(_) => false,
                };
            (datalog, qbe, ra)
        }
        Err(_) => (false, false, false),
    }
}

fn no_empty_scopes(f: &Formula) -> bool {
    match f {
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(no_empty_scopes),
        Formula::Not(inner) => {
            // QueryVis grouping boxes need at least one relation (§7.2).
            matches!(inner.as_ref(), Formula::Exists(..)) && no_empty_scopes(inner)
        }
        Formula::Exists(_, body) => no_empty_scopes(body),
        Formula::Pred(_) => true,
    }
}

fn or_nodes_pred_only(f: &Formula) -> bool {
    fn pred_only(f: &Formula) -> bool {
        match f {
            Formula::Pred(_) => true,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(pred_only),
            _ => false,
        }
    }
    match f {
        Formula::Or(fs) => fs.iter().all(pred_only),
        Formula::And(fs) => fs.iter().all(or_nodes_pred_only),
        Formula::Not(inner) => or_nodes_pred_only(inner),
        Formula::Exists(_, body) => or_nodes_pred_only(body),
        Formula::Pred(_) => true,
    }
}

fn or_nodes_single_var(f: &Formula) -> bool {
    fn vars_of(f: &Formula, out: &mut BTreeSet<String>) {
        f.visit_predicates(&mut |p| {
            for v in p.vars() {
                out.insert(v.clone());
            }
        });
    }
    match f {
        Formula::Or(_) => {
            let mut vars = BTreeSet::new();
            vars_of(f, &mut vars);
            vars.len() <= 1
        }
        Formula::And(fs) => fs.iter().all(or_nodes_single_var),
        Formula::Not(inner) => or_nodes_single_var(inner),
        Formula::Exists(_, body) => or_nodes_single_var(body),
        Formula::Pred(_) => true,
    }
}

/// The Fig. 10 aggregate: counts of representable queries per language.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// Total queries (59).
    pub total: usize,
    /// Count per representation, in the figure's order.
    pub relational_diagrams: usize,
    /// Non-disjunctive fragment count.
    pub nondisjunctive: usize,
    /// QueryVis count.
    pub queryvis: usize,
    /// QBE count.
    pub qbe: usize,
    /// RA count.
    pub ra: usize,
    /// Datalog count.
    pub datalog: usize,
    /// Per-book breakdown `(book, total, rd, nd, qv, qbe, ra, datalog)`.
    pub per_book: Vec<(String, usize, [usize; 6])>,
}

impl Fig10 {
    /// Renders the figure as paper-style rows.
    pub fn render(&self) -> String {
        let pct = |n: usize| format!("{n} ({:.0}%)", 100.0 * n as f64 / self.total as f64);
        let mut rows = [
            ("Datalog", self.datalog),
            ("Relational Algebra", self.ra),
            ("QBE", self.qbe),
            ("QueryVis", self.queryvis),
            ("Non-disjunctive fragment", self.nondisjunctive),
            ("Relational Diagrams", self.relational_diagrams),
        ];
        rows.sort_by_key(|(_, n)| *n);
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 10 — fraction among {} queries from 5 textbooks with\n\
             pattern-isomorphic representations in the listed languages:\n\n",
            self.total
        ));
        for (name, n) in rows {
            let bar = "█".repeat(n * 40 / self.total);
            out.push_str(&format!("{:<26} {:>9}  {bar}\n", name, pct(n)));
        }
        out
    }
}

/// Classifies the whole corpus and aggregates the Fig. 10 counts.
pub fn fig10_counts() -> Fig10 {
    let entries = corpus();
    let mut fig = Fig10 {
        total: entries.len(),
        relational_diagrams: 0,
        nondisjunctive: 0,
        queryvis: 0,
        qbe: 0,
        ra: 0,
        datalog: 0,
        per_book: Vec::new(),
    };
    for book in Book::ALL {
        let mut counts = [0usize; 6];
        let mut total = 0usize;
        for e in entries.iter().filter(|e| e.book == book) {
            total += 1;
            let c = classify(e);
            fig.relational_diagrams += c.relational_diagrams as usize;
            fig.nondisjunctive += c.nondisjunctive as usize;
            fig.queryvis += c.queryvis as usize;
            fig.qbe += c.qbe as usize;
            fig.ra += c.ra as usize;
            fig.datalog += c.datalog as usize;
            counts[0] += c.relational_diagrams as usize;
            counts[1] += c.nondisjunctive as usize;
            counts[2] += c.queryvis as usize;
            counts[3] += c.qbe as usize;
            counts[4] += c.ra as usize;
            counts[5] += c.datalog as usize;
        }
        fig.per_book.push((book.name().to_string(), total, counts));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_counts_match_the_paper() {
        let fig = fig10_counts();
        assert_eq!(fig.total, 59);
        assert_eq!(fig.relational_diagrams, 56, "RD count");
        assert_eq!(fig.nondisjunctive, 53, "non-disjunctive fragment count");
        assert_eq!(fig.queryvis, 53, "QueryVis count");
        assert_eq!(fig.qbe, 49, "QBE count");
        assert_eq!(fig.ra, 48, "RA count");
        assert_eq!(fig.datalog, 47, "Datalog count");
    }

    #[test]
    fn division_queries_fail_datalog_qbe_ra() {
        let entries = corpus();
        for id in ["q18", "q19", "q22", "q33", "q42", "q50", "q51"] {
            let e = entries.iter().find(|e| e.id == id).unwrap();
            let c = classify(e);
            assert!(c.relational_diagrams, "{id} should be RD-representable");
            assert!(c.nondisjunctive, "{id} should be in the fragment");
            assert!(!c.datalog, "{id} should fail Datalog");
            assert!(!c.qbe, "{id} should fail QBE");
            assert!(!c.ra, "{id} should fail RA");
        }
    }

    #[test]
    fn antijoin_level_queries_fail_only_ra() {
        for id in ["q16", "q17"] {
            let e = corpus().into_iter().find(|e| e.id == id).unwrap();
            let c = classify(&e);
            assert!(c.datalog, "{id} should pass Datalog");
            assert!(c.qbe, "{id} should pass QBE");
            assert!(!c.ra, "{id} should fail RA (Lemma 19 pattern)");
        }
    }

    #[test]
    fn union_queries_fail_only_fragment_and_queryvis() {
        for id in ["q23", "q24", "q32"] {
            let e = corpus().into_iter().find(|e| e.id == id).unwrap();
            let c = classify(&e);
            assert!(c.relational_diagrams, "{id}");
            assert!(!c.nondisjunctive, "{id}");
            assert!(!c.queryvis, "{id}");
            assert!(c.qbe, "{id}");
            assert!(c.ra, "{id}");
            assert!(c.datalog, "{id}");
        }
    }

    #[test]
    fn same_relation_disjunction_passes_qbe_and_ra_not_datalog() {
        for id in ["q41", "q49"] {
            let e = corpus().into_iter().find(|e| e.id == id).unwrap();
            let c = classify(&e);
            assert!(!c.relational_diagrams, "{id}");
            assert!(c.qbe, "{id}");
            assert!(c.ra, "{id}");
            assert!(!c.datalog, "{id}");
        }
    }

    #[test]
    fn cross_relation_disjunction_passes_only_ra() {
        let e = corpus().into_iter().find(|e| e.id == "q25").unwrap();
        let c = classify(&e);
        assert!(!c.relational_diagrams);
        assert!(!c.qbe);
        assert!(c.ra);
        assert!(!c.datalog);
    }

    #[test]
    fn plain_queries_pass_everywhere() {
        for id in ["q01", "q09", "q13", "q28", "q38", "q47", "q56", "q59"] {
            let e = corpus().into_iter().find(|e| e.id == id).unwrap();
            let c = classify(&e);
            assert!(
                c.relational_diagrams
                    && c.nondisjunctive
                    && c.queryvis
                    && c.qbe
                    && c.ra
                    && c.datalog,
                "{id} should be representable everywhere: {c:?}"
            );
        }
    }

    #[test]
    fn render_contains_paper_percentages() {
        let text = fig10_counts().render();
        assert!(text.contains("56 (95%)"));
        assert!(text.contains("53 (90%)"));
        assert!(text.contains("47 (80%)"));
    }
}
