//! The five textbook schemas (§6.1 / Appendix N).

use rd_core::{Catalog, TableSchema};

/// Ramakrishnan & Gehrke ("cow book"): the sailors database.
pub fn sailors() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("Sailors", ["sid", "sname", "rating", "age"]),
        TableSchema::new("Boats", ["bid", "bname", "color"]),
        TableSchema::new("Reserves", ["sid", "bid", "day"]),
    ])
    .unwrap()
}

/// Silberschatz, Korth & Sudarshan ("sailboat book"): the bank database.
pub fn bank() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("Branch", ["bname", "bcity", "assets"]),
        TableSchema::new("Customer", ["cname", "street", "ccity"]),
        TableSchema::new("Loan", ["lno", "bname", "amount"]),
        TableSchema::new("Borrower", ["cname", "lno"]),
        TableSchema::new("Account", ["ano", "bname", "balance"]),
        TableSchema::new("Depositor", ["cname", "ano"]),
    ])
    .unwrap()
}

/// Elmasri & Navathe: the company database.
pub fn company() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("Employee", ["ssn", "fname", "lname", "salary", "dno"]),
        TableSchema::new("Department", ["dnumber", "dname", "mgrssn"]),
        TableSchema::new("Project", ["pnumber", "pname", "dnum"]),
        TableSchema::new("WorksOn", ["essn", "pno", "hours"]),
    ])
    .unwrap()
}

/// Date: the suppliers-and-parts database.
pub fn suppliers() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new("S", ["sno", "sname", "status", "city"]),
        TableSchema::new("P", ["pno", "pname", "color", "pcity"]),
        TableSchema::new("SP", ["sno", "pno", "qty"]),
    ])
    .unwrap()
}

/// Connolly & Begg: the DreamHome database.
pub fn dreamhome() -> Catalog {
    Catalog::from_schemas([
        TableSchema::new(
            "Staff",
            ["staffNo", "fName", "position", "salary", "branchNo"],
        ),
        TableSchema::new("BranchB", ["branchNo", "street", "city"]),
        TableSchema::new(
            "PropertyForRent",
            ["propertyNo", "pcity", "rent", "staffNo"],
        ),
        TableSchema::new("Client", ["clientNo", "cfName", "maxRent"]),
        TableSchema::new("Viewing", ["clientNo", "propertyNo", "comment"]),
    ])
    .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemas_build() {
        assert_eq!(sailors().len(), 3);
        assert_eq!(bank().len(), 6);
        assert_eq!(company().len(), 4);
        assert_eq!(suppliers().len(), 3);
        assert_eq!(dreamhome().len(), 5);
    }
}
