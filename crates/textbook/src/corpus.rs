//! The reconstructed 59-query corpus.
//!
//! Queries are stored in the ASCII TRC surface syntax (the paper's §6.1
//! corpus lists each query in its textbook's original language; TRC is the
//! hub from which our classifiers compute every other representation).

use crate::schemas;
use rd_core::Catalog;
use rd_trc::ast::TrcUnion;
use serde::Serialize;

/// The five textbooks of §6.1 / Appendix N.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Book {
    /// Ramakrishnan & Gehrke, *Database Management Systems* ("cow book").
    Ramakrishnan,
    /// Silberschatz, Korth & Sudarshan, *Database System Concepts*.
    Silberschatz,
    /// Elmasri & Navathe, *Fundamentals of Database Systems*.
    Elmasri,
    /// Date, *An Introduction to Database Systems*.
    Date,
    /// Connolly & Begg, *Database Systems*.
    Connolly,
}

impl Book {
    /// All five books in paper order.
    pub const ALL: [Book; 5] = [
        Book::Ramakrishnan,
        Book::Silberschatz,
        Book::Elmasri,
        Book::Date,
        Book::Connolly,
    ];

    /// The book's schema catalog.
    pub fn catalog(&self) -> Catalog {
        match self {
            Book::Ramakrishnan => schemas::sailors(),
            Book::Silberschatz => schemas::bank(),
            Book::Elmasri => schemas::company(),
            Book::Date => schemas::suppliers(),
            Book::Connolly => schemas::dreamhome(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Book::Ramakrishnan => "Ramakrishnan & Gehrke",
            Book::Silberschatz => "Silberschatz et al.",
            Book::Elmasri => "Elmasri & Navathe",
            Book::Date => "Date",
            Book::Connolly => "Connolly & Begg",
        }
    }
}

/// One corpus query.
#[derive(Debug, Clone, Serialize)]
pub struct CorpusEntry {
    /// Corpus id, `q01`–`q59`.
    pub id: &'static str,
    /// Source textbook.
    pub book: Book,
    /// Natural-language description.
    pub description: &'static str,
    /// The query in TRC surface syntax (unions use `union`).
    pub trc: &'static str,
}

impl CorpusEntry {
    /// Parses the entry against its book's catalog.
    pub fn parse(&self) -> TrcUnion {
        rd_trc::parser::parse_union(self.trc, &self.book.catalog()).unwrap_or_else(|e| {
            panic!("corpus entry {} fails to parse: {e}\n{}", self.id, self.trc)
        })
    }
}

macro_rules! entry {
    ($id:literal, $book:expr, $desc:literal, $trc:literal) => {
        CorpusEntry {
            id: $id,
            book: $book,
            description: $desc,
            trc: $trc,
        }
    };
}

/// The full 59-query corpus.
pub fn corpus() -> Vec<CorpusEntry> {
    use Book::*;
    vec![
        // --- Ramakrishnan & Gehrke (25 queries, sailors schema) -------
        entry!("q01", Ramakrishnan, "Names of sailors with rating above 7",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and s.rating > 7 ] }"),
        entry!("q02", Ramakrishnan, "Names of sailors with rating above 7 and age below 30",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and s.rating > 7 and s.age < 30 ] }"),
        entry!("q03", Ramakrishnan, "Names of sailors who have reserved boat 103",
            "{ q(sname) | exists s in Sailors, r in Reserves [ q.sname = s.sname and s.sid = r.sid and r.bid = 103 ] }"),
        entry!("q04", Ramakrishnan, "Names of sailors who have reserved a red boat",
            "{ q(sname) | exists s in Sailors, r in Reserves, b in Boats [ q.sname = s.sname and s.sid = r.sid and r.bid = b.bid and b.color = 'red' ] }"),
        entry!("q05", Ramakrishnan, "Colors of boats reserved by Lubber",
            "{ q(color) | exists s in Sailors, r in Reserves, b in Boats [ q.color = b.color and s.sname = 'Lubber' and s.sid = r.sid and r.bid = b.bid ] }"),
        entry!("q06", Ramakrishnan, "Names of sailors who have reserved at least one boat",
            "{ q(sname) | exists s in Sailors, r in Reserves [ q.sname = s.sname and s.sid = r.sid ] }"),
        entry!("q07", Ramakrishnan, "Names of sailors who reserved a boat on day 8",
            "{ q(sname) | exists s in Sailors, r in Reserves [ q.sname = s.sname and s.sid = r.sid and r.day = 8 ] }"),
        entry!("q08", Ramakrishnan, "Ids of boats reserved by a sailor with rating 10",
            "{ q(bid) | exists s in Sailors, r in Reserves [ q.bid = r.bid and s.sid = r.sid and s.rating = 10 ] }"),
        entry!("q09", Ramakrishnan, "Ids of boats that are not reserved",
            "{ q(bid) | exists b in Boats [ q.bid = b.bid and not (exists r in Reserves [ r.bid = b.bid ]) ] }"),
        entry!("q10", Ramakrishnan, "Ids of sailors who have not reserved boat 103",
            "{ q(sid) | exists s in Sailors [ q.sid = s.sid and not (exists r in Reserves [ r.sid = s.sid and r.bid = 103 ]) ] }"),
        entry!("q11", Ramakrishnan, "Ids of sailors without any reservation",
            "{ q(sid) | exists s in Sailors [ q.sid = s.sid and not (exists r in Reserves [ r.sid = s.sid ]) ] }"),
        entry!("q12", Ramakrishnan, "Names of sailors who reserved the boat named Interlake",
            "{ q(sname) | exists s in Sailors, r in Reserves, b in Boats [ q.sname = s.sname and s.sid = r.sid and r.bid = b.bid and b.bname = 'Interlake' ] }"),
        entry!("q13", Ramakrishnan, "All (sailor id, boat id) reservation pairs",
            "{ q(sid, bid) | exists r in Reserves [ q.sid = r.sid and q.bid = r.bid ] }"),
        entry!("q14", Ramakrishnan, "Names of sailors older than the sailor named Bob",
            "{ q(sname) | exists s in Sailors, s2 in Sailors [ q.sname = s.sname and s2.sname = 'Bob' and s.age > s2.age ] }"),
        entry!("q15", Ramakrishnan, "Pairs of sailor and boat names connected by a reservation",
            "{ q(sname, bname) | exists s in Sailors, r in Reserves, b in Boats [ q.sname = s.sname and q.bname = b.bname and s.sid = r.sid and r.bid = b.bid ] }"),
        entry!("q16", Ramakrishnan, "Names of sailors who have reserved no boat",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and not (exists r in Reserves [ r.sid = s.sid ]) ] }"),
        entry!("q17", Ramakrishnan, "Names of sailors who have not reserved a red boat",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and not (exists r in Reserves, b in Boats [ r.sid = s.sid and r.bid = b.bid and b.color = 'red' ]) ] }"),
        entry!("q18", Ramakrishnan, "Names of sailors who have reserved all boats (Q9, §4.3.1)",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and not (exists b in Boats [ not (exists r in Reserves [ r.sid = s.sid and r.bid = b.bid ]) ]) ] }"),
        entry!("q19", Ramakrishnan, "Names of sailors who have reserved all red boats",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and not (exists b in Boats [ b.color = 'red' and not (exists r in Reserves [ r.sid = s.sid and r.bid = b.bid ]) ]) ] }"),
        entry!("q20", Ramakrishnan, "Names of sailors with the highest rating",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and not (exists s2 in Sailors [ s2.rating > s.rating ]) ] }"),
        entry!("q21", Ramakrishnan, "Names of sailors rating no lower than any sailor named Bob",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and not (exists s2 in Sailors [ s2.sname = 'Bob' and s2.rating > s.rating ]) ] }"),
        entry!("q22", Ramakrishnan, "Ids of boats reserved by all sailors",
            "{ q(bid) | exists b in Boats [ q.bid = b.bid and not (exists s in Sailors [ not (exists r in Reserves [ r.bid = b.bid and r.sid = s.sid ]) ]) ] }"),
        entry!("q23", Ramakrishnan, "Names of sailors with rating above 9 or who reserved boat 103",
            "{ q(sname) | exists s in Sailors [ q.sname = s.sname and s.rating > 9 ] } union \
             { q(sname) | exists s in Sailors, r in Reserves [ q.sname = s.sname and s.sid = r.sid and r.bid = 103 ] }"),
        entry!("q24", Ramakrishnan, "Ids of red boats or boats reserved on day 5",
            "{ q(bid) | exists b in Boats [ q.bid = b.bid and b.color = 'red' ] } union \
             { q(bid) | exists r in Reserves [ q.bid = r.bid and r.day = 5 ] }"),
        entry!("q25", Ramakrishnan, "Names of sailors who reserved their own-numbered boat or some boat 103 (mixed-relation disjunction)",
            "{ q(sname) | exists s in Sailors, r in Reserves, b in Boats [ q.sname = s.sname and (r.sid = s.sid or b.bid = 103) ] }"),
        // --- Silberschatz et al. (8 queries, bank schema) -------------
        entry!("q26", Silberschatz, "Customers who have a loan",
            "{ q(cname) | exists b in Borrower [ q.cname = b.cname ] }"),
        entry!("q27", Silberschatz, "Loan numbers at Perryridge with amount above 1200",
            "{ q(lno) | exists l in Loan [ q.lno = l.lno and l.bname = 'Perryridge' and l.amount > 1200 ] }"),
        entry!("q28", Silberschatz, "Customers with an account but no loan",
            "{ q(cname) | exists d in Depositor [ q.cname = d.cname and not (exists b in Borrower [ b.cname = d.cname ]) ] }"),
        entry!("q29", Silberschatz, "Branches with assets above 1000000",
            "{ q(bname) | exists b in Branch [ q.bname = b.bname and b.assets > 1000000 ] }"),
        entry!("q30", Silberschatz, "Harrison customers holding an account",
            "{ q(cname) | exists c in Customer, d in Depositor [ q.cname = c.cname and d.cname = c.cname and c.ccity = 'Harrison' ] }"),
        entry!("q31", Silberschatz, "Account numbers with balance below 500",
            "{ q(ano) | exists a in Account [ q.ano = a.ano and a.balance < 500 ] }"),
        entry!("q32", Silberschatz, "Customers with a loan or an account",
            "{ q(cname) | exists b in Borrower [ q.cname = b.cname ] } union \
             { q(cname) | exists d in Depositor [ q.cname = d.cname ] }"),
        entry!("q33", Silberschatz, "Customers with an account at every Brooklyn branch",
            "{ q(cname) | exists d in Depositor [ q.cname = d.cname and not (exists br in Branch [ br.bcity = 'Brooklyn' and \
             not (exists a in Account, d2 in Depositor [ d2.cname = d.cname and d2.ano = a.ano and a.bname = br.bname ]) ]) ] }"),
        // --- Elmasri & Navathe (9 queries, company schema) ------------
        entry!("q34", Elmasri, "Employees of department 5 earning above 30000",
            "{ q(lname) | exists e in Employee [ q.lname = e.lname and e.dno = 5 and e.salary > 30000 ] }"),
        entry!("q35", Elmasri, "Employees working on project 10",
            "{ q(lname) | exists e in Employee, w in WorksOn [ q.lname = e.lname and w.essn = e.ssn and w.pno = 10 ] }"),
        entry!("q36", Elmasri, "Employees working on the ProductX project",
            "{ q(lname) | exists e in Employee, w in WorksOn, p in Project [ q.lname = e.lname and w.essn = e.ssn and w.pno = p.pnumber and p.pname = 'ProductX' ] }"),
        entry!("q37", Elmasri, "Departments managed by an employee named Smith",
            "{ q(dname) | exists d in Department, e in Employee [ q.dname = d.dname and d.mgrssn = e.ssn and e.lname = 'Smith' ] }"),
        entry!("q38", Elmasri, "Ssns of employees working on no project",
            "{ q(ssn) | exists e in Employee [ q.ssn = e.ssn and not (exists w in WorksOn [ w.essn = e.ssn ]) ] }"),
        entry!("q39", Elmasri, "Employees earning more than their department's manager",
            "{ q(lname) | exists e in Employee, d in Department, m in Employee [ q.lname = e.lname and e.dno = d.dnumber and d.mgrssn = m.ssn and e.salary > m.salary ] }"),
        entry!("q40", Elmasri, "Projects of the Research department",
            "{ q(pname) | exists p in Project, d in Department [ q.pname = p.pname and p.dnum = d.dnumber and d.dname = 'Research' ] }"),
        entry!("q41", Elmasri, "Employees in department 4 or department 5",
            "{ q(lname) | exists e in Employee [ q.lname = e.lname and (e.dno = 4 or e.dno = 5) ] }"),
        entry!("q42", Elmasri, "Employees who work on all projects of department 5",
            "{ q(lname) | exists e in Employee [ q.lname = e.lname and not (exists p in Project [ p.dnum = 5 and \
             not (exists w in WorksOn [ w.essn = e.ssn and w.pno = p.pnumber ]) ]) ] }"),
        // --- Date (9 queries, suppliers-and-parts schema) -------------
        entry!("q43", Date, "Names of suppliers located in London",
            "{ q(sname) | exists s in S [ q.sname = s.sname and s.city = 'London' ] }"),
        entry!("q44", Date, "Numbers of suppliers who supply part P2",
            "{ q(sno) | exists sp in SP [ q.sno = sp.sno and sp.pno = 2 ] }"),
        entry!("q45", Date, "Numbers of parts supplied by supplier S1",
            "{ q(pno) | exists sp in SP [ q.pno = sp.pno and sp.sno = 1 ] }"),
        entry!("q46", Date, "Names of suppliers who supply a red part",
            "{ q(sname) | exists s in S, sp in SP, p in P [ q.sname = s.sname and sp.sno = s.sno and sp.pno = p.pno and p.color = 'red' ] }"),
        entry!("q47", Date, "Numbers of suppliers who supply nothing",
            "{ q(sno) | exists s in S [ q.sno = s.sno and not (exists sp in SP [ sp.sno = s.sno ]) ] }"),
        entry!("q48", Date, "Supplier-part pairs with quantity above 300",
            "{ q(sno, pno) | exists sp in SP [ q.sno = sp.sno and q.pno = sp.pno and sp.qty > 300 ] }"),
        entry!("q49", Date, "Names of parts that are red or blue",
            "{ q(pname) | exists p in P [ q.pname = p.pname and (p.color = 'red' or p.color = 'blue') ] }"),
        entry!("q50", Date, "Supplier names for suppliers who supply all parts (8.3.6)",
            "{ q(sname) | exists s in S [ q.sname = s.sname and not (exists p in P [ \
             not (exists sp in SP [ sp.sno = s.sno and sp.pno = p.pno ]) ]) ] }"),
        entry!("q51", Date, "Supplier names for suppliers who supply all red parts",
            "{ q(sname) | exists s in S [ q.sname = s.sname and not (exists p in P [ p.color = 'red' and \
             not (exists sp in SP [ sp.sno = s.sno and sp.pno = p.pno ]) ]) ] }"),
        // --- Connolly & Begg (8 queries, DreamHome schema) ------------
        entry!("q52", Connolly, "Staff with salary above 25000",
            "{ q(fName) | exists st in Staff [ q.fName = st.fName and st.salary > 25000 ] }"),
        entry!("q53", Connolly, "Properties in Glasgow",
            "{ q(propertyNo) | exists p in PropertyForRent [ q.propertyNo = p.propertyNo and p.pcity = 'Glasgow' ] }"),
        entry!("q54", Connolly, "Staff working at branch B003",
            "{ q(fName) | exists st in Staff [ q.fName = st.fName and st.branchNo = 'B003' ] }"),
        entry!("q55", Connolly, "Clients who viewed property PG4",
            "{ q(cfName) | exists c in Client, v in Viewing [ q.cfName = c.cfName and v.clientNo = c.clientNo and v.propertyNo = 'PG4' ] }"),
        entry!("q56", Connolly, "Property numbers never viewed",
            "{ q(propertyNo) | exists p in PropertyForRent [ q.propertyNo = p.propertyNo and not (exists v in Viewing [ v.propertyNo = p.propertyNo ]) ] }"),
        entry!("q57", Connolly, "Staff managing a property with rent above 400",
            "{ q(fName) | exists st in Staff, p in PropertyForRent [ q.fName = st.fName and p.staffNo = st.staffNo and p.rent > 400 ] }"),
        entry!("q58", Connolly, "Clients with maximum rent above 600",
            "{ q(cfName) | exists c in Client [ q.cfName = c.cfName and c.maxRent > 600 ] }"),
        entry!("q59", Connolly, "Branches located in London",
            "{ q(branchNo) | exists b in BranchB [ q.branchNo = b.branchNo and b.city = 'London' ] }"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_59_entries_with_paper_book_counts() {
        let c = corpus();
        assert_eq!(c.len(), 59);
        let count = |b: Book| c.iter().filter(|e| e.book == b).count();
        assert_eq!(count(Book::Ramakrishnan), 25);
        assert_eq!(count(Book::Silberschatz), 8);
        assert_eq!(count(Book::Elmasri), 9);
        assert_eq!(count(Book::Date), 9);
        assert_eq!(count(Book::Connolly), 8);
    }

    #[test]
    fn every_entry_parses_and_checks() {
        for e in corpus() {
            let u = e.parse();
            assert!(!u.branches.is_empty(), "{} empty", e.id);
        }
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let c = corpus();
        for (i, e) in c.iter().enumerate() {
            assert_eq!(e.id, format!("q{:02}", i + 1));
        }
    }
}
