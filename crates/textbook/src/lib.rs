//! # rd-textbook — the 59-query textbook corpus (§6.1, Fig. 10)
//!
//! The paper analyzes 59 relational-calculus queries from five database
//! textbooks and reports, for each of six representations, how many have
//! *pattern-isomorphic* representations (Fig. 10):
//!
//! | representation | queries | fraction |
//! |---|---|---|
//! | Relational Diagrams | 56 | 95% |
//! | non-disjunctive fragment | 53 | 90% |
//! | QueryVis | 53 | 90% |
//! | QBE | 49 | 83% |
//! | RA | 48 | 81% |
//! | Datalog | 47 | 80% |
//!
//! The exact query texts live on OSF and are not reproduced in the paper;
//! this crate ships a *reconstructed* corpus over the same five schemas
//! (sailors, bank, company, suppliers–parts, DreamHome) whose feature mix
//! matches the published counts (see DESIGN.md §4, substitution 2).
//! Classification is **computed structurally** by [`classify()`](classify::classify), not
//! hard-coded: Datalog representability runs the Appendix C part-4
//! translation and checks whether a safety repair fired; RA additionally
//! runs the eq. (5) translation and checks for reference duplication; QBE
//! is modeled as RA\*⊲ plus same-relation disjunction (§6.1).

pub mod classify;
pub mod corpus;
pub mod schemas;

pub use classify::{classify, fig10_counts, Classification, Fig10};
pub use corpus::{corpus, Book, CorpusEntry};
