//! # rd-datalog — non-recursive Datalog with negation and Datalog\*
//!
//! Implements the paper's first language (§2.1): Datalog¬ (non-recursive
//! Datalog with negation and built-in predicates) and its non-disjunctive
//! fragment **Datalog\*** (Definition 1): every IDB appears in the head of
//! exactly one rule and is used at most once in any body.
//!
//! Surface syntax follows the paper:
//!
//! ```text
//! I(x)  :- R(x, _), S(y), not R(x, y).
//! Q(x)  :- R(x, _), not I(x).
//! ```
//!
//! `_` is the anonymous single-use variable, `not` prefixes negated atoms,
//! and built-in predicates are comparisons between variables/constants
//! (`y > 5`). The last rule's head is the query predicate unless stated
//! otherwise.
//!
//! ```
//! use rd_datalog::parse_program;
//! use rd_core::{Catalog, TableSchema};
//!
//! let catalog = Catalog::from_schemas([
//!     TableSchema::new("R", ["A", "B"]),
//!     TableSchema::new("S", ["B"]),
//! ]).unwrap();
//! let p = parse_program("Q(x, y) :- R(x, y), not S(y).", &catalog).unwrap();
//! assert_eq!(p.signature(), vec!["R", "S"]);
//! assert!(rd_datalog::check::is_datalog_star(&p));
//! ```

pub mod ast;
pub mod check;
pub mod eval;
pub mod parser;

pub use ast::{Atom, BuiltIn, DlProgram, DlTerm, Rule};
pub use check::{is_datalog_star, is_nonrecursive, is_safe};
pub use eval::{eval_program, lower_program, lower_program_with};
pub use parser::{parse_program, parse_program_unchecked};
