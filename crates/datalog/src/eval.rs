//! Datalog evaluation as a *lowering* onto the shared plan IR
//! ([`rd_core::exec`]).
//!
//! A program lowers once into a [`ProgramPlan`]: IDBs become strata in
//! topological order, and each rule compiles to a pipeline — variables
//! get *slots* (the runtime environment is a flat slot vector, not a
//! string-keyed map), constants are interned against the database,
//! positive atoms are greedily reordered by estimated scan cost
//! ([`rd_core::plan::scan_cost`] — bound equality keys first, then
//! relation size), and every atom whose columns are constrained by
//! constants or already-bound variables probes a lazily-built hash
//! index instead of scanning. Built-ins and negated atoms apply as soon
//! as their variables are bound (guaranteed by safety); negated atoms
//! become [`NegProbe`](rd_core::exec::Formula::NegProbe) nodes over
//! their non-wildcard columns. Multiple rules for the same IDB union
//! their results (this is how Datalog expresses disjunction, §2.1).
//!
//! The shared executor ([`rd_core::exec::run_program`]) runs the plan;
//! the compiled form carries no borrows, so the engine caches it per
//! database epoch.

use crate::ast::{Atom, DlProgram, DlTerm, Literal, Rule};
use crate::check::topo_order;
use rd_core::exec::{self, Block, EnvShape, ProgramPlan, RulePlan, Scan, Stratum};
use rd_core::plan::{OrderStrategy, PlanHints, PlannerOpts, ScanCand};
use rd_core::{plan, CmpOp, CoreResult, Database, Relation, TableSchema};
use std::collections::{BTreeSet, HashMap};

/// Evaluates the program's query predicate over `db`, returning a relation
/// whose attribute names are positional (`x1`, `x2`, …).
pub fn eval_program(p: &DlProgram, db: &Database) -> CoreResult<Relation> {
    exec::run_program(&lower_program(p, db)?, db)
}

/// Lowers a program to a compiled plan under the default planner
/// configuration: interned constants, strata in topological order, one
/// pipeline per rule.
pub fn lower_program(p: &DlProgram, db: &Database) -> CoreResult<ProgramPlan> {
    lower_program_with(p, db, &PlannerOpts::default(), &PlanHints::default())
}

/// [`lower_program`] with explicit planner configuration and
/// execution-feedback hints.
///
/// IDB sizes are unknown at compile time (they exist only during
/// execution), so each stratum's cardinality is *estimated from its
/// rule bodies* as it is lowered — EDB statistics propagate bottom-up
/// through the topological order, so later strata plan against derived
/// bounds instead of a flat "total rows in the database" guess. When
/// `hints` carry a predicate's actual size from a prior execution, the
/// actual outranks the derived bound. The legacy greedy strategy keeps
/// its historical "IDBs could be as large as the database" assumption —
/// it is the differential baseline.
pub fn lower_program_with(
    p: &DlProgram,
    db: &Database,
    opts: &PlannerOpts,
    hints: &PlanHints,
) -> CoreResult<ProgramPlan> {
    let p = intern_program(p, db);
    let mut stats = plan::DbStats::of(db);
    let order = topo_order(&p);
    if opts.strategy == OrderStrategy::Greedy {
        let total = db.total_tuples();
        for idb in &order {
            if db.relation(idb).is_none() {
                stats.set_override(idb, total as u64);
            }
        }
    }
    stats.apply_hints(hints);
    let mut strata = Vec::new();
    for idb in order {
        let mut rules = Vec::new();
        let mut est_sum: Option<f64> = None;
        for rule in p.rules.iter().filter(|r| r.head.pred == idb) {
            let (compiled, est) = compile_rule(rule, &stats, opts)?;
            rules.push(compiled);
            if let Some(e) = est {
                est_sum = Some(est_sum.unwrap_or(0.0) + e);
            }
        }
        // A feedback actual outranks the derived bound — both for later
        // strata (already applied to `stats`) and as this stratum's
        // recorded estimate.
        let est_rows = match hints.rel_rows.get(&idb) {
            Some(&actual) => Some(actual),
            None => {
                let est = est_sum.map(|e| e.round().clamp(0.0, u64::MAX as f64) as u64);
                if let Some(est) = est {
                    // Propagate: later strata plan against this bound.
                    stats.set_override(&idb, est);
                }
                est
            }
        };
        strata.push(Stratum {
            pred: idb,
            rules,
            est_rows,
        });
    }
    let arity = p
        .rules
        .iter()
        .find(|r| r.head.pred == p.query)
        .map(|r| r.head.terms.len())
        .unwrap_or(0);
    let out = TableSchema::new(
        p.query.clone(),
        (1..=arity).map(|i| format!("x{i}")).collect::<Vec<_>>(),
    );
    Ok(ProgramPlan {
        strata,
        query: p.query.clone(),
        out,
    })
}

/// Returns `p` with every string constant mapped to its symbol (where
/// one exists — unknown literals stay `Str` and simply never match), so
/// the executor's per-tuple loops only ever compare ids.
fn intern_program(p: &DlProgram, db: &Database) -> DlProgram {
    let mut p = p.clone();
    let fix = |t: &mut DlTerm| {
        if let DlTerm::Const(v) = t {
            *v = db.lookup_value(v);
        }
    };
    for rule in &mut p.rules {
        rule.head.terms.iter_mut().for_each(fix);
        for lit in &mut rule.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => a.terms.iter_mut().for_each(fix),
                Literal::Cmp(b) => {
                    fix(&mut b.left);
                    fix(&mut b.right);
                }
            }
        }
    }
    p
}

// ---------------------------------------------------------------------
// Rule lowering
// ---------------------------------------------------------------------

/// Reduces a rule's positive atoms to the numeric [`ScanCand`]s the
/// cost-based orderer consumes: constants and built-in comparisons
/// shrink each atom's row estimate, repeated variables inside one atom
/// self-filter, and variables shared across atoms form join classes.
fn scan_cands(rule: &Rule, positives: &[&Atom], stats: &plan::DbStats) -> Vec<ScanCand> {
    // Class per variable name; a variable's distinct estimate comes
    // from each column it binds.
    let mut class_of: HashMap<&str, usize> = HashMap::new();
    let mut uses: Vec<usize> = Vec::new(); // class → number of atoms using it
    let mut cands = Vec::with_capacity(positives.len());
    for atom in positives {
        let mut rows = stats.size(&atom.pred) as f64;
        let mut join_cols: Vec<(usize, f64)> = Vec::new();
        let mut first_col: HashMap<&str, usize> = HashMap::new();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                DlTerm::Wildcard => {}
                DlTerm::Const(c) => {
                    rows *= stats.cmp_selectivity(&atom.pred, i, CmpOp::Eq, c);
                }
                DlTerm::Var(v) => match first_col.get(v.as_str()) {
                    Some(&c0) => {
                        // Repeated in this atom: self-join filter.
                        let v1 = stats.distinct(&atom.pred, c0);
                        let v2 = stats.distinct(&atom.pred, i);
                        rows /= v1.max(v2).max(1.0);
                    }
                    None => {
                        first_col.insert(v, i);
                        let next = class_of.len();
                        let class = *class_of.entry(v).or_insert(next);
                        if class == uses.len() {
                            uses.push(0);
                        }
                        uses[class] += 1;
                        join_cols.push((class, stats.distinct(&atom.pred, i)));
                    }
                },
            }
        }
        cands.push(ScanCand { rows, join_cols });
    }
    // Built-ins against a constant filter the atoms binding their
    // variable; apply to the first binder.
    for lit in &rule.body {
        if let Literal::Cmp(b) = lit {
            let (var, op, c) = match (&b.left, &b.right) {
                (DlTerm::Var(v), DlTerm::Const(c)) => (v, b.op, c),
                (DlTerm::Const(c), DlTerm::Var(v)) => (v, b.op.flipped(), c),
                _ => continue,
            };
            for (cand, atom) in cands.iter_mut().zip(positives) {
                if let Some(col) = atom
                    .terms
                    .iter()
                    .position(|t| matches!(t, DlTerm::Var(v2) if v2 == var))
                {
                    cand.rows *= stats.cmp_selectivity(&atom.pred, col, op, c);
                    break;
                }
            }
        }
    }
    // Variables used by a single atom don't join anything.
    for cand in &mut cands {
        cand.join_cols.retain(|&(class, _)| uses[class] >= 2);
    }
    cands
}

fn compile_rule(
    rule: &Rule,
    stats: &plan::DbStats,
    opts: &PlannerOpts,
) -> CoreResult<(RulePlan, Option<f64>)> {
    let mut n_slots = 0usize;
    let mut slots_by_name: HashMap<String, usize> = HashMap::new();
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut n_indexes = 0usize;

    let positives: Vec<&Atom> = rule.positive().collect();
    let mut remaining: Vec<usize> = (0..positives.len()).collect();
    let mut scans: Vec<Scan> = Vec::new();

    // Pending filters: built-ins and negations, in body order.
    struct Pending<'r> {
        lit: &'r Literal,
        vars: BTreeSet<String>,
    }
    let mut pending: Vec<Option<Pending>> = rule
        .body
        .iter()
        .filter(|l| !matches!(l, Literal::Pos(_)))
        .map(|lit| {
            let vars: BTreeSet<String> = match lit {
                Literal::Neg(a) => a.vars().map(str::to_string).collect(),
                Literal::Cmp(b) => b.vars().map(str::to_string).collect(),
                Literal::Pos(_) => unreachable!("filtered above"),
            };
            Some(Pending { lit, vars })
        })
        .collect();

    let mut get_slot = |name: &str, slots_by_name: &mut HashMap<String, usize>| -> usize {
        if let Some(&s) = slots_by_name.get(name) {
            return s;
        }
        let s = n_slots;
        n_slots += 1;
        slots_by_name.insert(name.to_string(), s);
        s
    };

    // Compiles a negated atom / built-in against the current bound set.
    // Returns None for negations that can never match (some variable
    // unbound: no tuple equals an unbound variable, so the negation is
    // vacuously true — the pre-planner evaluator behaved the same way).
    let compile_test = |lit: &Literal,
                        bound: &BTreeSet<String>,
                        slots_by_name: &HashMap<String, usize>,
                        n_indexes: &mut usize|
     -> Option<exec::Formula> {
        match lit {
            Literal::Cmp(b) => {
                let term = |t: &DlTerm| match t {
                    DlTerm::Const(c) => exec::Term::Const(c.clone()),
                    DlTerm::Wildcard => exec::Term::Wildcard,
                    DlTerm::Var(v) => match slots_by_name.get(v.as_str()) {
                        Some(&s) if bound.contains(v) => exec::Term::Var(s),
                        _ => exec::Term::Unbound(v.clone()),
                    },
                };
                Some(exec::Formula::Pred(exec::Pred {
                    left: term(&b.left),
                    op: b.op,
                    right: term(&b.right),
                }))
            }
            Literal::Neg(a) => {
                let mut cols = Vec::new();
                let mut terms = Vec::new();
                for (i, t) in a.terms.iter().enumerate() {
                    match t {
                        DlTerm::Wildcard => {}
                        DlTerm::Const(c) => {
                            cols.push(i);
                            terms.push(exec::Term::Const(c.clone()));
                        }
                        DlTerm::Var(v) => {
                            if !bound.contains(v) {
                                return None; // vacuously true
                            }
                            terms.push(exec::Term::Var(slots_by_name[v.as_str()]));
                            cols.push(i);
                        }
                    }
                }
                let index_id = if cols.is_empty() {
                    exec::FULL_SCAN
                } else {
                    *n_indexes += 1;
                    *n_indexes - 1
                };
                Some(exec::Formula::NegProbe {
                    rel: a.pred.clone(),
                    cols,
                    terms,
                    index_id,
                })
            }
            Literal::Pos(_) => unreachable!("positives are scans"),
        }
    };

    // Filters whose variables are bound with *no* scans at all.
    let mut pre = Vec::new();
    for entry in pending.iter_mut() {
        if entry.as_ref().is_some_and(|p| p.vars.is_empty()) {
            let p = entry.take().expect("checked above");
            if let Some(t) = compile_test(p.lit, &bound, &slots_by_name, &mut n_indexes) {
                pre.push(t);
            }
        }
    }

    // Under the cost-based strategy the atom order is decided up front
    // by the dynamic program; the legacy greedy re-ranks at every step.
    let (forced, rule_est): (Vec<usize>, Option<f64>) = match opts.strategy {
        OrderStrategy::CostDp => {
            let cands = scan_cands(rule, &positives, stats);
            let (order, est) = plan::order_scans(&cands, opts);
            (order, Some(est))
        }
        OrderStrategy::Greedy => (Vec::new(), None),
    };
    let mut forced = forced.into_iter();
    while !remaining.is_empty() {
        let ai = match opts.strategy {
            OrderStrategy::CostDp => {
                let next = forced.next().expect("order covers every atom");
                remaining.retain(|&x| x != next);
                next
            }
            OrderStrategy::Greedy => {
                // Greedy: cheapest atom next (bound key columns, then
                // size).
                let mut best = 0usize;
                let mut best_cost = f64::INFINITY;
                for (k, &ai) in remaining.iter().enumerate() {
                    let atom = positives[ai];
                    let keys = atom
                        .terms
                        .iter()
                        .filter(|t| match t {
                            DlTerm::Const(_) => true,
                            DlTerm::Var(v) => bound.contains(v),
                            DlTerm::Wildcard => false,
                        })
                        .count();
                    let cost = plan::scan_cost(stats.size(&atom.pred), keys);
                    if cost < best_cost {
                        best_cost = cost;
                        best = k;
                    }
                }
                remaining.remove(best)
            }
        };
        let atom = positives[ai];
        let mut key_cols = Vec::new();
        let mut key_terms = Vec::new();
        let mut bind_cols = Vec::new();
        let mut check_cols = Vec::new();
        let mut seen_here: HashMap<&str, usize> = HashMap::new();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                DlTerm::Wildcard => {}
                DlTerm::Const(c) => {
                    key_cols.push(i);
                    key_terms.push(exec::Term::Const(c.clone()));
                }
                DlTerm::Var(v) => {
                    if bound.contains(v) {
                        key_cols.push(i);
                        key_terms.push(exec::Term::Var(slots_by_name[v.as_str()]));
                    } else if let Some(&s) = seen_here.get(v.as_str()) {
                        // Repeated inside this atom: first occurrence
                        // binds, later ones verify.
                        check_cols.push((i, s));
                    } else {
                        let s = get_slot(v, &mut slots_by_name);
                        seen_here.insert(v, s);
                        bind_cols.push((i, s));
                    }
                }
            }
        }
        for v in atom.vars() {
            bound.insert(v.to_string());
        }
        let index_id = if key_cols.is_empty() {
            exec::FULL_SCAN
        } else {
            n_indexes += 1;
            n_indexes - 1
        };
        let mut filters = Vec::new();
        for entry in pending.iter_mut() {
            if entry
                .as_ref()
                .is_some_and(|p| p.vars.iter().all(|v| bound.contains(v)))
            {
                let p = entry.take().expect("checked above");
                if let Some(t) = compile_test(p.lit, &bound, &slots_by_name, &mut n_indexes) {
                    filters.push(t);
                }
            }
        }
        scans.push(Scan {
            rel: atom.pred.clone(),
            tuple_slot: None,
            key_cols,
            key_terms,
            bind_cols,
            check_cols,
            index_id,
            filters,
        });
    }

    // Filters with variables no positive atom binds: keep the lazy
    // failure behavior (error or vacuous truth) of the original
    // evaluator by compiling them against the final bound set.
    let mut leftovers = Vec::new();
    for entry in pending.iter_mut() {
        if let Some(p) = entry.take() {
            if let Some(t) = compile_test(p.lit, &bound, &slots_by_name, &mut n_indexes) {
                leftovers.push(t);
            }
        }
    }
    if !leftovers.is_empty() {
        match scans.last_mut() {
            Some(last) => last.filters.extend(leftovers),
            None => pre.extend(leftovers),
        }
    }

    let head = rule
        .head
        .terms
        .iter()
        .map(|t| match t {
            DlTerm::Const(c) => exec::Term::Const(c.clone()),
            DlTerm::Wildcard => exec::Term::Wildcard,
            DlTerm::Var(v) => match slots_by_name.get(v.as_str()) {
                Some(&s) => exec::Term::Var(s),
                None => exec::Term::Unbound(v.clone()),
            },
        })
        .collect();

    Ok((
        RulePlan {
            head,
            block: Block { pre, scans },
            shape: EnvShape {
                tuple_slots: 0,
                value_slots: n_slots,
                indexes: n_indexes,
            },
        },
        rule_est,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use rd_core::{Catalog, Tuple, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db
    }

    fn catalog() -> Catalog {
        db().catalog()
    }

    fn ints(r: &Relation) -> Vec<i64> {
        r.iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn single_rule_join() {
        let p = parse_program("Q(x) :- R(x, y), S(y).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2]);
    }

    #[test]
    fn negation_not_in() {
        let p = parse_program("Q(x, y) :- R(x, y), not S(y).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap(), &Tuple::new([3i64, 30]));
    }

    #[test]
    fn division_two_rules() {
        let p = parse_program(
            "I(x) :- R(x, _), S(y), not R(x, y).\nQ(x) :- R(x, _), not I(x).",
            &catalog(),
        )
        .unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn builtins_filter() {
        let p = parse_program("Q(x) :- R(x, y), y > 15.", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 3]);
    }

    #[test]
    fn constants_in_atoms() {
        let p = parse_program("Q(x) :- R(x, 10).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2]);
    }

    #[test]
    fn union_via_multiple_rules() {
        // Values in R.A with B=10, union values with B=30.
        let p = parse_program("Q(x) :- R(x, 10).\nQ(x) :- R(x, 30).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2, 3]);
    }

    #[test]
    fn repeated_variable_joins_within_atom() {
        let mut d = db();
        d.relation_mut("R")
            .unwrap()
            .insert_values([7i64, 7])
            .unwrap();
        let p = parse_program("Q(x) :- R(x, x).", &catalog()).unwrap();
        let out = eval_program(&p, &d).unwrap();
        assert_eq!(ints(&out), vec![7]);
    }

    #[test]
    fn empty_result_when_edb_empty() {
        let p = parse_program("Q(x) :- R(x, y), S(y).", &catalog()).unwrap();
        let empty = Database::empty_for(&catalog());
        let out = eval_program(&p, &empty).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn three_level_idb_chain() {
        let p = parse_program(
            "I1(x) :- R(x, _).\nI2(x) :- I1(x), not S(x).\nQ(x) :- I2(x).",
            &catalog(),
        )
        .unwrap();
        let out = eval_program(&p, &db()).unwrap();
        // A values 1,2,3; none of them appear in S (10, 20).
        assert_eq!(ints(&out), vec![1, 2, 3]);
    }

    #[test]
    fn atom_order_does_not_change_results() {
        // The planner reorders positive atoms; both phrasings agree.
        let a = parse_program("Q(x) :- R(x, y), S(y).", &catalog()).unwrap();
        let b = parse_program("Q(x) :- S(y), R(x, y).", &catalog()).unwrap();
        let ra = eval_program(&a, &db()).unwrap();
        let rb = eval_program(&b, &db()).unwrap();
        assert_eq!(ra.tuples(), rb.tuples());
    }

    #[test]
    fn string_constants_are_interned_and_match() {
        let mut d = Database::new();
        d.add_relation(
            Relation::from_rows(
                TableSchema::new("Boat", ["bid", "color"]),
                [
                    vec![Value::int(101), Value::str("red")],
                    vec![Value::int(102), Value::str("green")],
                ],
            )
            .unwrap(),
        );
        let p = parse_program("Q(b) :- Boat(b, 'red').", &d.catalog()).unwrap();
        let out = eval_program(&p, &d).unwrap();
        assert_eq!(ints(&out), vec![101]);
    }

    #[test]
    fn lowered_program_is_reusable() {
        let d = db();
        let p = parse_program(
            "I(x) :- R(x, _), S(y), not R(x, y).\nQ(x) :- R(x, _), not I(x).",
            &catalog(),
        )
        .unwrap();
        let plan = lower_program(&p, &d).unwrap();
        let a = exec::run_program(&plan, &d).unwrap();
        let b = exec::run_program(&plan, &d).unwrap();
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(ints(&a), vec![1]);
        assert_eq!(plan.strata.len(), 2, "I then Q");
    }
}
