//! Bottom-up evaluation of non-recursive Datalog¬ programs.
//!
//! IDBs are computed in topological order. Each rule is evaluated by
//! extending a set of variable bindings across the positive atoms (in
//! source order), filtering by built-ins and negated atoms, and projecting
//! the head. Multiple rules for the same IDB union their results (this is
//! how Datalog expresses disjunction, §2.1).

use crate::ast::{Atom, DlProgram, DlTerm, Literal};
use crate::check::topo_order;
use rd_core::{CoreError, CoreResult, Database, Relation, TableSchema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A variable binding during rule evaluation.
type Bindings = BTreeMap<String, Value>;

/// Evaluates the program's query predicate over `db`, returning a relation
/// whose attribute names are positional (`x1`, `x2`, …).
pub fn eval_program(p: &DlProgram, db: &Database) -> CoreResult<Relation> {
    let mut computed: BTreeMap<String, BTreeSet<Tuple>> = BTreeMap::new();
    for idb in topo_order(p) {
        let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
        for rule in p.rules.iter().filter(|r| r.head.pred == idb) {
            tuples.extend(eval_rule(rule, p, db, &computed)?);
        }
        computed.insert(idb, tuples);
    }
    let rows = computed
        .remove(&p.query)
        .ok_or_else(|| CoreError::Invalid(format!("query predicate '{}' not computed", p.query)))?;
    let arity = p
        .rules
        .iter()
        .find(|r| r.head.pred == p.query)
        .map(|r| r.head.terms.len())
        .unwrap_or(0);
    let schema = TableSchema::new(
        p.query.clone(),
        (1..=arity).map(|i| format!("x{i}")).collect::<Vec<_>>(),
    );
    let mut rel = Relation::empty(schema);
    for row in rows {
        rel.insert(row)?;
    }
    Ok(rel)
}

fn relation_tuples<'a>(
    pred: &str,
    db: &'a Database,
    computed: &'a BTreeMap<String, BTreeSet<Tuple>>,
) -> CoreResult<Vec<&'a Tuple>> {
    if let Some(rows) = computed.get(pred) {
        return Ok(rows.iter().collect());
    }
    Ok(db.require(pred)?.iter().collect())
}

/// `true` if `tuple` matches `atom` under `b` *without* extending it
/// (used for negated atoms, whose variables are all bound by safety).
fn matches_bound(atom: &Atom, tuple: &Tuple, b: &Bindings) -> bool {
    atom.terms.iter().enumerate().all(|(i, t)| match t {
        DlTerm::Wildcard => true,
        DlTerm::Const(c) => tuple.get(i) == c,
        DlTerm::Var(v) => b.get(v).is_some_and(|bound| bound == tuple.get(i)),
    })
}

/// Extends `b` with the match of `tuple` against `atom`; `None` on clash.
fn extend(atom: &Atom, tuple: &Tuple, b: &Bindings) -> Option<Bindings> {
    let mut out = b.clone();
    for (i, t) in atom.terms.iter().enumerate() {
        match t {
            DlTerm::Wildcard => {}
            DlTerm::Const(c) => {
                if tuple.get(i) != c {
                    return None;
                }
            }
            DlTerm::Var(v) => match out.get(v) {
                Some(bound) => {
                    if bound != tuple.get(i) {
                        return None;
                    }
                }
                None => {
                    out.insert(v.clone(), tuple.get(i).clone());
                }
            },
        }
    }
    Some(out)
}

fn resolve(term: &DlTerm, b: &Bindings) -> CoreResult<Value> {
    match term {
        DlTerm::Const(c) => Ok(c.clone()),
        DlTerm::Var(v) => b
            .get(v)
            .cloned()
            .ok_or_else(|| CoreError::Invalid(format!("unbound variable '{v}'"))),
        DlTerm::Wildcard => Err(CoreError::Invalid(
            "wildcard cannot be resolved to a value".into(),
        )),
    }
}

fn eval_rule(
    rule: &crate::ast::Rule,
    _p: &DlProgram,
    db: &Database,
    computed: &BTreeMap<String, BTreeSet<Tuple>>,
) -> CoreResult<Vec<Tuple>> {
    // Seed with the empty binding, extend through positive atoms first
    // (source order), then apply built-ins and negations (their variables
    // are guaranteed bound by safety).
    let mut bindings = vec![Bindings::new()];
    for lit in &rule.body {
        if let Literal::Pos(atom) = lit {
            let rel = relation_tuples(&atom.pred, db, computed)?;
            let mut next = Vec::new();
            for b in &bindings {
                for tuple in &rel {
                    if let Some(extended) = extend(atom, tuple, b) {
                        next.push(extended);
                    }
                }
            }
            bindings = next;
            if bindings.is_empty() {
                return Ok(Vec::new());
            }
        }
    }
    for lit in &rule.body {
        match lit {
            Literal::Pos(_) => {}
            Literal::Cmp(builtin) => {
                let mut next = Vec::new();
                for b in bindings {
                    let l = resolve(&builtin.left, &b)?;
                    let r = resolve(&builtin.right, &b)?;
                    if builtin.op.eval(&l, &r) {
                        next.push(b);
                    }
                }
                bindings = next;
            }
            Literal::Neg(atom) => {
                let rel = relation_tuples(&atom.pred, db, computed)?;
                let mut next = Vec::new();
                for b in bindings {
                    if !rel.iter().any(|t| matches_bound(atom, t, &b)) {
                        next.push(b);
                    }
                }
                bindings = next;
            }
        }
        if bindings.is_empty() {
            return Ok(Vec::new());
        }
    }
    let mut out = Vec::new();
    for b in bindings {
        let row: Vec<Value> = rule
            .head
            .terms
            .iter()
            .map(|t| resolve(t, &b))
            .collect::<CoreResult<_>>()?;
        out.push(Tuple(row));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use rd_core::Catalog;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db
    }

    fn catalog() -> Catalog {
        db().catalog()
    }

    fn ints(r: &Relation) -> Vec<i64> {
        r.iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn single_rule_join() {
        let p = parse_program("Q(x) :- R(x, y), S(y).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2]);
    }

    #[test]
    fn negation_not_in() {
        let p = parse_program("Q(x, y) :- R(x, y), not S(y).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap(), &Tuple::new([3i64, 30]));
    }

    #[test]
    fn division_two_rules() {
        let p = parse_program(
            "I(x) :- R(x, _), S(y), not R(x, y).\nQ(x) :- R(x, _), not I(x).",
            &catalog(),
        )
        .unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn builtins_filter() {
        let p = parse_program("Q(x) :- R(x, y), y > 15.", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 3]);
    }

    #[test]
    fn constants_in_atoms() {
        let p = parse_program("Q(x) :- R(x, 10).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2]);
    }

    #[test]
    fn union_via_multiple_rules() {
        // Values in R.A with B=10, union values with B=30.
        let p = parse_program("Q(x) :- R(x, 10).\nQ(x) :- R(x, 30).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2, 3]);
    }

    #[test]
    fn repeated_variable_joins_within_atom() {
        let mut d = db();
        d.relation_mut("R")
            .unwrap()
            .insert_values([7i64, 7])
            .unwrap();
        let p = parse_program("Q(x) :- R(x, x).", &catalog()).unwrap();
        let out = eval_program(&p, &d).unwrap();
        assert_eq!(ints(&out), vec![7]);
    }

    #[test]
    fn empty_result_when_edb_empty() {
        let p = parse_program("Q(x) :- R(x, y), S(y).", &catalog()).unwrap();
        let empty = Database::empty_for(&catalog());
        let out = eval_program(&p, &empty).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn three_level_idb_chain() {
        let p = parse_program(
            "I1(x) :- R(x, _).\nI2(x) :- I1(x), not S(x).\nQ(x) :- I2(x).",
            &catalog(),
        )
        .unwrap();
        let out = eval_program(&p, &db()).unwrap();
        // A values 1,2,3; none of them appear in S (10, 20).
        assert_eq!(ints(&out), vec![1, 2, 3]);
    }
}
