//! Bottom-up, join-aware evaluation of non-recursive Datalog¬ programs.
//!
//! IDBs are computed in topological order. Each rule is compiled before
//! evaluation: variables get *slots* (the runtime environment is a flat
//! `Vec<Option<Value>>`, not a string-keyed map), constants are interned
//! against the database, positive atoms are greedily reordered by
//! estimated scan cost ([`rd_core::plan::scan_cost`] — bound equality
//! keys first, then relation size), and every atom whose columns are
//! constrained by constants or already-bound variables probes a
//! lazily-built hash index instead of scanning. Built-ins and negated
//! atoms apply as soon as their variables are bound (their variables are
//! guaranteed bound by safety); negated atoms probe an index on their
//! non-wildcard columns. Multiple rules for the same IDB union their
//! results (this is how Datalog expresses disjunction, §2.1).

use crate::ast::{Atom, DlProgram, DlTerm, Literal, Rule};
use crate::check::topo_order;
use rd_core::{plan, CmpOp, CoreError, CoreResult, Database, Relation, TableSchema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

/// Evaluates the program's query predicate over `db`, returning a relation
/// whose attribute names are positional (`x1`, `x2`, …).
pub fn eval_program(p: &DlProgram, db: &Database) -> CoreResult<Relation> {
    let p = intern_program(p, db);
    let mut computed: BTreeMap<String, BTreeSet<Tuple>> = BTreeMap::new();
    for idb in topo_order(&p) {
        let mut tuples: BTreeSet<Tuple> = BTreeSet::new();
        for rule in p.rules.iter().filter(|r| r.head.pred == idb) {
            tuples.extend(eval_rule(rule, db, &computed)?);
        }
        computed.insert(idb, tuples);
    }
    let rows = computed
        .remove(&p.query)
        .ok_or_else(|| CoreError::Invalid(format!("query predicate '{}' not computed", p.query)))?;
    let arity = p
        .rules
        .iter()
        .find(|r| r.head.pred == p.query)
        .map(|r| r.head.terms.len())
        .unwrap_or(0);
    let schema = TableSchema::new(
        p.query.clone(),
        (1..=arity).map(|i| format!("x{i}")).collect::<Vec<_>>(),
    );
    let mut rel = db.fresh_relation(schema);
    for row in rows {
        rel.insert(row)?;
    }
    Ok(rel)
}

/// Returns `p` with every string constant mapped to its symbol (where
/// one exists — unknown literals stay `Str` and simply never match), so
/// the per-tuple loops below only ever compare ids.
fn intern_program(p: &DlProgram, db: &Database) -> DlProgram {
    let mut p = p.clone();
    let fix = |t: &mut DlTerm| {
        if let DlTerm::Const(v) = t {
            *v = db.lookup_value(v);
        }
    };
    for rule in &mut p.rules {
        rule.head.terms.iter_mut().for_each(fix);
        for lit in &mut rule.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => a.terms.iter_mut().for_each(fix),
                Literal::Cmp(b) => {
                    fix(&mut b.left);
                    fix(&mut b.right);
                }
            }
        }
    }
    p
}

fn relation_tuples<'a>(
    pred: &str,
    db: &'a Database,
    computed: &'a BTreeMap<String, BTreeSet<Tuple>>,
) -> CoreResult<Vec<&'a Tuple>> {
    if let Some(rows) = computed.get(pred) {
        return Ok(rows.iter().collect());
    }
    Ok(db.require(pred)?.iter().collect())
}

// ---------------------------------------------------------------------
// Compiled rule representation
// ---------------------------------------------------------------------

/// A value source: a constant (interned) or a slot bound earlier.
#[derive(Debug, Clone)]
enum CVal {
    Const(Value),
    Slot(usize),
}

/// A term of the head or a built-in, including the failure modes that
/// must surface lazily (only when a full assignment exists, matching the
/// pre-planner evaluator's behavior on unsafe rules).
#[derive(Debug, Clone)]
enum BTerm {
    Const(Value),
    Slot(usize),
    Unbound(String),
    Wildcard,
}

/// A filter attached to the scan after which its variables are bound.
#[derive(Debug)]
enum Test {
    /// A built-in comparison.
    Cmp {
        left: BTerm,
        op: CmpOp,
        right: BTerm,
    },
    /// A negated atom: fails if any tuple of `pred` matches the key
    /// columns (wildcard columns match everything). With no key columns
    /// (`not P(_)`), fails iff `pred` is non-empty.
    Neg {
        pred: String,
        cols: Vec<usize>,
        vals: Vec<CVal>,
        index_id: usize,
    },
}

/// One positive atom, scheduled: probe `key_cols` (hash index) or scan,
/// bind `bind_cols`, verify `check_cols` (intra-atom repeated variables),
/// then run the attached `tests`.
#[derive(Debug)]
struct ScanAtom {
    pred: String,
    key_cols: Vec<usize>,
    key_vals: Vec<CVal>,
    bind_cols: Vec<(usize, usize)>,
    check_cols: Vec<(usize, usize)>,
    index_id: usize,
    tests: Vec<Test>,
}

struct CompiledRule {
    /// Tests whose variables need no positive atom (constant built-ins,
    /// negations over constants/wildcards only).
    pre_tests: Vec<Test>,
    scans: Vec<ScanAtom>,
    head: Vec<BTerm>,
    n_slots: usize,
    n_indexes: usize,
}

fn compile_rule(rule: &Rule, size_of: &dyn Fn(&str) -> usize) -> CoreResult<CompiledRule> {
    let mut n_slots = 0usize;
    let mut slots_by_name: HashMap<String, usize> = HashMap::new();
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut n_indexes = 0usize;

    let positives: Vec<&Atom> = rule.positive().collect();
    let mut remaining: Vec<usize> = (0..positives.len()).collect();
    let mut scans: Vec<ScanAtom> = Vec::new();

    // Pending filters: built-ins and negations, in body order.
    struct Pending<'r> {
        lit: &'r Literal,
        vars: BTreeSet<String>,
    }
    let mut pending: Vec<Option<Pending>> = rule
        .body
        .iter()
        .filter(|l| !matches!(l, Literal::Pos(_)))
        .map(|lit| {
            let vars: BTreeSet<String> = match lit {
                Literal::Neg(a) => a.vars().map(str::to_string).collect(),
                Literal::Cmp(b) => b.vars().map(str::to_string).collect(),
                Literal::Pos(_) => unreachable!("filtered above"),
            };
            Some(Pending { lit, vars })
        })
        .collect();

    let mut get_slot = |name: &str, slots_by_name: &mut HashMap<String, usize>| -> usize {
        if let Some(&s) = slots_by_name.get(name) {
            return s;
        }
        let s = n_slots;
        n_slots += 1;
        slots_by_name.insert(name.to_string(), s);
        s
    };

    // Compiles a negated atom / built-in against the current bound set.
    // Returns None for negations that can never match (some variable
    // unbound: no tuple equals an unbound variable, so the negation is
    // vacuously true — the pre-planner evaluator behaved the same way).
    let compile_test = |lit: &Literal,
                        bound: &BTreeSet<String>,
                        slots_by_name: &HashMap<String, usize>,
                        n_indexes: &mut usize|
     -> Option<Test> {
        match lit {
            Literal::Cmp(b) => {
                let term = |t: &DlTerm| match t {
                    DlTerm::Const(c) => BTerm::Const(c.clone()),
                    DlTerm::Wildcard => BTerm::Wildcard,
                    DlTerm::Var(v) => match slots_by_name.get(v.as_str()) {
                        Some(&s) if bound.contains(v) => BTerm::Slot(s),
                        _ => BTerm::Unbound(v.clone()),
                    },
                };
                Some(Test::Cmp {
                    left: term(&b.left),
                    op: b.op,
                    right: term(&b.right),
                })
            }
            Literal::Neg(a) => {
                let mut cols = Vec::new();
                let mut vals = Vec::new();
                for (i, t) in a.terms.iter().enumerate() {
                    match t {
                        DlTerm::Wildcard => {}
                        DlTerm::Const(c) => {
                            cols.push(i);
                            vals.push(CVal::Const(c.clone()));
                        }
                        DlTerm::Var(v) => {
                            if !bound.contains(v) {
                                return None; // vacuously true
                            }
                            cols.push(i);
                            vals.push(CVal::Slot(slots_by_name[v.as_str()]));
                        }
                    }
                }
                let index_id = if cols.is_empty() {
                    usize::MAX
                } else {
                    *n_indexes += 1;
                    *n_indexes - 1
                };
                Some(Test::Neg {
                    pred: a.pred.clone(),
                    cols,
                    vals,
                    index_id,
                })
            }
            Literal::Pos(_) => unreachable!("positives are scans"),
        }
    };

    // Filters whose variables are bound with *no* scans at all.
    let mut pre_tests = Vec::new();
    for entry in pending.iter_mut() {
        if entry.as_ref().is_some_and(|p| p.vars.is_empty()) {
            let p = entry.take().expect("checked above");
            if let Some(t) = compile_test(p.lit, &bound, &slots_by_name, &mut n_indexes) {
                pre_tests.push(t);
            }
        }
    }

    while !remaining.is_empty() {
        // Greedy: cheapest atom next (bound key columns, then size).
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (k, &ai) in remaining.iter().enumerate() {
            let atom = positives[ai];
            let keys = atom
                .terms
                .iter()
                .filter(|t| match t {
                    DlTerm::Const(_) => true,
                    DlTerm::Var(v) => bound.contains(v),
                    DlTerm::Wildcard => false,
                })
                .count();
            let cost = plan::scan_cost(size_of(&atom.pred), keys);
            if cost < best_cost {
                best_cost = cost;
                best = k;
            }
        }
        let ai = remaining.remove(best);
        let atom = positives[ai];
        let mut key_cols = Vec::new();
        let mut key_vals = Vec::new();
        let mut bind_cols = Vec::new();
        let mut check_cols = Vec::new();
        let mut seen_here: HashMap<&str, usize> = HashMap::new();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                DlTerm::Wildcard => {}
                DlTerm::Const(c) => {
                    key_cols.push(i);
                    key_vals.push(CVal::Const(c.clone()));
                }
                DlTerm::Var(v) => {
                    if bound.contains(v) {
                        key_cols.push(i);
                        key_vals.push(CVal::Slot(slots_by_name[v.as_str()]));
                    } else if let Some(&s) = seen_here.get(v.as_str()) {
                        // Repeated inside this atom: first occurrence
                        // binds, later ones verify.
                        check_cols.push((i, s));
                    } else {
                        let s = get_slot(v, &mut slots_by_name);
                        seen_here.insert(v, s);
                        bind_cols.push((i, s));
                    }
                }
            }
        }
        for v in atom.vars() {
            bound.insert(v.to_string());
        }
        let index_id = if key_cols.is_empty() {
            usize::MAX
        } else {
            n_indexes += 1;
            n_indexes - 1
        };
        let mut tests = Vec::new();
        for entry in pending.iter_mut() {
            if entry
                .as_ref()
                .is_some_and(|p| p.vars.iter().all(|v| bound.contains(v)))
            {
                let p = entry.take().expect("checked above");
                if let Some(t) = compile_test(p.lit, &bound, &slots_by_name, &mut n_indexes) {
                    tests.push(t);
                }
            }
        }
        scans.push(ScanAtom {
            pred: atom.pred.clone(),
            key_cols,
            key_vals,
            bind_cols,
            check_cols,
            index_id,
            tests,
        });
    }

    // Filters with variables no positive atom binds: keep the lazy
    // failure behavior (error or vacuous truth) of the original
    // evaluator by compiling them against the final bound set.
    let mut leftovers = Vec::new();
    for entry in pending.iter_mut() {
        if let Some(p) = entry.take() {
            if let Some(t) = compile_test(p.lit, &bound, &slots_by_name, &mut n_indexes) {
                leftovers.push(t);
            }
        }
    }
    if !leftovers.is_empty() {
        match scans.last_mut() {
            Some(last) => last.tests.extend(leftovers),
            None => pre_tests.extend(leftovers),
        }
    }

    let head = rule
        .head
        .terms
        .iter()
        .map(|t| match t {
            DlTerm::Const(c) => BTerm::Const(c.clone()),
            DlTerm::Wildcard => BTerm::Wildcard,
            DlTerm::Var(v) => match slots_by_name.get(v.as_str()) {
                Some(&s) => BTerm::Slot(s),
                None => BTerm::Unbound(v.clone()),
            },
        })
        .collect();

    Ok(CompiledRule {
        pre_tests,
        scans,
        head,
        n_slots,
        n_indexes,
    })
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

struct RuleCtx<'a> {
    db: &'a Database,
    computed: &'a BTreeMap<String, BTreeSet<Tuple>>,
    indexes: plan::IndexCache<'a>,
    key_buf: plan::KeyBuf,
}

impl<'a> RuleCtx<'a> {
    fn index_for(
        &mut self,
        pred: &str,
        cols: &[usize],
        index_id: usize,
    ) -> CoreResult<Rc<plan::Index<'a>>> {
        let (db, computed) = (self.db, self.computed);
        self.indexes
            .get_or_build(index_id, cols, || relation_tuples(pred, db, computed))
    }
}

fn bterm_value<'s>(t: &'s BTerm, slots: &'s [Option<Value>]) -> CoreResult<&'s Value> {
    match t {
        BTerm::Const(v) => Ok(v),
        BTerm::Slot(s) => Ok(slots[*s]
            .as_ref()
            .expect("compiler only emits Slot for bound variables")),
        BTerm::Unbound(v) => Err(CoreError::Invalid(format!("unbound variable '{v}'"))),
        BTerm::Wildcard => Err(CoreError::Invalid(
            "wildcard cannot be resolved to a value".into(),
        )),
    }
}

fn run_tests(tests: &[Test], slots: &[Option<Value>], ctx: &mut RuleCtx) -> CoreResult<bool> {
    for t in tests {
        match t {
            Test::Cmp { left, op, right } => {
                let l = bterm_value(left, slots)?;
                let r = bterm_value(right, slots)?;
                if !op.eval_resolved(l, r, ctx.db.symbols()) {
                    return Ok(false);
                }
            }
            Test::Neg {
                pred,
                cols,
                vals,
                index_id,
            } => {
                if cols.is_empty() {
                    // `not P(_ ...)`: fails iff P has any tuple — an O(1)
                    // check, no tuple collection.
                    let empty = match ctx.computed.get(pred) {
                        Some(rows) => rows.is_empty(),
                        None => ctx.db.require(pred)?.is_empty(),
                    };
                    if !empty {
                        return Ok(false);
                    }
                } else {
                    let index = ctx.index_for(pred, cols, *index_id)?;
                    let hit = index.contains_key(ctx.key_buf.fill(vals.iter().map(|v| {
                        match v {
                            CVal::Const(c) => c.clone(),
                            CVal::Slot(s) => slots[*s]
                                .clone()
                                .expect("negation compiled only over bound slots"),
                        }
                    })));
                    if hit {
                        return Ok(false);
                    }
                }
            }
        }
    }
    Ok(true)
}

fn run_scans(
    rule: &CompiledRule,
    i: usize,
    slots: &mut Vec<Option<Value>>,
    ctx: &mut RuleCtx,
    out: &mut Vec<Tuple>,
) -> CoreResult<()> {
    if i == rule.scans.len() {
        let mut row = Vec::with_capacity(rule.head.len());
        for t in &rule.head {
            row.push(bterm_value(t, slots)?.clone());
        }
        out.push(Tuple(row));
        return Ok(());
    }
    let scan = &rule.scans[i];
    let advance = |t: &Tuple,
                   slots: &mut Vec<Option<Value>>,
                   ctx: &mut RuleCtx,
                   out: &mut Vec<Tuple>|
     -> CoreResult<()> {
        for &(col, s) in &scan.bind_cols {
            slots[s] = Some(t.get(col).clone());
        }
        for &(col, s) in &scan.check_cols {
            if slots[s].as_ref() != Some(t.get(col)) {
                return Ok(());
            }
        }
        if run_tests(&scan.tests, slots, ctx)? {
            run_scans(rule, i + 1, slots, ctx, out)?;
        }
        Ok(())
    };
    if scan.key_cols.is_empty() {
        // Iterate the relation in place — no per-combination collection
        // of tuple refs (this scan re-runs once per outer binding).
        if let Some(rows) = ctx.computed.get(&scan.pred) {
            for t in rows {
                advance(t, slots, ctx, out)?;
            }
        } else {
            for t in ctx.db.require(&scan.pred)?.iter() {
                advance(t, slots, ctx, out)?;
            }
        }
    } else {
        let index = ctx.index_for(&scan.pred, &scan.key_cols, scan.index_id)?;
        let bucket = index.get(ctx.key_buf.fill(scan.key_vals.iter().map(|v| match v {
            CVal::Const(c) => c.clone(),
            CVal::Slot(s) => slots[*s].clone().expect("key slots bound earlier"),
        })));
        if let Some(bucket) = bucket {
            for &t in bucket {
                advance(t, slots, ctx, out)?;
            }
        }
    }
    for &(_, s) in &scan.bind_cols {
        slots[s] = None;
    }
    Ok(())
}

fn eval_rule(
    rule: &Rule,
    db: &Database,
    computed: &BTreeMap<String, BTreeSet<Tuple>>,
) -> CoreResult<Vec<Tuple>> {
    // Size statistics: already-computed IDBs first, then EDB relations.
    let size_of = |pred: &str| -> usize {
        computed
            .get(pred)
            .map(BTreeSet::len)
            .unwrap_or_else(|| db.relation(pred).map_or(0, Relation::len))
    };
    let compiled = compile_rule(rule, &size_of)?;
    let mut ctx = RuleCtx {
        db,
        computed,
        indexes: plan::IndexCache::new(compiled.n_indexes),
        key_buf: plan::KeyBuf::default(),
    };
    let mut slots: Vec<Option<Value>> = vec![None; compiled.n_slots];
    if !run_tests(&compiled.pre_tests, &slots, &mut ctx)? {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    run_scans(&compiled, 0, &mut slots, &mut ctx, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use rd_core::Catalog;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::from_rows(
                TableSchema::new("R", ["A", "B"]),
                [[1i64, 10], [1, 20], [2, 10], [3, 30]],
            )
            .unwrap(),
        );
        db.add_relation(
            Relation::from_rows(TableSchema::new("S", ["B"]), [[10i64], [20]]).unwrap(),
        );
        db
    }

    fn catalog() -> Catalog {
        db().catalog()
    }

    fn ints(r: &Relation) -> Vec<i64> {
        r.iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn single_rule_join() {
        let p = parse_program("Q(x) :- R(x, y), S(y).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2]);
    }

    #[test]
    fn negation_not_in() {
        let p = parse_program("Q(x, y) :- R(x, y), not S(y).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap(), &Tuple::new([3i64, 30]));
    }

    #[test]
    fn division_two_rules() {
        let p = parse_program(
            "I(x) :- R(x, _), S(y), not R(x, y).\nQ(x) :- R(x, _), not I(x).",
            &catalog(),
        )
        .unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1]);
    }

    #[test]
    fn builtins_filter() {
        let p = parse_program("Q(x) :- R(x, y), y > 15.", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 3]);
    }

    #[test]
    fn constants_in_atoms() {
        let p = parse_program("Q(x) :- R(x, 10).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2]);
    }

    #[test]
    fn union_via_multiple_rules() {
        // Values in R.A with B=10, union values with B=30.
        let p = parse_program("Q(x) :- R(x, 10).\nQ(x) :- R(x, 30).", &catalog()).unwrap();
        let out = eval_program(&p, &db()).unwrap();
        assert_eq!(ints(&out), vec![1, 2, 3]);
    }

    #[test]
    fn repeated_variable_joins_within_atom() {
        let mut d = db();
        d.relation_mut("R")
            .unwrap()
            .insert_values([7i64, 7])
            .unwrap();
        let p = parse_program("Q(x) :- R(x, x).", &catalog()).unwrap();
        let out = eval_program(&p, &d).unwrap();
        assert_eq!(ints(&out), vec![7]);
    }

    #[test]
    fn empty_result_when_edb_empty() {
        let p = parse_program("Q(x) :- R(x, y), S(y).", &catalog()).unwrap();
        let empty = Database::empty_for(&catalog());
        let out = eval_program(&p, &empty).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn three_level_idb_chain() {
        let p = parse_program(
            "I1(x) :- R(x, _).\nI2(x) :- I1(x), not S(x).\nQ(x) :- I2(x).",
            &catalog(),
        )
        .unwrap();
        let out = eval_program(&p, &db()).unwrap();
        // A values 1,2,3; none of them appear in S (10, 20).
        assert_eq!(ints(&out), vec![1, 2, 3]);
    }

    #[test]
    fn atom_order_does_not_change_results() {
        // The planner reorders positive atoms; both phrasings agree.
        let a = parse_program("Q(x) :- R(x, y), S(y).", &catalog()).unwrap();
        let b = parse_program("Q(x) :- S(y), R(x, y).", &catalog()).unwrap();
        let ra = eval_program(&a, &db()).unwrap();
        let rb = eval_program(&b, &db()).unwrap();
        assert_eq!(ra.tuples(), rb.tuples());
    }

    #[test]
    fn string_constants_are_interned_and_match() {
        let mut d = Database::new();
        d.add_relation(
            Relation::from_rows(
                TableSchema::new("Boat", ["bid", "color"]),
                [
                    vec![Value::int(101), Value::str("red")],
                    vec![Value::int(102), Value::str("green")],
                ],
            )
            .unwrap(),
        );
        let p = parse_program("Q(b) :- Boat(b, 'red').", &d.catalog()).unwrap();
        let out = eval_program(&p, &d).unwrap();
        assert_eq!(ints(&out), vec![101]);
    }
}
